//! Workspace smoke test for the `examples/` directory.
//!
//! Guards two things CI would otherwise miss:
//!
//! 1. every example listed below still exists (so a rename can't silently
//!    drop an example from the compile gate — `cargo test` builds all
//!    examples as part of the default target set);
//! 2. `quickstart` actually runs to completion, exercising the facade
//!    crate's public API end to end.

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "delta_coloring",
    "edge_coloring",
    "mis_via_splitting",
    "multicolor_completeness",
    "quickstart",
    "shattering_demo",
    "sinkless_orientation",
];

#[test]
fn all_expected_examples_exist() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    for name in EXAMPLES {
        let path = dir.join(format!("{name}.rs"));
        assert!(path.is_file(), "missing example: {}", path.display());
    }
    // No unexpected strays: keeps the EXAMPLES list (and thus this gate)
    // in sync with the directory.
    let count = std::fs::read_dir(&dir)
        .expect("examples dir must be readable")
        .filter(|e| {
            e.as_ref()
                .map(|e| e.path().extension().is_some_and(|x| x == "rs"))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(
        count,
        EXAMPLES.len(),
        "examples/ and EXAMPLES list out of sync"
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let cargo = env!("CARGO");
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--example",
            "quickstart",
            "--manifest-path",
        ])
        .arg(&manifest)
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}
