//! Workspace smoke test for the `examples/` directory.
//!
//! Guards two things CI would otherwise miss:
//!
//! 1. every example listed below still exists (so a rename can't silently
//!    drop an example from the compile gate — `cargo test` builds all
//!    examples as part of the default target set);
//! 2. `quickstart` actually runs to completion, exercising the facade
//!    crate's public API end to end.

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "delta_coloring",
    "edge_coloring",
    "mis_via_splitting",
    "multicolor_completeness",
    "quickstart",
    "shattering_demo",
    "sinkless_orientation",
];

/// Server-crate examples, gated here for the same rename protection
/// (`cargo test -p splitting-server` compiles them, but nothing else
/// asserts they exist).
const SERVER_EXAMPLES: [&str; 3] = ["backoff_client", "churn_client", "protocol_examples"];

#[test]
fn all_expected_examples_exist() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    for name in EXAMPLES {
        let path = dir.join(format!("{name}.rs"));
        assert!(path.is_file(), "missing example: {}", path.display());
    }
    // No unexpected strays: keeps the EXAMPLES list (and thus this gate)
    // in sync with the directory.
    let count = std::fs::read_dir(&dir)
        .expect("examples dir must be readable")
        .filter(|e| {
            e.as_ref()
                .map(|e| e.path().extension().is_some_and(|x| x == "rs"))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(
        count,
        EXAMPLES.len(),
        "examples/ and EXAMPLES list out of sync"
    );
}

#[test]
fn all_expected_server_examples_exist() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/server/examples");
    for name in SERVER_EXAMPLES {
        let path = dir.join(format!("{name}.rs"));
        assert!(path.is_file(), "missing example: {}", path.display());
    }
    let count = std::fs::read_dir(&dir)
        .expect("server examples dir must be readable")
        .filter(|e| {
            e.as_ref()
                .map(|e| e.path().extension().is_some_and(|x| x == "rs"))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(
        count,
        SERVER_EXAMPLES.len(),
        "crates/server/examples/ and SERVER_EXAMPLES list out of sync"
    );
}

/// Runs the churn reference client end to end: upload → solve → five
/// mutate/solve rounds → heartbeat. The example asserts the server's
/// re-derived content handles against a local mirror and that its churn
/// counters add up, so this smoke run is a real integration gate on the
/// mutation subsystem, not just a compile check. Release profile — the
/// example holds and repairs a 600-node weak-splitting instance, which
/// is sluggish unoptimized.
#[test]
fn churn_client_runs_to_completion() {
    let cargo = env!("CARGO");
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--release",
            "-p",
            "splitting-server",
            "--example",
            "churn_client",
            "--manifest-path",
        ])
        .arg(&manifest)
        .output()
        .expect("failed to spawn cargo run --example churn_client");
    assert!(
        output.status.success(),
        "churn_client exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("post-mutation solves served by incremental repair"),
        "churn_client did not reach its summary line:\n{stdout}"
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let cargo = env!("CARGO");
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--example",
            "quickstart",
            "--manifest-path",
        ])
        .arg(&manifest)
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}
