//! Cross-crate integration tests: full paper pipelines from generators
//! through simulators to validated outputs.

use degree_split::Flavor;
use distributed_splitting::core;
use distributed_splitting::reductions;
use distributed_splitting::splitgraph::{self, checks, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn deterministic_track_theorem25_end_to_end() {
    let mut rng = StdRng::seed_from_u64(1);
    let b = generators::random_biregular(150, 300, 20, &mut rng).unwrap();
    let (out, report) = core::theorem25(&b, Flavor::Deterministic).unwrap();
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    // small-degree regime: Lemma 2.2 path
    assert_eq!(report.drr_iterations, 0);
    // the ledger separates measured and charged costs
    assert!(out.ledger.measured_total() > 0.0);
}

#[test]
fn randomized_track_theorem12_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2);
    let b = generators::random_biregular(2048, 8192, 24, &mut rng).unwrap();
    let cfg = core::Theorem12Config {
        c_constant: 1.5,
        ..Default::default()
    };
    let (out, report) = core::theorem12_with_report(&b, &cfg).unwrap();
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    assert!(report.attempts_used >= 1);
    assert!(
        out.ledger.measured_total() >= 3.0,
        "shattering costs 3 rounds"
    );
}

#[test]
fn figure1_pipeline_derives_sinkless_orientation() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::random_regular(150, 24, &mut rng).unwrap();
    let ids: Vec<u64> = (0..150).collect();
    let red = core::sinkless_via_weak_splitting(&g, &ids, 4).unwrap();
    assert!(red.instance.bipartite.rank() <= 2);
    assert!(checks::is_sinkless(&g, &red.orientation, 1));
}

#[test]
fn completeness_chain_thm33_into_thm32_regimes() {
    // the Section 3 chain: (C, λ)-splitting → weak multicolor → weak splitting
    let mut rng = StdRng::seed_from_u64(4);
    let b = generators::random_left_regular(96, 2048, 1024, &mut rng).unwrap();
    // membership algorithms validate their own definitions
    let mc = core::weak_multicolor_deterministic(&b).unwrap();
    let n = b.node_count();
    assert!(checks::is_weak_multicolor_splitting(
        &b,
        &mc.colors,
        splitgraph::math::weak_multicolor_degree_threshold(n),
        splitgraph::math::weak_multicolor_required_colors(n),
    ));
    // and the reduction recovers a weak splitting
    let out = core::weak_splitting_via_weak_multicolor(&b).unwrap();
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
}

#[test]
fn high_girth_track_theorems_52_53() {
    let (b, _) = generators::projective_girth12_bipartite(23).unwrap();
    let det = core::theorem52(&b, 1, false, core::GirthScheduling::Reference).unwrap();
    assert!(checks::is_weak_splitting(&b, &det.colors, 0));
    let rand = core::theorem53(&b, 2, false).unwrap();
    assert!(checks::is_weak_splitting(&b, &rand.colors, 0));
}

#[test]
fn section4_track_coloring_and_mis() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::random_regular(512, 64, &mut rng).unwrap();
    let (colors, report, _) = reductions::delta_coloring_via_splitting(&g, 40, None).unwrap();
    assert!(checks::is_proper_coloring(&g, &colors));
    assert!(report.ratio >= 1.0);

    let (mis, _, _) = reductions::mis_via_splitting(&g, 40, 3);
    assert!(checks::is_mis(&g, &mis));
}

#[test]
fn solver_facade_covers_all_paper_regimes() {
    let mut rng = StdRng::seed_from_u64(6);
    // Theorem 2.7 regime
    let skewed = generators::random_biregular(12, 72, 12, &mut rng).unwrap();
    // zero-round / Theorem 2.5 regime
    let balanced = generators::random_biregular(100, 100, 20, &mut rng).unwrap();
    for (b, randomized) in [
        (&skewed, false),
        (&skewed, true),
        (&balanced, false),
        (&balanced, true),
    ] {
        let solver = core::WeakSplittingSolver {
            allow_randomized: randomized,
            ..Default::default()
        };
        let (out, _) = solver.solve(b).unwrap();
        assert!(checks::is_weak_splitting(b, &out.colors, 0));
    }
}

#[test]
fn doubling_instances_roundtrip_through_solvers() {
    // Section 1.2: general graph → bipartite weak splitting instance
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::random_regular(128, 24, &mut rng).unwrap();
    let b = generators::doubling_instance(&g);
    assert_eq!(b.min_left_degree(), 24);
    assert_eq!(b.rank(), 24);
    // δ = 24 ≥ 2·log(256) = 16: zero-round and Lemma 2.1 both apply
    let out = core::zero_round_whp(&b, 5, 16).unwrap();
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    let det = core::basic_deterministic(&b, b.node_count()).unwrap();
    assert!(checks::is_weak_splitting(&b, &det.colors, 0));
}
