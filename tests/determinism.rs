//! Reproducibility contracts: deterministic pipelines are bit-stable, and
//! randomized pipelines are bit-stable *given the seed* — the property all
//! experiment tables rely on.

use degree_split::Flavor;
use distributed_splitting::core;
use distributed_splitting::splitgraph::generators;
use local_runtime::CostKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(seed: u64) -> distributed_splitting::splitgraph::BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_biregular(100, 100, 20, &mut rng).unwrap()
}

#[test]
fn theorem25_is_bit_stable() {
    let b = instance(1);
    let (a, _) = core::theorem25(&b, Flavor::Deterministic).unwrap();
    let (c, _) = core::theorem25(&b, Flavor::Deterministic).unwrap();
    assert_eq!(a.colors, c.colors);
    assert_eq!(a.ledger.total(), c.ledger.total());
}

#[test]
fn zero_round_depends_only_on_seed() {
    let b = instance(2);
    let a = core::zero_round_coloring(&b, 7);
    let c = core::zero_round_coloring(&b, 7);
    let d = core::zero_round_coloring(&b, 8);
    assert_eq!(a.colors, c.colors);
    assert_ne!(a.colors, d.colors);
}

#[test]
fn shattering_depends_only_on_seed() {
    let b = instance(3);
    let a = core::shatter(&b, 11);
    let c = core::shatter(&b, 11);
    assert_eq!(a.colors, c.colors);
    assert_eq!(a.satisfied, c.satisfied);
    assert_eq!(a.messages, c.messages);
}

#[test]
fn theorem12_is_seed_stable() {
    let mut rng = StdRng::seed_from_u64(4);
    let b = generators::random_biregular(1024, 4096, 24, &mut rng).unwrap();
    let cfg = core::Theorem12Config {
        c_constant: 1.5,
        seed: 99,
        ..Default::default()
    };
    let a = core::theorem12(&b, &cfg).unwrap();
    let c = core::theorem12(&b, &cfg).unwrap();
    assert_eq!(a.colors, c.colors);
}

#[test]
fn ledgers_separate_cost_kinds_in_every_pipeline() {
    // deterministic Theorem 2.5 in the DRR regime must contain charged
    // (oracle) entries AND measured (fixer-phase) entries, each labelled
    let b = generators::complete_bipartite(64, 512);
    let (out, _) = core::theorem25(&b, Flavor::Deterministic).unwrap();
    let kinds: std::collections::HashSet<CostKind> =
        out.ledger.entries().iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&CostKind::Charged),
        "oracle degree splitting is charged"
    );
    assert!(
        kinds.contains(&CostKind::Measured),
        "fixer phases are measured"
    );
    for e in out.ledger.entries() {
        assert!(!e.label.is_empty(), "every phase is labelled");
        assert!(e.rounds >= 0.0);
    }
    // the display form mentions both subtotals
    let shown = out.ledger.to_string();
    assert!(shown.contains("measured"));
    assert!(shown.contains("charged"));
}

#[test]
fn solver_plan_is_pure() {
    let b = instance(5);
    let solver = core::WeakSplittingSolver::default();
    assert_eq!(solver.plan(&b), solver.plan(&b));
}

#[test]
fn degree_splitter_is_seed_stable_for_every_engine_and_flavor() {
    use degree_split::{DegreeSplitter, Engine};
    use distributed_splitting::splitgraph::MultiGraph;
    use rand::RngExt;

    // a multigraph with parallel edges and odd degrees, rebuilt from the
    // seed exactly as a replay would rebuild it
    let multigraph_from_seed = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MultiGraph::new(24);
        for _ in 0..70 {
            let a = rng.random_range(0usize..24);
            let mut b = rng.random_range(0usize..24);
            while b == a {
                b = rng.random_range(0usize..24);
            }
            g.add_edge(a, b);
        }
        g
    };

    for engine in [Engine::EulerianOracle, Engine::Walk] {
        for flavor in [Flavor::Deterministic, Flavor::Randomized] {
            for seed in [3u64, 17, 40] {
                let splitter = DegreeSplitter::new(0.2, engine, flavor);
                let g1 = multigraph_from_seed(seed);
                let g2 = multigraph_from_seed(seed);
                let a = splitter.split(&g1, 24);
                let b = splitter.split(&g2, 24);
                // same seed ⇒ identical input ⇒ bit-identical orientation
                // and identical round accounting, engine by engine
                assert_eq!(
                    (0..a.orientation.edge_count())
                        .map(|e| a.orientation.is_towards_second(e))
                        .collect::<Vec<_>>(),
                    (0..b.orientation.edge_count())
                        .map(|e| b.orientation.is_towards_second(e))
                        .collect::<Vec<_>>(),
                    "orientation differs for {engine:?}/{flavor:?} seed {seed}"
                );
                assert_eq!(a.ledger.total(), b.ledger.total());
                assert_eq!(a.ledger.charged_total(), b.ledger.charged_total());
                // the ε·d + 2 contract is certified for the oracle engine
                // only; the walk engine's discrepancy is measured and can
                // overshoot slightly on irregular multigraphs
                if engine == Engine::EulerianOracle {
                    assert!(splitter.contract_violations(&g1, &a.orientation).is_empty());
                }
            }
        }
    }
}
