//! Property-based tests (proptest) over the core data structures and
//! algorithm invariants.

use degree_split::{eulerian_orientation, walk_splitting, DegreeSplitter, Engine, Flavor};
use distributed_splitting::core;
use distributed_splitting::splitgraph::{
    bipartite_components, checks, generators, BipartiteGraph, Graph, MultiGraph,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random simple graph from an edge-probability model.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, 0u64..1000).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(n, 0.3, &mut rng)
    })
}

/// Strategy: a random multigraph (parallel edges allowed).
fn arb_multigraph() -> impl Strategy<Value = MultiGraph> {
    (2usize..30, 1usize..120, 0u64..1000).prop_map(|(n, m, seed)| {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MultiGraph::new(n);
        for _ in 0..m {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            g.add_edge(a, b);
        }
        g
    })
}

/// Strategy: a random bipartite instance with decent left degrees.
fn arb_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (8usize..40, 16usize..60, 4usize..12, 0u64..1000).prop_map(|(u, v, d, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = d.min(v);
        generators::random_left_regular(u, v, d, &mut rng).expect("d ≤ v")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eulerian_orientation_meets_parity_bound(g in arb_multigraph()) {
        let o = eulerian_orientation(&g);
        for v in 0..g.node_count() {
            prop_assert!(o.discrepancy(&g, v) <= g.degree(v) % 2 );
        }
    }

    #[test]
    fn walk_engine_orients_every_edge(g in arb_multigraph()) {
        let out = walk_splitting(&g, 0.25);
        prop_assert_eq!(out.orientation.edge_count(), g.edge_count());
        // in/out degrees are consistent with the handshake identity
        let total_out: usize =
            (0..g.node_count()).map(|v| out.orientation.out_degree(&g, v)).sum();
        prop_assert_eq!(total_out, g.edge_count());
    }

    #[test]
    fn oracle_splitter_always_meets_contract(g in arb_multigraph()) {
        let s = DegreeSplitter::new(0.1, Engine::EulerianOracle, Flavor::Deterministic);
        let r = s.split(&g, g.node_count());
        prop_assert!(s.contract_violations(&g, &r.orientation).is_empty());
    }

    #[test]
    fn components_partition_the_bipartite_instance(b in arb_bipartite()) {
        let comps = bipartite_components(&b);
        let left: usize = comps.iter().map(|c| c.graph.left_count()).sum();
        let right: usize = comps.iter().map(|c| c.graph.right_count()).sum();
        prop_assert_eq!(left, b.left_count());
        prop_assert_eq!(right, b.right_count());
        let edges: usize = comps.iter().map(|c| c.graph.edge_count()).sum();
        prop_assert_eq!(edges, b.edge_count());
    }

    #[test]
    fn drr2_never_orphans_variables(b in arb_bipartite()) {
        let eps = 1.0 / (10.0 * b.max_left_degree().max(1) as f64);
        let s = DegreeSplitter::new(eps, Engine::EulerianOracle, Flavor::Deterministic);
        let k = splitgraph_ceil_log2(b.rank().max(1));
        let red = core::degree_rank_reduction_ii(&b, &s, k);
        prop_assert!(red.graph.rank() <= 1);
        for v in 0..red.graph.right_count() {
            // variables that started with edges keep at least one
            if b.right_degree(v) >= 1 {
                prop_assert!(red.graph.right_degree(v) >= 1);
            }
        }
    }

    #[test]
    fn conditional_expectation_fix_valid_when_phi_below_one(b in arb_bipartite()) {
        use derand::{sequential_fix, ColoringEstimator};
        let est = ColoringEstimator::monochromatic(&b);
        let order: Vec<usize> = (0..b.right_count()).collect();
        let out = sequential_fix(&b, est, &order);
        if out.initial_phi < 1.0 {
            let colors = core::to_two_coloring(&out.colors);
            prop_assert!(checks::is_weak_splitting(&b, &colors, 0));
        }
    }

    #[test]
    fn shattering_preserves_quarter_uncolored(b in arb_bipartite()) {
        let sh = core::shatter(&b, 99);
        for u in 0..b.left_count() {
            let uncolored = b
                .left_neighbors(u)
                .iter()
                .filter(|&&v| sh.colors[v].is_none())
                .count();
            prop_assert!(4 * uncolored >= b.left_degree(u));
        }
    }

    #[test]
    fn truncation_never_breaks_weak_splittings(b in arb_bipartite()) {
        // any valid splitting of a truncated instance remains valid on the
        // full instance restricted to the same threshold
        let h = core::truncate_left_degrees(&b, 4);
        use derand::{sequential_fix, ColoringEstimator};
        let est = ColoringEstimator::monochromatic(&h);
        let order: Vec<usize> = (0..h.right_count()).collect();
        let out = sequential_fix(&h, est, &order);
        if out.initial_phi < 1.0 {
            let colors = core::to_two_coloring(&out.colors);
            prop_assert!(checks::is_weak_splitting(&h, &colors, 0));
            prop_assert!(checks::is_weak_splitting(&b, &colors, 0));
        }
    }

    #[test]
    fn sinkless_reduction_preserves_validity(
        (n, d, seed) in (20usize..80, 5usize..10, 0u64..200)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = if (n * d) % 2 == 1 { d + 1 } else { d };
        if let Ok(g) = generators::random_regular(n, d, &mut rng) {
            let ids: Vec<u64> = (0..n as u64).collect();
            if let Ok(red) = core::sinkless_via_weak_splitting(&g, &ids, seed) {
                prop_assert!(checks::is_sinkless(&g, &red.orientation, 1));
            }
        }
    }

    #[test]
    fn girth_of_incidence_doubles(g in arb_graph()) {
        use distributed_splitting::splitgraph::{bipartite_girth, girth};
        let (b, _) = generators::incidence_instance(&g);
        match (girth(&g), bipartite_girth(&b)) {
            (Some(host), Some(inc)) => prop_assert_eq!(inc, 2 * host),
            (None, None) => {}
            (host, inc) => prop_assert!(
                false, "girth mismatch: host {:?}, incidence {:?}", host, inc
            ),
        }
    }
}

fn splitgraph_ceil_log2(x: usize) -> usize {
    distributed_splitting::splitgraph::math::ceil_log2(x) as usize
}
