//! Human-readable conformance matrix: scenario families × entrypoint
//! groups, with per-cell check/failure counts.

use crate::harness::{ConformanceReport, Group};

/// One matrix row: a scenario plus its per-group `(checks, failures)`.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Scenario name.
    pub scenario: String,
    /// Regime tags, pre-rendered.
    pub regimes: String,
    /// Cells in [`Group::ALL`] order: `(checks, failures)`.
    pub cells: Vec<(usize, usize)>,
}

/// Flattens a report into matrix rows (one per scenario, corpus order).
pub fn matrix(report: &ConformanceReport) -> Vec<MatrixRow> {
    report
        .scenarios
        .iter()
        .map(|s| {
            let cells = Group::ALL
                .iter()
                .map(|&g| {
                    s.cells
                        .iter()
                        .find(|c| c.group == g)
                        .map(|c| (c.checks, c.failures.len()))
                        .unwrap_or((0, 0))
                })
                .collect();
            MatrixRow {
                scenario: s.scenario.clone(),
                regimes: s
                    .regimes
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(","),
                cells,
            }
        })
        .collect()
}

/// Renders the matrix as an aligned text table. Cells show `✓n` (n checks
/// passed), `✗k/n` (k of n failed), or `-` (group not applicable).
pub fn render_matrix(report: &ConformanceReport) -> String {
    let rows = matrix(report);
    let mut header: Vec<String> = vec!["scenario".into()];
    header.extend(Group::ALL.iter().map(|g| g.name().to_string()));
    header.push("regimes".into());
    let mut body: Vec<Vec<String>> = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut cols = vec![row.scenario.clone()];
        for &(checks, fails) in &row.cells {
            cols.push(match (checks, fails) {
                (0, _) => "-".into(),
                (n, 0) => format!("✓{n}"),
                (n, k) => format!("✗{k}/{n}"),
            });
        }
        cols.push(row.regimes.clone());
        body.push(cols);
    }
    let widths: Vec<usize> = (0..header.len())
        .map(|i| {
            body.iter()
                .map(|r| r[i].chars().count())
                .chain(std::iter::once(header[i].chars().count()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let render_row = |cols: &[String]| -> String {
        cols.iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<width$}", width = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = render_row(&header);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for cols in &body {
        out.push_str(&render_row(cols));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_scenario;
    use crate::scenario::{corpus, Tier};

    #[test]
    fn matrix_has_one_row_per_scenario_and_all_groups() {
        let scenarios = corpus(Tier::Quick);
        let report = ConformanceReport {
            tier: Tier::Quick,
            scenarios: vec![run_scenario(&scenarios[0], &[Group::Solver])],
        };
        let rows = matrix(&report);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), Group::ALL.len());
        let rendered = render_matrix(&report);
        assert!(rendered.contains("solver"));
        assert!(rendered.contains(&scenarios[0].name));
    }
}
