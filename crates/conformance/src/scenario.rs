//! The scenario registry: a uniform descriptor over every instance family
//! the conformance harness drives, tagged with the theorem regimes each one
//! exercises.
//!
//! Every scenario is rebuilt deterministically from `(family, seed, tier)`,
//! which is what makes the replay ledger work: a failing cell names its
//! scenario and the replay test reconstructs the identical instance.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use splitgraph::generators;
use splitgraph::math::{weak_multicolor_degree_threshold, weak_splitting_degree_threshold};
use splitgraph::{BipartiteGraph, Graph, MultiGraph};

/// Corpus size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Small instances, one seed per family — CI-on-every-PR budget.
    Quick,
    /// Larger instances and extra seeds per family.
    Full,
}

/// The theorem regimes of the paper a scenario exercises. Tags are
/// *computed from the instance parameters* (not hand-asserted), so they are
/// always consistent with what the dispatching façade would do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Regime {
    /// `δ ≥ 2·log n`: the zero-round randomized algorithm applies.
    ZeroRound,
    /// `δ ≥ 2·log n`: deterministic Theorem 2.5 applies.
    Thm25,
    /// `δ ≥ 6r`: Theorem 2.7 applies.
    Thm27,
    /// Randomized shattering window `δ ≥ c·log(r·log n)` of Theorem 1.2.
    Thm12,
    /// A Degree–Rank Reduction route runs (Thm 2.5's DRR-I branch or
    /// Thm 2.7's DRR-II route).
    Drr,
    /// Definition 1.3 degree regime: the multicolor membership algorithms
    /// are guaranteed to succeed.
    Multicolor,
    /// The host graph is dense enough for certified uniform splitting.
    Uniform,
    /// The derived multigraph is non-trivial for directed degree splitting.
    DegreeSplit,
}

impl Regime {
    /// All regimes, in display order.
    pub const ALL: [Regime; 8] = [
        Regime::ZeroRound,
        Regime::Thm25,
        Regime::Thm27,
        Regime::Thm12,
        Regime::Drr,
        Regime::Multicolor,
        Regime::Uniform,
        Regime::DegreeSplit,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Regime::ZeroRound => "zero-round",
            Regime::Thm25 => "thm2.5",
            Regime::Thm27 => "thm2.7",
            Regime::Thm12 => "thm1.2",
            Regime::Drr => "drr",
            Regime::Multicolor => "multicolor",
            Regime::Uniform => "uniform",
            Regime::DegreeSplit => "degree-split",
        }
    }
}

/// One conformance scenario: a named, seeded instance plus the regime tags
/// the harness uses to decide which guarantees are *expected* (vs. merely
/// attempted) on it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Instance family identifier (stable across tiers).
    pub family: &'static str,
    /// Unique scenario name: `family/<params>#<seed>`.
    pub name: String,
    /// Seed every randomized entrypoint is keyed from.
    pub seed: u64,
    /// Regimes this instance provably lies in.
    pub regimes: Vec<Regime>,
    /// The bipartite constraint/variable instance.
    pub bipartite: BipartiteGraph,
    /// Theorem 1.2 constant `c` to use for this scenario.
    pub thm12_constant: f64,
    /// Optional host graph override (defaults to the flattened bipartite
    /// graph); used when the scenario was derived *from* a graph, so the
    /// graph-level entrypoints run on the natural host.
    host: Option<Graph>,
    /// Optional multigraph override (defaults to the host graph's edges);
    /// used by the Eulerian stress family.
    multigraph: Option<MultiGraph>,
}

impl Scenario {
    /// Builds a scenario and computes its regime tags from the instance.
    fn new(
        family: &'static str,
        params: &str,
        seed: u64,
        bipartite: BipartiteGraph,
        thm12_constant: f64,
        host: Option<Graph>,
        multigraph: Option<MultiGraph>,
    ) -> Self {
        let mut s = Scenario {
            family,
            name: format!("{family}/{params}#{seed}"),
            seed,
            regimes: Vec::new(),
            bipartite,
            thm12_constant,
            host,
            multigraph,
        };
        s.regimes = s.compute_regimes();
        s
    }

    /// The host graph the graph-level entrypoints (uniform splitting,
    /// reductions) run on.
    pub fn host_graph(&self) -> Graph {
        match &self.host {
            Some(g) => g.clone(),
            None => self.bipartite.to_graph(),
        }
    }

    /// The multigraph the degree-splitting entrypoints run on.
    pub fn multigraph(&self) -> MultiGraph {
        match &self.multigraph {
            Some(g) => g.clone(),
            None => {
                let host = self.host_graph();
                MultiGraph::from_endpoints(host.node_count(), host.edges().collect())
            }
        }
    }

    /// Whether the scenario carries a regime tag.
    pub fn has(&self, r: Regime) -> bool {
        self.regimes.contains(&r)
    }

    /// Whether any weak-splitting pipeline is expected to solve this
    /// instance (otherwise the solver façade must report `Precondition`).
    pub fn weak_pipeline_expected(&self) -> bool {
        self.has(Regime::ZeroRound)
            || self.has(Regime::Thm25)
            || self.has(Regime::Thm27)
            || self.has(Regime::Thm12)
    }

    /// Derives the regime tags from the instance parameters, mirroring the
    /// theorems' preconditions exactly.
    fn compute_regimes(&self) -> Vec<Regime> {
        let b = &self.bipartite;
        let n = b.node_count();
        let delta = b.min_left_degree();
        let rank = b.rank();
        let threshold = weak_splitting_degree_threshold(n);
        let log_n = splitgraph::math::log2(n.max(2));
        let mut tags = Vec::new();
        if b.left_count() > 0 && delta >= threshold {
            tags.push(Regime::ZeroRound);
            tags.push(Regime::Thm25);
        }
        if b.left_count() > 0 && delta >= 6 * rank && delta >= 2 {
            tags.push(Regime::Thm27);
        }
        let thm12_req = self.thm12_constant
            * splitgraph::math::log2(((rank.max(1) as f64) * log_n).ceil() as usize + 1);
        if b.left_count() > 0 && (delta as f64) >= thm12_req && delta >= 2 {
            tags.push(Regime::Thm12);
        }
        // DRR-I runs inside Thm 2.5 for δ > 48·log n; DRR-II runs inside
        // Thm 2.7 whenever the generic algorithms do not already apply
        let drr1 = tags.contains(&Regime::Thm25) && delta as f64 > 48.0 * log_n;
        let drr2 = tags.contains(&Regime::Thm27) && delta < threshold;
        if drr1 || drr2 {
            tags.push(Regime::Drr);
        }
        if b.left_count() > 0 && delta >= weak_multicolor_degree_threshold(n) {
            tags.push(Regime::Multicolor);
        }
        let host = self.host_graph();
        // certified uniform splitting needs the unclamped feasible_eps
        // √(3·ln(4n)/d) to stay within its (0, 1/2] clamp, i.e.
        // d ≥ 12·ln(4n); below that the Chernoff estimator honestly
        // declines and only the randomized variant applies
        if host.node_count() > 0
            && host.max_degree() as f64 >= 12.0 * ((4 * host.node_count()) as f64).ln()
        {
            tags.push(Regime::Uniform);
        }
        if self.multigraph().edge_count() > 0 {
            tags.push(Regime::DegreeSplit);
        }
        tags
    }
}

/// Number of distinct scenario families [`corpus`] registers.
pub const FAMILY_COUNT: usize = 16;

/// Builds the scenario corpus for a tier. Families are deterministic in
/// `(tier, seed)`; the quick tier is sized for per-PR CI, the full tier
/// adds seeds and larger instances.
pub fn corpus(tier: Tier) -> Vec<Scenario> {
    let mut out = Vec::new();
    let seeds: &[u64] = match tier {
        Tier::Quick => &[1],
        Tier::Full => &[1, 2, 3],
    };
    for &seed in seeds {
        push_family_scenarios(&mut out, tier, seed);
    }
    out
}

fn push_family_scenarios(out: &mut Vec<Scenario>, tier: Tier, seed: u64) {
    let full = tier == Tier::Full;
    let c_default = 3.0;

    // 1. biregular — both sides regular, the workhorse δ ≥ 2·log n family
    {
        let (l, r, d) = if full { (220, 220, 24) } else { (100, 100, 20) };
        let mut rng = StdRng::seed_from_u64(0x1000 + seed);
        let b = generators::random_biregular(l, r, d, &mut rng).expect("feasible biregular");
        out.push(Scenario::new(
            "biregular",
            &format!("{l}x{r}d{d}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 2. left-regular — concentrated but non-regular right side
    {
        let (l, r, d) = if full { (120, 300, 22) } else { (60, 150, 18) };
        let mut rng = StdRng::seed_from_u64(0x2000 + seed);
        let b = generators::random_left_regular(l, r, d, &mut rng).expect("d ≤ r");
        out.push(Scenario::new(
            "left-regular",
            &format!("{l}x{r}d{d}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 3. er-bipartite — fully random degrees; regime tags are whatever the
    // sample landed in (often below every threshold: the negative case)
    {
        let (l, r, p) = if full { (60, 120, 0.3) } else { (40, 80, 0.35) };
        let mut rng = StdRng::seed_from_u64(0x3000 + seed);
        let b = generators::erdos_renyi_bipartite(l, r, p, &mut rng);
        out.push(Scenario::new(
            "er-bipartite",
            &format!("{l}x{r}p{p}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 4. complete — K_{8,64}: δ = 64 ≥ 6r = 48, skewed and dense
    {
        let (l, r) = if full { (12, 96) } else { (8, 64) };
        let b = generators::complete_bipartite(l, r);
        out.push(Scenario::new(
            "complete",
            &format!("K{l},{r}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 5. drr-dense — K_{64,512}: δ > 48·log n forces the DRR-I branch of
    // Theorem 2.5
    {
        let (l, r) = if full { (80, 640) } else { (64, 512) };
        let b = generators::complete_bipartite(l, r);
        out.push(Scenario::new(
            "drr-dense",
            &format!("K{l},{r}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 6. power-law — Chung–Lu heavy-tailed constraint degrees
    {
        let (l, r, dmin, dmax) = if full {
            (160, 240, 18, 120)
        } else {
            (80, 120, 18, 60)
        };
        let mut rng = StdRng::seed_from_u64(0x6000 + seed);
        let b = generators::power_law_bipartite(l, r, 2.2, dmin, dmax, &mut rng)
            .expect("feasible power law");
        out.push(Scenario::new(
            "power-law",
            &format!("{l}x{r}d{dmin}-{dmax}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 7. skewed — two-tier left degrees: Δ/δ spread stresses degree
    // uniformization while staying above the 2·log n threshold
    {
        let (hv, hd, lt, ld, r) = if full {
            (8, 120, 40, 20, 200)
        } else {
            (4, 60, 20, 18, 100)
        };
        let mut rng = StdRng::seed_from_u64(0x7000 + seed);
        let b = generators::skewed_bipartite(hv, hd, lt, ld, r, &mut rng).expect("tiers fit");
        out.push(Scenario::new(
            "skewed",
            &format!("{hv}x{hd}+{lt}x{ld}r{r}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 8. thm27-window — δ ≥ 6r while δ < 2·log n: exactly the DRR-II route
    {
        let (l, r, d) = if full { (24, 144, 12) } else { (12, 72, 12) };
        let mut rng = StdRng::seed_from_u64(0x8000 + seed);
        let b = generators::random_biregular(l, r, d, &mut rng).expect("rank-2 biregular");
        out.push(Scenario::new(
            "thm27-window",
            &format!("{l}x{r}d{d}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 9. thm12-window — the shattering window: δ below 2·log n but above
    // c·log(r·log n) for c = 1.5
    {
        let (l, r, d) = if full {
            (512, 1664, 13)
        } else {
            (256, 832, 13)
        };
        let mut rng = StdRng::seed_from_u64(0x9000 + seed);
        let b = generators::random_biregular(l, r, d, &mut rng).expect("feasible window");
        out.push(Scenario::new(
            "thm12-window",
            &format!("{l}x{r}d{d}"),
            seed,
            b,
            1.5,
            None,
            None,
        ));
    }

    // 10. near-threshold — δ exactly at ⌈2·log n⌉, the boundary the union
    // bound is tightest at
    {
        let (l, r) = if full { (100, 300) } else { (50, 150) };
        let d = weak_splitting_degree_threshold(l + r);
        let mut rng = StdRng::seed_from_u64(0xA000 + seed);
        let b = generators::random_left_regular(l, r, d, &mut rng).expect("d ≤ r");
        out.push(Scenario::new(
            "near-threshold",
            &format!("{l}x{r}d{d}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 11. torus-incidence — grid incidence instance: rank exactly 2,
    // δ = 4 < every weak-splitting threshold (the negative dispatch case),
    // host graph is the 4-regular torus
    {
        let (rows, cols) = if full { (10, 10) } else { (6, 6) };
        let g = generators::torus(rows, cols).expect("torus ≥ 3×3");
        let (b, _) = generators::incidence_instance(&g);
        out.push(Scenario::new(
            "torus-incidence",
            &format!("{rows}x{cols}"),
            seed,
            b,
            c_default,
            Some(g),
            None,
        ));
    }

    // 12. hypercube-doubling — the Section 1.2 doubling instance of the
    // d-dimensional hypercube: δ = d = (log n), just *below* threshold
    {
        let dim = if full { 7 } else { 5 };
        let g = generators::hypercube(dim);
        let b = generators::doubling_instance(&g);
        out.push(Scenario::new(
            "hypercube-doubling",
            &format!("dim{dim}"),
            seed,
            b,
            c_default,
            Some(g),
            None,
        ));
    }

    // 13. girth10 — high-girth incidence instance (Section 5 regime), host
    // is the girth-5 random near-regular graph
    {
        let (n, d) = if full { (96, 6) } else { (48, 4) };
        let mut rng = StdRng::seed_from_u64(0xD000 + seed);
        let (b, edges) = generators::random_girth10_bipartite(n, d, &mut rng).expect("feasible");
        let host = Graph::from_edges_bulk(n, &edges).expect("host edges simple");
        out.push(Scenario::new(
            "girth10",
            &format!("n{n}d{d}"),
            seed,
            b,
            c_default,
            Some(host),
            None,
        ));
    }

    // 14. multicolor-def13 — degrees above the Definition 1.3 threshold so
    // the multicolor membership algorithms are certified
    {
        let (l, r, d) = if full { (24, 768, 384) } else { (18, 512, 256) };
        let mut rng = StdRng::seed_from_u64(0xE000 + seed);
        let b = generators::random_left_regular(l, r, d, &mut rng).expect("d ≤ r");
        out.push(Scenario::new(
            "multicolor-def13",
            &format!("{l}x{r}d{d}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 15. disjoint-union — composite of two independently solvable parts;
    // the metamorphic composition checks exploit the part structure
    {
        let (l1, l2, d) = if full { (120, 80, 20) } else { (60, 40, 18) };
        let mut rng = StdRng::seed_from_u64(0xF000 + seed);
        let p1 = generators::random_biregular(l1, l1, d, &mut rng).expect("part 1");
        let p2 = generators::random_biregular(l2, l2, d, &mut rng).expect("part 2");
        let b = generators::bipartite_disjoint_union(&[&p1, &p2]);
        out.push(Scenario::new(
            "disjoint-union",
            &format!("{l1}+{l2}d{d}"),
            seed,
            b,
            c_default,
            None,
            None,
        ));
    }

    // 16. multigraph-euler — Eulerian stress multigraph: parallel bundles,
    // odd degrees, a disconnected component, and an isolated node; the
    // bipartite view is its node–edge incidence instance
    {
        let n = if full { 32 } else { 16 };
        let mut rng = StdRng::seed_from_u64(0xB000 + seed);
        let mut endpoints: Vec<(usize, usize)> = Vec::new();
        // a triple parallel bundle and a pendant edge
        endpoints.extend([(0, 1), (0, 1), (0, 1), (1, 2)]);
        // random body over nodes 0..n-4 (node n-1 stays isolated)
        for _ in 0..(3 * n) {
            let a = rng.random_range(0..n - 4);
            let mut c = rng.random_range(0..n - 4);
            while c == a {
                c = rng.random_range(0..n - 4);
            }
            endpoints.push((a, c));
        }
        // a disconnected 3-cycle on the tail nodes
        endpoints.extend([(n - 4, n - 3), (n - 3, n - 2), (n - 2, n - 4)]);
        let mg = MultiGraph::from_endpoints(n, endpoints.clone());
        let incidences: Vec<(usize, usize)> = endpoints
            .iter()
            .enumerate()
            .flat_map(|(i, &(a, c))| [(a, i), (c, i)])
            .collect();
        let b = BipartiteGraph::from_edges_bulk(n, endpoints.len(), &incidences)
            .expect("incidence of a loop-free multigraph is simple");
        out.push(Scenario::new(
            "multigraph-euler",
            &format!("n{n}"),
            seed,
            b,
            c_default,
            None,
            Some(mg),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn quick_corpus_has_all_families_once() {
        let c = corpus(Tier::Quick);
        assert_eq!(c.len(), FAMILY_COUNT);
        let names: BTreeSet<&str> = c.iter().map(|s| s.family).collect();
        assert_eq!(names.len(), FAMILY_COUNT, "families must be distinct");
    }

    #[test]
    fn full_corpus_repeats_families_across_seeds() {
        let c = corpus(Tier::Full);
        assert_eq!(c.len(), 3 * FAMILY_COUNT);
        let names: BTreeSet<&str> = c.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names.len(),
            3 * FAMILY_COUNT,
            "scenario names must be unique"
        );
    }

    #[test]
    fn quick_corpus_covers_every_regime() {
        let c = corpus(Tier::Quick);
        for r in Regime::ALL {
            assert!(
                c.iter().any(|s| s.has(r)),
                "no quick scenario exercises {}",
                r.name()
            );
        }
    }

    #[test]
    fn family_intent_matches_computed_tags() {
        let by_family = |fam: &str| -> Scenario {
            corpus(Tier::Quick)
                .into_iter()
                .find(|s| s.family == fam)
                .expect("family present")
        };
        assert!(by_family("biregular").has(Regime::ZeroRound));
        assert!(by_family("biregular").has(Regime::Thm25));
        assert!(by_family("complete").has(Regime::Thm27));
        assert!(by_family("drr-dense").has(Regime::Drr));
        assert!(by_family("thm27-window").has(Regime::Thm27));
        assert!(by_family("thm27-window").has(Regime::Drr));
        assert!(by_family("thm12-window").has(Regime::Thm12));
        assert!(!by_family("thm12-window").has(Regime::Thm25));
        assert!(by_family("near-threshold").has(Regime::Thm25));
        assert!(by_family("multicolor-def13").has(Regime::Multicolor));
        assert!(by_family("disjoint-union").has(Regime::Thm25));
        // the negative families really are negative
        assert!(!by_family("torus-incidence").weak_pipeline_expected());
        assert!(!by_family("hypercube-doubling").weak_pipeline_expected());
        assert!(by_family("multigraph-euler").has(Regime::DegreeSplit));
    }

    #[test]
    fn scenarios_rebuild_identically_from_seed() {
        let a = corpus(Tier::Quick);
        let b = corpus(Tier::Quick);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.bipartite, y.bipartite);
        }
    }
}
