//! The differential + metamorphic harness: drives every solver entrypoint
//! over a [`Scenario`], validates outputs with the `splitgraph::checks`
//! certifiers and the round ledgers, cross-checks alternate engines on the
//! shared instance, and asserts metamorphic invariants.
//!
//! Checks are grouped by *entrypoint group* so the conformance matrix
//! (family × group) stays readable and each cell is independently
//! replayable from its seed.

use crate::scenario::{Regime, Scenario, Tier};
use degree_split::{DegreeSplitter, Engine, Flavor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use splitgraph::math::{weak_multicolor_degree_threshold, weak_multicolor_required_colors};
use splitgraph::{checks, BipartiteGraph, Color};
use splitting_core as core;
use splitting_core::{SplitError, Theorem12Config, Variant, WeakSplittingSolver};
use splitting_reductions as red;

/// The entrypoint groups the harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// The [`WeakSplittingSolver`] parameter-dispatching façade.
    Solver,
    /// Direct theorem pipelines: 2.5, 2.7, 1.2, and the zero-round
    /// algorithm, plus their round-ledger bounds.
    Theorems,
    /// Multicolor splitting variants (Definitions 1.2/1.3) across the
    /// random, compiled-deterministic, and SLOCAL engines.
    Multicolor,
    /// Directed degree splitting across every `Engine` × `Flavor` combo.
    DegreeSplit,
    /// Section 4 reductions: uniform splitting, Δ-coloring, MIS, edge
    /// coloring.
    Reductions,
    /// Metamorphic invariants: relabeling equivariance, Red↔Blue swap,
    /// disjoint-union composition.
    Metamorphic,
    /// The `splitting-api` request/solution layer: every applicable
    /// `Problem` variant solved through `Session::solve`, bit-compared
    /// against the legacy entrypoint it shims, with verified
    /// certificates and batch/sequential equality.
    Api,
    /// The `splitd` service layer: every applicable request rendered to
    /// the wire, run through the job-queue server, and the embedded
    /// reply payload byte-compared against a direct `Session::solve`
    /// rendering — the bit-parity guarantee of `docs/PROTOCOL.md`.
    Server,
    /// The service under seeded fault injection: the scenario's request
    /// menu replayed through a chaos-armed server (worker panics,
    /// stalls, torn frames, dropped connections), asserting that every
    /// admitted request gets exactly one reply or a clean teardown,
    /// surviving replies stay byte-identical to direct solves, reply
    /// order is preserved, the fault schedule replays bit-identically
    /// from its seed, and the pool survives to serve fresh work.
    Chaos,
    /// Crash safety: the scenario menu driven through a journaled
    /// server that is killed (`process_kill` chaos site) mid-stream,
    /// asserting that no admitted request is lost, none is applied
    /// twice, recovered solutions are byte-identical to the
    /// uninterrupted run, keyed retries replay from the idempotency
    /// cache instead of re-solving, and corrupt or torn journal images
    /// recover cleanly to the last valid record.
    Recovery,
    /// Incremental re-splitting under churn: seeded grow/shrink/rewire
    /// mutation streams driven through `Session::hold` /
    /// `HeldSolution::apply`, asserting every repaired solution's
    /// certificate re-verifies against the patched instance, repair and
    /// from-scratch solves agree on accept/decline at every step, the
    /// full stream applied up front reproduces the final instance
    /// bit-for-bit, and the server's `mutate` path answers
    /// byte-identically to the direct hold → apply path.
    Churn,
}

impl Group {
    /// Every group, in matrix-column order.
    pub const ALL: [Group; 11] = [
        Group::Solver,
        Group::Theorems,
        Group::Multicolor,
        Group::DegreeSplit,
        Group::Reductions,
        Group::Metamorphic,
        Group::Api,
        Group::Server,
        Group::Chaos,
        Group::Recovery,
        Group::Churn,
    ];

    /// Stable display/selector name.
    pub fn name(self) -> &'static str {
        match self {
            Group::Solver => "solver",
            Group::Theorems => "theorems",
            Group::Multicolor => "multicolor",
            Group::DegreeSplit => "degree-split",
            Group::Reductions => "reductions",
            Group::Metamorphic => "metamorphic",
            Group::Api => "api",
            Group::Server => "server",
            Group::Chaos => "chaos",
            Group::Recovery => "recovery",
            Group::Churn => "churn",
        }
    }

    /// Parses a selector name back into a group.
    pub fn parse(s: &str) -> Option<Group> {
        Group::ALL.into_iter().find(|g| g.name() == s)
    }
}

/// One failed check, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Scenario name (`family/<params>#<seed>`).
    pub scenario: String,
    /// Scenario family.
    pub family: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Entrypoint group the check belongs to.
    pub group: Group,
    /// Check identifier.
    pub check: &'static str,
    /// Human-readable failure detail.
    pub detail: String,
}

/// Results of one (scenario, group) cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The group this cell drove.
    pub group: Group,
    /// Number of checks executed.
    pub checks: usize,
    /// Failed checks.
    pub failures: Vec<Finding>,
}

/// Results of one scenario across all groups.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario family.
    pub family: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Regime tags (for the matrix).
    pub regimes: Vec<Regime>,
    /// Per-group cells.
    pub cells: Vec<CellReport>,
}

/// The whole conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// The tier that was run.
    pub tier: Tier,
    /// Per-scenario reports, in corpus order.
    pub scenarios: Vec<ScenarioReport>,
}

impl ConformanceReport {
    /// Total checks executed.
    pub fn total_checks(&self) -> usize {
        self.scenarios
            .iter()
            .flat_map(|s| &s.cells)
            .map(|c| c.checks)
            .sum()
    }

    /// All failures across the run.
    pub fn failures(&self) -> Vec<&Finding> {
        self.scenarios
            .iter()
            .flat_map(|s| &s.cells)
            .flat_map(|c| &c.failures)
            .collect()
    }

    /// Whether every check passed.
    pub fn is_green(&self) -> bool {
        self.failures().is_empty()
    }
}

/// Check recorder for one cell.
struct Ctx<'a> {
    scenario: &'a Scenario,
    group: Group,
    checks: usize,
    failures: Vec<Finding>,
}

impl<'a> Ctx<'a> {
    fn new(scenario: &'a Scenario, group: Group) -> Self {
        Ctx {
            scenario,
            group,
            checks: 0,
            failures: Vec::new(),
        }
    }

    /// Records a check; on failure, captures the detail for the ledger.
    fn check(&mut self, name: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(Finding {
                scenario: self.scenario.name.clone(),
                family: self.scenario.family,
                seed: self.scenario.seed,
                group: self.group,
                check: name,
                detail: detail(),
            });
        }
    }

    fn into_cell(self) -> CellReport {
        CellReport {
            group: self.group,
            checks: self.checks,
            failures: self.failures,
        }
    }
}

/// Runs the full corpus for a tier over every group.
pub fn run_corpus(tier: Tier) -> ConformanceReport {
    run_corpus_groups(tier, &Group::ALL)
}

/// Runs the full corpus for a tier over selected groups — the CLI's
/// `--group` filter (e.g. a chaos-only CI sweep).
pub fn run_corpus_groups(tier: Tier, groups: &[Group]) -> ConformanceReport {
    let scenarios = crate::scenario::corpus(tier)
        .iter()
        .map(|s| run_scenario(s, groups))
        .collect();
    ConformanceReport { tier, scenarios }
}

/// Runs selected groups over one scenario.
pub fn run_scenario(s: &Scenario, groups: &[Group]) -> ScenarioReport {
    let cells = groups.iter().map(|&g| run_cell(s, g)).collect();
    ScenarioReport {
        scenario: s.name.clone(),
        family: s.family,
        seed: s.seed,
        regimes: s.regimes.clone(),
        cells,
    }
}

/// Runs one (scenario, group) cell — the replayable unit.
pub fn run_cell(s: &Scenario, group: Group) -> CellReport {
    let mut ctx = Ctx::new(s, group);
    match group {
        Group::Solver => check_solver(&mut ctx),
        Group::Theorems => check_theorems(&mut ctx),
        Group::Multicolor => check_multicolor(&mut ctx),
        Group::DegreeSplit => check_degree_split(&mut ctx),
        Group::Reductions => check_reductions(&mut ctx),
        Group::Metamorphic => check_metamorphic(&mut ctx),
        Group::Api => check_api(&mut ctx),
        Group::Server => check_server(&mut ctx),
        Group::Chaos => check_chaos(&mut ctx),
        Group::Recovery => check_recovery(&mut ctx),
        Group::Churn => check_churn(&mut ctx),
    }
    ctx.into_cell()
}

// ---------------------------------------------------------------- solver

fn check_solver(ctx: &mut Ctx<'_>) {
    let s = ctx.scenario;
    let b = &s.bipartite;
    for allow_randomized in [false, true] {
        let solver = WeakSplittingSolver {
            allow_randomized,
            seed: s.seed,
            thm12_constant: s.thm12_constant,
        };
        let mode = if allow_randomized { "rand" } else { "det" };
        ctx.check("solver.plan-pure", solver.plan(b) == solver.plan(b), || {
            format!("{mode}: plan() is not a pure function of the instance")
        });
        match solver.solve(b) {
            Ok((out, pipeline)) => {
                ctx.check(
                    "solver.plan-announced",
                    solver.plan(b) == Some(pipeline),
                    || format!("{mode}: solve() took {pipeline:?} but plan() disagrees"),
                );
                let violations = checks::weak_splitting_violations(b, &out.colors, 0);
                ctx.check("solver.output-valid", violations.is_empty(), || {
                    format!(
                        "{mode}: {pipeline:?} output violates {} constraints: {:?}",
                        violations.len(),
                        &violations[..violations.len().min(5)]
                    )
                });
                ctx.check(
                    "solver.ledger-sane",
                    out.ledger.total().is_finite() && out.ledger.total() >= 0.0,
                    || format!("{mode}: ledger total {}", out.ledger.total()),
                );
                // replay: same solver, same instance, identical output
                // (a replay that *errors* is itself a stability failure —
                // record it, never panic the corpus run)
                let replay = solver.solve(b);
                ctx.check(
                    "solver.replay-stable",
                    matches!(&replay, Ok((out2, _)) if out.colors == out2.colors),
                    || format!("{mode}: identical solve replay diverged: {replay:?}"),
                );
            }
            Err(err) => {
                ctx.check("solver.negative-honest", solver.plan(b).is_none(), || {
                    format!("{mode}: plan() promised a pipeline but solve() failed: {err}")
                });
                ctx.check(
                    "solver.error-kind",
                    matches!(err, SplitError::Precondition { .. }),
                    || format!("{mode}: uncovered instance must report Precondition, got {err}"),
                );
            }
        }
    }
    // the dispatcher must find a pipeline iff the instance carries a
    // positive regime tag (randomized mode sees every regime)
    let rand_solver = WeakSplittingSolver {
        allow_randomized: true,
        seed: s.seed,
        thm12_constant: s.thm12_constant,
    };
    ctx.check(
        "solver.matches-regimes",
        rand_solver.plan(b).is_some() == s.weak_pipeline_expected(),
        || {
            format!(
                "plan = {:?} but regime tags say expected = {}",
                rand_solver.plan(b),
                s.weak_pipeline_expected()
            )
        },
    );
}

// -------------------------------------------------------------- theorems

fn check_theorems(ctx: &mut Ctx<'_>) {
    let s = ctx.scenario;
    let b = &s.bipartite;

    // Theorem 2.5: deterministic headline result
    if s.has(Regime::Thm25) {
        match core::theorem25(b, Flavor::Deterministic) {
            Ok((out, report)) => {
                ctx.check(
                    "thm25.valid",
                    checks::is_weak_splitting(b, &out.colors, 0),
                    || "deterministic Theorem 2.5 output invalid".into(),
                );
                let expect_drr = s.has(Regime::Drr) && s.has(Regime::Thm25);
                ctx.check(
                    "thm25.drr-branch",
                    (report.drr_iterations > 0) == expect_drr,
                    || {
                        format!(
                            "DRR iterations = {}, Drr tag = {}",
                            report.drr_iterations, expect_drr
                        )
                    },
                );
                // bit determinism (an erroring replay is itself a failure)
                let replay = core::theorem25(b, Flavor::Deterministic);
                ctx.check(
                    "thm25.bit-deterministic",
                    matches!(&replay, Ok((out2, _)) if out.colors == out2.colors),
                    || "two identical Theorem 2.5 runs diverged".into(),
                );
                // round-ledger bound: measured+charged rounds stay within a
                // generous constant of the paper's predicted bound
                let bound =
                    core::theorem25_round_bound(b.node_count(), b.min_left_degree(), b.rank());
                ctx.check(
                    "thm25.round-bound",
                    out.ledger.total() <= 64.0 * bound + 64.0,
                    || format!("ledger {} vs predicted bound {bound}", out.ledger.total()),
                );
                // randomized flavor must charge no more than deterministic
                // and stay valid
                let ran = core::theorem25(b, Flavor::Randomized);
                ctx.check(
                    "thm25.flavor-differential",
                    matches!(&ran, Ok((r, _)) if checks::is_weak_splitting(b, &r.colors, 0)
                        && r.ledger.charged_total() <= out.ledger.charged_total()),
                    || "randomized flavor failed, invalid, or charged more".into(),
                );
            }
            Err(err) => ctx.check("thm25.applies", false, || {
                format!("Thm25-tagged instance rejected: {err}")
            }),
        }
    } else {
        ctx.check(
            "thm25.negative",
            matches!(
                core::theorem25(b, Flavor::Deterministic),
                Err(SplitError::Precondition { .. })
            ),
            || "untagged instance was accepted by Theorem 2.5".into(),
        );
    }

    // Zero-round randomized algorithm (same regime as Thm 2.5)
    if s.has(Regime::ZeroRound) {
        match core::zero_round_whp(b, s.seed, 32) {
            Ok(out) => {
                ctx.check(
                    "zero-round.valid",
                    checks::is_weak_splitting(b, &out.colors, 0),
                    || "zero_round_whp returned an invalid splitting".into(),
                );
                ctx.check("zero-round.zero-rounds", out.ledger.total() == 0.0, || {
                    format!("zero-round ledger is {}", out.ledger.total())
                });
                // differential vs the deterministic pipeline on the shared
                // instance: both engines must certify
                if s.has(Regime::Thm25) {
                    let det = core::theorem25(b, Flavor::Deterministic);
                    ctx.check(
                        "zero-round.cross-engine",
                        det.map(|(o, _)| checks::is_weak_splitting(b, &o.colors, 0))
                            .unwrap_or(false),
                        || "deterministic engine disagrees on a shared instance".into(),
                    );
                }
            }
            Err(err) => ctx.check("zero-round.applies", false, || {
                format!("ZeroRound-tagged instance failed: {err}")
            }),
        }
        let a = core::zero_round_coloring(b, s.seed);
        let c = core::zero_round_coloring(b, s.seed);
        ctx.check("zero-round.seed-stable", a.colors == c.colors, || {
            "same seed produced different zero-round colorings".into()
        });
    } else {
        ctx.check(
            "zero-round.negative",
            matches!(
                core::zero_round_whp(b, s.seed, 4),
                Err(SplitError::Precondition { .. })
            ),
            || "untagged instance was accepted by zero_round_whp".into(),
        );
    }

    // Theorem 2.7: the δ ≥ 6r regime, deterministic and randomized
    if s.has(Regime::Thm27) {
        for variant in [Variant::Deterministic, Variant::Randomized(s.seed)] {
            match core::theorem27(b, variant) {
                Ok(out) => {
                    ctx.check(
                        "thm27.valid",
                        checks::is_weak_splitting(b, &out.colors, 0),
                        || format!("Theorem 2.7 {variant:?} output invalid"),
                    );
                    let replay = core::theorem27(b, variant);
                    ctx.check(
                        "thm27.seed-stable",
                        matches!(&replay, Ok(out2) if out.colors == out2.colors),
                        || format!("Theorem 2.7 {variant:?} not stable under replay"),
                    );
                }
                Err(err) => ctx.check("thm27.applies", false, || {
                    format!("Thm27-tagged instance rejected ({variant:?}): {err}")
                }),
            }
        }
    } else {
        ctx.check(
            "thm27.negative",
            matches!(
                core::theorem27(b, Variant::Deterministic),
                Err(SplitError::Precondition { .. })
            ),
            || "untagged instance was accepted by Theorem 2.7".into(),
        );
    }

    // Theorem 1.2: the randomized shattering window
    if s.has(Regime::Thm12) {
        let cfg = Theorem12Config {
            seed: s.seed,
            c_constant: s.thm12_constant,
            ..Theorem12Config::default()
        };
        match core::theorem12(b, &cfg) {
            Ok(out) => {
                ctx.check(
                    "thm12.valid",
                    checks::is_weak_splitting(b, &out.colors, 0),
                    || "Theorem 1.2 output invalid".into(),
                );
                let replay = core::theorem12(b, &cfg);
                ctx.check(
                    "thm12.seed-stable",
                    matches!(&replay, Ok(out2) if out.colors == out2.colors),
                    || "Theorem 1.2 not stable under identical config".into(),
                );
            }
            Err(err) => ctx.check("thm12.applies", false, || {
                format!("Thm12-tagged instance failed: {err}")
            }),
        }
    } else {
        let cfg = Theorem12Config {
            seed: s.seed,
            c_constant: s.thm12_constant,
            ..Theorem12Config::default()
        };
        ctx.check(
            "thm12.negative",
            matches!(
                core::theorem12(b, &cfg),
                Err(SplitError::Precondition { .. })
            ),
            || "untagged instance was accepted by Theorem 1.2".into(),
        );
    }
}

// ------------------------------------------------------------ multicolor

fn check_multicolor(ctx: &mut Ctx<'_>) {
    let s = ctx.scenario;
    let b = &s.bipartite;
    let n = b.node_count();

    // Definition 1.3 (C-weak multicolor): certified only in its regime
    if s.has(Regime::Multicolor) {
        let threshold = weak_multicolor_degree_threshold(n);
        let required = weak_multicolor_required_colors(n);
        let rand_out = core::weak_multicolor_random(b, s.seed);
        ctx.check(
            "weak-multicolor.random-valid",
            checks::is_weak_multicolor_splitting(b, &rand_out.colors, threshold, required),
            || "randomized Def 1.3 coloring invalid in its certified regime".into(),
        );
        match core::weak_multicolor_deterministic(b) {
            Ok(det) => {
                ctx.check(
                    "weak-multicolor.det-valid",
                    checks::is_weak_multicolor_splitting(b, &det.colors, threshold, required),
                    || "deterministic Def 1.3 coloring invalid".into(),
                );
                ctx.check(
                    "weak-multicolor.palette",
                    det.palette as usize == required,
                    || format!("palette {} vs required {required}", det.palette),
                );
                // differential: the compiled LOCAL engine and the SLOCAL
                // engine are the same greedy pass — bit-identical colors
                match core::weak_multicolor_slocal(b) {
                    Ok(sl) => ctx.check(
                        "weak-multicolor.local-vs-slocal",
                        sl.colors == det.colors,
                        || "compiled and SLOCAL engines diverge on shared instance".into(),
                    ),
                    Err(err) => ctx.check("weak-multicolor.local-vs-slocal", false, || {
                        format!("SLOCAL engine failed where compiled succeeded: {err}")
                    }),
                }
            }
            Err(err) => ctx.check("weak-multicolor.det-applies", false, || {
                format!("Multicolor-tagged instance rejected: {err}")
            }),
        }
    }

    // Definition 1.2 ((C, λ)-multicolor): runs everywhere; the Chernoff
    // certificate may legitimately decline small-degree instances, but an
    // accepted run must be valid, within palette, and replayable
    let (c_bound, lambda) = (6u32, 0.6f64);
    let palette = core::theorem33_palette(c_bound, lambda);
    ctx.check("multicolor.palette-bound", palette <= c_bound, || {
        format!("palette {palette} exceeds C = {c_bound}")
    });
    let rand_out = core::multicolor_splitting_random(b, c_bound, lambda, s.seed);
    ctx.check(
        "multicolor.random-in-palette",
        rand_out.colors.iter().all(|&x| x < rand_out.palette),
        || "randomized (C, λ) coloring used a color outside its palette".into(),
    );
    let replay = core::multicolor_splitting_random(b, c_bound, lambda, s.seed);
    ctx.check(
        "multicolor.random-seed-stable",
        rand_out.colors == replay.colors,
        || "same seed produced different (C, λ) colorings".into(),
    );
    match core::multicolor_splitting_deterministic(b, c_bound, lambda) {
        Ok(det) => {
            ctx.check(
                "multicolor.det-valid",
                checks::is_multicolor_splitting(b, &det.colors, det.palette, lambda, 0),
                || "accepted deterministic (C, λ) coloring is invalid".into(),
            );
            let det2 = core::multicolor_splitting_deterministic(b, c_bound, lambda);
            ctx.check(
                "multicolor.det-bit-deterministic",
                matches!(&det2, Ok(d2) if det.colors == d2.colors),
                || "deterministic (C, λ) engine not replay-stable".into(),
            );
        }
        Err(err) => {
            // EstimatorTooLarge is the honest answer outside the certified
            // regime; in the Def 1.3 regime (huge degrees) it must succeed
            ctx.check(
                "multicolor.det-declines-honestly",
                matches!(err, SplitError::EstimatorTooLarge { .. }) && !s.has(Regime::Multicolor),
                || format!("deterministic (C, λ) run failed with {err}"),
            );
        }
    }
}

// ---------------------------------------------------------- degree-split

fn check_degree_split(ctx: &mut Ctx<'_>) {
    let s = ctx.scenario;
    if !s.has(Regime::DegreeSplit) {
        return;
    }
    let g = s.multigraph();
    let n = g.node_count();
    let eps = 0.25;
    let mut oracle_reference: Option<Vec<bool>> = None;
    for engine in [Engine::EulerianOracle, Engine::Walk] {
        for flavor in [Flavor::Deterministic, Flavor::Randomized] {
            let splitter = DegreeSplitter::new(eps, engine, flavor);
            let r = splitter.split(&g, n);
            let tag = format!("{engine:?}/{flavor:?}");
            ctx.check(
                "degree-split.covers-edges",
                r.orientation.edge_count() == g.edge_count(),
                || {
                    format!(
                        "{tag}: oriented {} of {} edges",
                        r.orientation.edge_count(),
                        g.edge_count()
                    )
                },
            );
            let r2 = splitter.split(&g, n);
            let bits = |o: &splitgraph::Orientation| -> Vec<bool> {
                (0..o.edge_count())
                    .map(|e| o.is_towards_second(e))
                    .collect()
            };
            ctx.check(
                "degree-split.replay-stable",
                bits(&r.orientation) == bits(&r2.orientation),
                || format!("{tag}: identical splits disagree"),
            );
            match engine {
                Engine::EulerianOracle => {
                    // the reference engine: Theorem 2.3 contract, in fact
                    // discrepancy ≤ parity, rounds charged not measured
                    ctx.check(
                        "degree-split.oracle-contract",
                        splitter.contract_violations(&g, &r.orientation).is_empty(),
                        || format!("{tag}: ε·d + 2 contract violated"),
                    );
                    let parity_ok =
                        (0..n).all(|v| r.orientation.discrepancy(&g, v) <= g.degree(v) % 2 + 1);
                    ctx.check("degree-split.oracle-parity", parity_ok, || {
                        format!("{tag}: discrepancy above the Eulerian parity bound")
                    });
                    ctx.check(
                        "degree-split.oracle-charged",
                        r.ledger.measured_total() == 0.0
                            && (g.edge_count() == 0 || r.ledger.charged_total() > 0.0),
                        || format!("{tag}: oracle rounds must be charged, not measured"),
                    );
                    // flavor must not change the orientation, only the charge
                    match &oracle_reference {
                        None => oracle_reference = Some(bits(&r.orientation)),
                        Some(reference) => ctx.check(
                            "degree-split.flavor-invariant",
                            *reference == bits(&r.orientation),
                            || "charged flavor changed the oracle's orientation".into(),
                        ),
                    }
                }
                Engine::Walk => {
                    // measured engine: cuts can concentrate on one node of
                    // an irregular multigraph (per-node bounds degenerate
                    // to d + 1 there), so the ε·d + 2 contract is asserted
                    // in aggregate — its documented strength
                    let total: f64 = (0..n)
                        .map(|v| r.orientation.discrepancy(&g, v) as f64)
                        .sum();
                    let budget: f64 = (0..n).map(|v| eps * g.degree(v) as f64 + 2.0).sum();
                    ctx.check("degree-split.walk-aggregate", total <= budget, || {
                        format!("{tag}: total discrepancy {total} above Σ(ε·d + 2) = {budget}")
                    });
                    ctx.check(
                        "degree-split.walk-measured",
                        r.ledger.charged_total() == 0.0
                            && (g.edge_count() == 0 || r.ledger.measured_total() > 0.0),
                        || format!("{tag}: walk rounds must be measured, not charged"),
                    );
                }
            }
        }
    }
    // charged-formula differential: the randomized Theorem 2.3 flavor is
    // never more expensive than the deterministic one
    let det = DegreeSplitter::new(eps, Engine::EulerianOracle, Flavor::Deterministic).split(&g, n);
    let ran = DegreeSplitter::new(eps, Engine::EulerianOracle, Flavor::Randomized).split(&g, n);
    ctx.check(
        "degree-split.flavor-charge-order",
        ran.ledger.charged_total() <= det.ledger.charged_total(),
        || {
            format!(
                "randomized charge {} > deterministic {}",
                ran.ledger.charged_total(),
                det.ledger.charged_total()
            )
        },
    );
}

// ------------------------------------------------------------ reductions

fn check_reductions(ctx: &mut Ctx<'_>) {
    let s = ctx.scenario;
    let g = s.host_graph();
    let n = g.node_count();
    if n == 0 || g.edge_count() == 0 {
        return;
    }

    // uniform splitting (Section 4.1) at the feasible accuracy for the
    // max-degree floor; the Chernoff certificate only covers hosts dense
    // enough that the unclamped ε stays ≤ 1/2 (the Uniform regime tag).
    // The cap admits every registered host, full tier included (the
    // largest, K_{80,640}, flattens to 51,200 edges).
    if g.max_degree() >= 4 && g.edge_count() <= 64_000 {
        let dmax = g.max_degree();
        let eps = red::feasible_eps(n, dmax);
        // randomized: one coin per node; the union bound leaves ≥ 1/2
        // success probability per seed, so 16 seeds fail with p ≤ 2⁻¹⁶
        let las_vegas = (0..16).any(|i| {
            let sides = red::uniform_splitting_random(&g, s.seed.wrapping_add(i));
            checks::is_uniform_splitting(&g, &sides, eps, dmax)
        });
        ctx.check("uniform.random-las-vegas", las_vegas, || {
            format!("no valid uniform splitting in 16 seeds at eps = {eps:.3}")
        });
        let a = red::uniform_splitting_random(&g, s.seed);
        let b2 = red::uniform_splitting_random(&g, s.seed);
        ctx.check("uniform.random-seed-stable", a == b2, || {
            "same seed produced different uniform splittings".into()
        });
        match red::uniform_splitting_deterministic(&g, eps, dmax) {
            Ok(out) => {
                ctx.check(
                    "uniform.det-valid",
                    checks::is_uniform_splitting(&g, &out.colors, eps, dmax),
                    || format!("deterministic uniform splitting invalid at eps = {eps:.3}"),
                );
                let replay = red::uniform_splitting_deterministic(&g, eps, dmax);
                ctx.check(
                    "uniform.det-bit-deterministic",
                    matches!(&replay, Ok(out2) if out.colors == out2.colors),
                    || "deterministic uniform splitting not replay-stable".into(),
                );
            }
            Err(err) => ctx.check(
                "uniform.det-declines-honestly",
                matches!(err, SplitError::EstimatorTooLarge { .. }) && !s.has(Regime::Uniform),
                || format!("deterministic uniform splitting failed: {err}"),
            ),
        }
    }

    // the Section 4 reduction pipelines on small/medium hosts
    if g.edge_count() <= 3_000 && g.max_degree() >= 2 {
        let base = 4 * (splitgraph::math::log2(n.max(2)).ceil() as usize);
        match red::delta_coloring_via_splitting(&g, base, Some(0.35)) {
            Ok((colors, report, _)) => {
                ctx.check(
                    "coloring.proper",
                    checks::is_proper_coloring(&g, &colors),
                    || "Δ-coloring reduction produced an improper coloring".into(),
                );
                ctx.check(
                    "coloring.palette",
                    colors.iter().all(|&c| c < report.palette.max(1)),
                    || "coloring uses colors outside the reported palette".into(),
                );
            }
            Err(err) => ctx.check("coloring.applies", false, || {
                format!("Δ-coloring reduction failed: {err}")
            }),
        }
        let (in_set, _, _) = red::mis_via_splitting(&g, base, s.seed);
        ctx.check("mis.valid", checks::is_mis(&g, &in_set), || {
            "MIS reduction output is not a maximal independent set".into()
        });
        // differential: both edge-splitting engines on the shared host
        for engine in [red::EdgeSplitEngine::Eulerian, red::EdgeSplitEngine::Walk] {
            match red::edge_coloring_via_splitting(&g, 8, engine) {
                Ok((colors, _, _)) => ctx.check(
                    "edge-coloring.proper",
                    checks::is_proper_edge_coloring(&g, &colors),
                    || format!("{engine:?} edge coloring is improper"),
                ),
                Err(err) => ctx.check("edge-coloring.applies", false, || {
                    format!("{engine:?} edge coloring failed: {err}")
                }),
            }
        }
    }
}

// ------------------------------------------------------------------- api

/// Drives the `splitting-api` request/solution layer over the scenario
/// and bit-compares every route against the legacy entrypoint it shims.
fn check_api(ctx: &mut Ctx<'_>) {
    use splitting_api::{Determinism, Problem, Request, Session};

    let s = ctx.scenario;
    let b = &s.bipartite;
    let session = Session::with_threads(1);

    // weak splitting: the api must agree with the legacy façade verbatim
    // in both determinism policies — same dispatch, same bits, same
    // honesty about uncovered regimes
    for determinism in [Determinism::Deterministic, Determinism::Randomized] {
        let request = Request::new(
            Problem::WeakSplitting {
                thm12_constant: s.thm12_constant,
            },
            b.clone(),
        )
        .determinism_policy(determinism)
        .seed(s.seed);
        let legacy = WeakSplittingSolver {
            allow_randomized: determinism == Determinism::Randomized,
            seed: s.seed,
            thm12_constant: s.thm12_constant,
        };
        let mode = determinism.name();
        match (session.solve(&request), legacy.solve(b)) {
            (Ok(solution), Ok((out, pipeline))) => {
                ctx.check(
                    "api.weak-bit-identical",
                    solution.output.two_coloring() == Some(&out.colors[..]),
                    || format!("{mode}: api output diverges from the legacy façade"),
                );
                ctx.check(
                    "api.weak-provenance-pipeline",
                    solution.provenance.pipeline == Some(pipeline),
                    || {
                        format!(
                            "{mode}: provenance says {:?}, façade took {pipeline:?}",
                            solution.provenance.pipeline
                        )
                    },
                );
                ctx.check("api.weak-certificate", solution.certificate.holds(), || {
                    format!("{mode}: returned certificate does not hold")
                });
                ctx.check(
                    "api.weak-reverify",
                    solution.reverify(request.instance()),
                    || format!("{mode}: certificate fails re-verification"),
                );
                ctx.check(
                    "api.weak-ledger-identical",
                    solution.ledger.total() == out.ledger.total(),
                    || {
                        format!(
                            "{mode}: api ledger {} vs legacy {}",
                            solution.ledger.total(),
                            out.ledger.total()
                        )
                    },
                );
            }
            (Err(api_err), Err(legacy_err)) => {
                // both sides failed: the api error must be the typed
                // mapping of the façade's error (uncovered regime →
                // unsupported-regime, exhausted retries →
                // randomized-failure, …), not merely any failure
                let expected = splitting_api::ApiError::from(legacy_err).kind();
                ctx.check(
                    "api.weak-negative-typed",
                    api_err.kind() == expected,
                    || format!("{mode}: expected {expected}, got {api_err}"),
                );
            }
            (Ok(_), Err(e)) => ctx.check("api.weak-agreement", false, || {
                format!("{mode}: api solved where the façade failed with {e}")
            }),
            (Err(e), Ok(_)) => ctx.check("api.weak-agreement", false, || {
                format!("{mode}: api failed with {e} where the façade solved")
            }),
        }
    }

    // (C, λ)-multicolor: deterministic engine parity, including honest
    // declines outside the certified regime
    let request = Request::new(
        Problem::MulticolorSplitting {
            colors: 6,
            lambda: 0.6,
        },
        b.clone(),
    )
    .deterministic();
    match (
        session.solve(&request),
        core::multicolor_splitting_deterministic(b, 6, 0.6),
    ) {
        (Ok(solution), Ok(det)) => {
            ctx.check(
                "api.multicolor-bit-identical",
                solution.output.multi_coloring() == Some((&det.colors[..], det.palette)),
                || "api (C, λ) coloring diverges from the legacy engine".into(),
            );
            ctx.check(
                "api.multicolor-certificate",
                solution.certificate.holds() && solution.reverify(request.instance()),
                || "api (C, λ) certificate does not hold/re-verify".into(),
            );
        }
        (Err(api_err), Err(SplitError::EstimatorTooLarge { .. })) => ctx.check(
            "api.multicolor-declines-honestly",
            api_err.kind() == "certification-unavailable",
            || format!("expected certification-unavailable, got {api_err}"),
        ),
        (api, legacy) => ctx.check("api.multicolor-agreement", false, || {
            format!(
                "api {:?} vs legacy {:?} disagree about solvability",
                api.as_ref().map(|_| "ok").map_err(|e| e.kind()),
                legacy.as_ref().map(|_| "ok").err()
            )
        }),
    }

    // degree splitting on the scenario's derived multigraph
    if s.has(Regime::DegreeSplit) {
        let g = s.multigraph();
        let n = g.node_count();
        for engine in [Engine::EulerianOracle, Engine::Walk] {
            let request = Request::new(Problem::DegreeSplitting { eps: 0.25, engine }, g.clone())
                .deterministic();
            let legacy = DegreeSplitter::new(0.25, engine, Flavor::Deterministic).split(&g, n);
            let bits = |o: &splitgraph::Orientation| -> Vec<bool> {
                (0..o.edge_count())
                    .map(|e| o.is_towards_second(e))
                    .collect()
            };
            match session.solve(&request) {
                Ok(solution) => {
                    ctx.check(
                        "api.degree-split-bit-identical",
                        solution
                            .output
                            .edge_orientation()
                            .map(|o| bits(o) == bits(&legacy.orientation))
                            .unwrap_or(false),
                        || format!("{engine:?}: api orientation diverges from DegreeSplitter"),
                    );
                    ctx.check(
                        "api.degree-split-certificate",
                        solution.certificate.holds() && solution.reverify(request.instance()),
                        || format!("{engine:?}: contract certificate does not hold"),
                    );
                }
                Err(e) => ctx.check("api.degree-split-solves", false, || {
                    format!("{engine:?}: api rejected the multigraph: {e}")
                }),
            }
        }
    }

    // Section 4 reductions on small/medium hosts (same budget as the
    // legacy reductions group)
    let g = s.host_graph();
    if g.node_count() > 0 && g.edge_count() > 0 && g.edge_count() <= 3_000 && g.max_degree() >= 2 {
        let base = 4 * (splitgraph::math::log2(g.node_count().max(2)).ceil() as usize);

        let request = Request::new(
            Problem::Mis {
                base_degree: Some(base),
            },
            g.clone(),
        )
        .seed(s.seed);
        let (legacy, _, _) = red::mis_via_splitting(&g, base, s.seed);
        match session.solve(&request) {
            Ok(solution) => ctx.check(
                "api.mis-bit-identical",
                solution.output.independent_set() == Some(&legacy[..])
                    && solution.certificate.holds(),
                || "api MIS diverges from the legacy reduction".into(),
            ),
            Err(e) => ctx.check("api.mis-solves", false, || {
                format!("api rejected the MIS host: {e}")
            }),
        }

        let request = Request::new(
            Problem::EdgeColoring {
                base_degree: Some(8),
                engine: red::EdgeSplitEngine::Eulerian,
            },
            g.clone(),
        );
        match (
            session.solve(&request),
            red::edge_coloring_via_splitting(&g, 8, red::EdgeSplitEngine::Eulerian),
        ) {
            (Ok(solution), Ok((colors, _, _))) => ctx.check(
                "api.edge-coloring-bit-identical",
                solution
                    .output
                    .multi_coloring()
                    .map(|(xs, _)| xs == &colors[..])
                    .unwrap_or(false)
                    && solution.certificate.holds(),
                || "api edge coloring diverges from the legacy reduction".into(),
            ),
            (api, legacy) => ctx.check("api.edge-coloring-agreement", false, || {
                format!(
                    "api {:?} vs legacy {:?} disagree about solvability",
                    api.as_ref().map(|_| "ok").map_err(|e| e.kind()),
                    legacy.as_ref().map(|_| "ok").err()
                )
            }),
        }
    }

    // Definition 1.3 weak multicolor in its certified regime
    if s.has(Regime::Multicolor) {
        let request = Request::new(Problem::WeakMulticolor, b.clone()).deterministic();
        match (
            session.solve(&request),
            core::weak_multicolor_deterministic(b),
        ) {
            (Ok(solution), Ok(det)) => ctx.check(
                "api.weak-multicolor-bit-identical",
                solution.output.multi_coloring() == Some((&det.colors[..], det.palette))
                    && solution.certificate.holds(),
                || "api Def 1.3 coloring diverges from the legacy engine".into(),
            ),
            (api, legacy) => ctx.check("api.weak-multicolor-agreement", false, || {
                format!(
                    "api {:?} vs legacy {:?} disagree about solvability",
                    api.as_ref().map(|_| "ok").map_err(|e| e.kind()),
                    legacy.as_ref().map(|_| "ok").err()
                )
            }),
        }
    }

    // uniform splitting parity on hosts the legacy group also drives
    if g.max_degree() >= 4 && g.edge_count() <= 64_000 && g.edge_count() > 0 {
        let dmax = g.max_degree();
        let eps = red::feasible_eps(g.node_count(), dmax);
        let request = Request::new(
            Problem::UniformSplitting {
                eps: Some(eps),
                min_degree: Some(dmax),
            },
            g.clone(),
        )
        .deterministic();
        match (
            session.solve(&request),
            red::uniform_splitting_deterministic(&g, eps, dmax),
        ) {
            (Ok(solution), Ok(out)) => ctx.check(
                "api.uniform-bit-identical",
                solution.output.two_coloring() == Some(&out.colors[..])
                    && solution.certificate.holds(),
                || "api uniform splitting diverges from the legacy engine".into(),
            ),
            (Err(api_err), Err(SplitError::EstimatorTooLarge { .. })) => ctx.check(
                "api.uniform-declines-honestly",
                api_err.kind() == "certification-unavailable" && !s.has(Regime::Uniform),
                || format!("uniform decline mismatch: {api_err}"),
            ),
            (api, legacy) => ctx.check("api.uniform-agreement", false, || {
                format!(
                    "api {:?} vs legacy {:?} disagree about solvability",
                    api.as_ref().map(|_| "ok").map_err(|e| e.kind()),
                    legacy.as_ref().map(|_| "ok").err()
                )
            }),
        }
    }

    // Δ-coloring parity on small hosts (same budget as the legacy group)
    if g.node_count() > 0 && g.edge_count() > 0 && g.edge_count() <= 3_000 && g.max_degree() >= 2 {
        let base = 4 * (splitgraph::math::log2(g.node_count().max(2)).ceil() as usize);
        let request = Request::new(
            Problem::DeltaColoring {
                base_degree: Some(base),
                max_eps: Some(0.35),
            },
            g.clone(),
        )
        .deterministic();
        match (
            session.solve(&request),
            red::delta_coloring_via_splitting(&g, base, Some(0.35)),
        ) {
            (Ok(solution), Ok((colors, _, _))) => ctx.check(
                "api.delta-coloring-bit-identical",
                solution
                    .output
                    .multi_coloring()
                    .map(|(xs, _)| xs == &colors[..])
                    .unwrap_or(false)
                    && solution.certificate.holds(),
                || "api Δ-coloring diverges from the legacy reduction".into(),
            ),
            (api, legacy) => ctx.check("api.delta-coloring-agreement", false, || {
                format!(
                    "api {:?} vs legacy {:?} disagree about solvability",
                    api.as_ref().map(|_| "ok").map_err(|e| e.kind()),
                    legacy.as_ref().map(|_| "ok").err()
                )
            }),
        }
    }

    // sinkless orientation parity where the Figure 1 reduction applies
    if g.node_count() > 0 && g.min_degree() >= 5 && g.edge_count() <= 3_000 {
        let ids: Vec<u64> = (0..g.node_count() as u64).collect();
        let request = Request::new(Problem::SinklessOrientation, g.clone()).seed(s.seed);
        match (
            session.solve(&request),
            core::sinkless_via_weak_splitting(&g, &ids, s.seed),
        ) {
            (Ok(solution), Ok(reduction)) => ctx.check(
                "api.sinkless-bit-identical",
                solution
                    .output
                    .host_orientation()
                    .map(|o| o.forward == reduction.orientation.forward)
                    .unwrap_or(false)
                    && solution.certificate.holds(),
                || "api sinkless orientation diverges from the Figure 1 pipeline".into(),
            ),
            (api, legacy) => ctx.check("api.sinkless-agreement", false, || {
                format!(
                    "api {:?} vs legacy {:?} disagree about solvability",
                    api.as_ref().map(|_| "ok").map_err(|e| e.kind()),
                    legacy.as_ref().map(|_| "ok").err()
                )
            }),
        }
    }

    // batch = sequential, in request order (two policies over the shared
    // instance — cheap, and exercises the scoped-thread path)
    let requests = vec![
        Request::new(
            Problem::WeakSplitting {
                thm12_constant: s.thm12_constant,
            },
            b.clone(),
        )
        .seed(s.seed),
        Request::new(
            Problem::WeakSplitting {
                thm12_constant: s.thm12_constant,
            },
            b.clone(),
        )
        .deterministic(),
    ];
    let sequential: Vec<_> = requests.iter().map(|r| session.solve(r)).collect();
    let batched = Session::with_threads(2).solve_batch(&requests);
    let batch_matches = sequential.len() == batched.len()
        && sequential.iter().zip(&batched).all(|(a, b)| match (a, b) {
            (Ok(x), Ok(y)) => x.output == y.output,
            (Err(x), Err(y)) => x == y,
            _ => false,
        });
    ctx.check("api.batch-equals-sequential", batch_matches, || {
        "solve_batch diverges from sequential solve on the same requests".into()
    });
}

// ---------------------------------------------------------------- server

/// The scenario's service-request menu, mirroring the api group's
/// regime gating so every family exercises each applicable variant —
/// including ones that resolve to typed error payloads. Shared between
/// the `server` (fault-free parity) and `chaos` (fault-injected
/// survival) groups.
fn server_request_menu(s: &Scenario) -> Vec<(&'static str, splitting_api::Request)> {
    use splitting_api::{Determinism, Problem, Request};

    let b = &s.bipartite;
    let g = s.host_graph();
    let small_host =
        g.node_count() > 0 && g.edge_count() > 0 && g.edge_count() <= 3_000 && g.max_degree() >= 2;

    let mut requests: Vec<(&'static str, Request)> = vec![
        (
            "weak-det",
            Request::new(
                Problem::WeakSplitting {
                    thm12_constant: s.thm12_constant,
                },
                b.clone(),
            )
            .deterministic(),
        ),
        (
            "weak-rand",
            Request::new(
                Problem::WeakSplitting {
                    thm12_constant: s.thm12_constant,
                },
                b.clone(),
            )
            .determinism_policy(Determinism::Randomized)
            .seed(s.seed),
        ),
        (
            "multicolor",
            Request::new(
                Problem::MulticolorSplitting {
                    colors: 6,
                    lambda: 0.6,
                },
                b.clone(),
            )
            .deterministic(),
        ),
    ];
    if s.has(Regime::Multicolor) {
        requests.push((
            "weak-multicolor",
            Request::new(Problem::WeakMulticolor, b.clone()).deterministic(),
        ));
    }
    if s.has(Regime::DegreeSplit) {
        requests.push((
            "degree-split",
            Request::new(
                Problem::DegreeSplitting {
                    eps: 0.25,
                    engine: Engine::EulerianOracle,
                },
                s.multigraph(),
            )
            .deterministic(),
        ));
    }
    if small_host {
        let base = 4 * (splitgraph::math::log2(g.node_count().max(2)).ceil() as usize);
        requests.push((
            "mis",
            Request::new(
                Problem::Mis {
                    base_degree: Some(base),
                },
                g.clone(),
            )
            .seed(s.seed),
        ));
        requests.push((
            "delta-coloring",
            Request::new(
                Problem::DeltaColoring {
                    base_degree: Some(base),
                    max_eps: Some(0.35),
                },
                g.clone(),
            )
            .deterministic(),
        ));
        requests.push((
            "edge-coloring",
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(8),
                    engine: red::EdgeSplitEngine::Eulerian,
                },
                g.clone(),
            ),
        ));
    }
    if g.node_count() > 0 && g.min_degree() >= 5 && g.edge_count() <= 3_000 {
        requests.push((
            "sinkless",
            Request::new(Problem::SinklessOrientation, g.clone()).seed(s.seed),
        ));
    }
    requests
}

fn check_server(ctx: &mut Ctx<'_>) {
    use splitting_api::Session;
    use splitting_server::{wire, Priority, Server, ServerConfig, Submitted};

    let s = ctx.scenario;
    let requests = server_request_menu(s);

    // ground truth: the direct in-process rendering, solution or typed
    // error — exactly the payload the wire must carry, byte for byte
    let session = Session::with_threads(1);
    let expected: Vec<String> = requests
        .iter()
        .map(|(_, r)| {
            session
                .solve(r)
                .map_or_else(|e| e.to_json_line(), |sol| sol.to_json_line())
        })
        .collect();

    // wire path: render each request, round-trip it through the codec,
    // submit over one connection, and read the ordered reply stream
    let server = Server::start(ServerConfig {
        workers: 2,
        record_timings: false,
        ..ServerConfig::default()
    });
    let (mut tx, rx) = server.connect().split();
    for (name, request) in &requests {
        let line = wire::render_request(name, Priority::Normal, request);
        ctx.check(
            "server.request-roundtrip",
            wire::parse_request(&line)
                .map(|(envelope, parsed)| envelope.id == *name && parsed == *request)
                .unwrap_or(false),
            || format!("{name}: rendered request does not parse back identically"),
        );
        ctx.check(
            "server.admitted",
            tx.submit_line(&line) == Submitted::Queued,
            || format!("{name}: request refused admission"),
        );
    }
    tx.finish();
    let frames: Vec<String> = rx.collect();
    ctx.check(
        "server.one-reply-per-request",
        frames.len() == requests.len(),
        || format!("{} requests but {} replies", requests.len(), frames.len()),
    );
    for (i, ((name, _), want)) in requests.iter().zip(&expected).enumerate() {
        let Some(frame) = frames.get(i) else { break };
        let Some(reply) = wire::split_reply(frame) else {
            ctx.check("server.reply-parses", false, || {
                format!("{name}: reply frame is malformed: {frame}")
            });
            continue;
        };
        ctx.check(
            "server.reply-order",
            reply.id == *name && reply.seq == i as u64,
            || {
                format!(
                    "expected {name} at seq {i}, got {} at seq {}",
                    reply.id, reply.seq
                )
            },
        );
        ctx.check(
            "server.payload-byte-identical",
            reply.payload == Some(want.as_str()),
            || format!("{name}: wire payload diverges from direct Session::solve rendering"),
        );
        let expect_type = if want.starts_with("{\"event\":\"solution\"") {
            "solution"
        } else {
            "error"
        };
        ctx.check("server.frame-type", reply.frame_type == expect_type, || {
            format!("{name}: frame type {} for payload {want}", reply.frame_type)
        });
    }

    // the in-process fast path (pre-parsed requests, no codec) must
    // produce the very same frame stream as the wire path
    let (mut tx, rx) = server.connect().split();
    for (name, request) in &requests {
        tx.submit_request(name, Priority::Normal, request.clone());
    }
    tx.finish();
    let inproc: Vec<String> = rx.collect();
    ctx.check("server.inproc-equals-wire", inproc == frames, || {
        "submit_request frame stream diverges from the wire-path stream".into()
    });

    // instance-handle path: upload every distinct instance once, solve
    // the whole menu by handle, and require byte parity with the inline
    // wire pass above
    let (mut tx, mut rx) = server.connect().split();
    let handles: Vec<String> = requests
        .iter()
        .map(|(_, r)| wire::render_handle(wire::instance_fingerprint(r.instance())))
        .collect();
    let mut uploaded: Vec<&str> = Vec::new();
    for ((name, request), handle) in requests.iter().zip(&handles) {
        let first = !uploaded.contains(&handle.as_str());
        ctx.check(
            "server.upload-admitted",
            tx.submit_line(&wire::render_upload(name, request.instance())) == Submitted::Replied,
            || format!("{name}: upload frame not answered inline"),
        );
        let Some(frame) = rx.recv() else {
            ctx.check("server.upload-replied", false, || {
                format!("{name}: no uploaded frame arrived")
            });
            continue;
        };
        let reply = wire::split_reply(&frame);
        ctx.check(
            "server.upload-names-content-handle",
            reply
                .as_ref()
                .is_some_and(|r| r.frame_type == "uploaded" && frame.contains(handle.as_str())),
            || format!("{name}: uploaded frame lacks handle {handle}: {frame}"),
        );
        if first {
            uploaded.push(handle);
        } else {
            // duplicate-content upload is idempotent: same handle, no
            // new table entry
            ctx.check(
                "server.upload-idempotent",
                frame.contains(&format!("\"held\":{}", uploaded.len())),
                || format!("{name}: re-upload grew the handle table: {frame}"),
            );
        }
    }
    for (i, ((name, request), handle)) in requests.iter().zip(&handles).enumerate() {
        let line = wire::render_request_with_handle(name, Priority::Normal, handle, request);
        ctx.check(
            "server.handle-admitted",
            tx.submit_line(&line) == Submitted::Queued,
            || format!("{name}: handle-form request refused admission"),
        );
        let Some(frame) = rx.recv() else {
            ctx.check("server.handle-replied", false, || {
                format!("{name}: no reply to the handle-form request")
            });
            continue;
        };
        let reply = wire::split_reply(&frame);
        ctx.check(
            "server.handle-equals-inline",
            reply.is_some_and(|r| r.payload.map(str::to_owned) == Some(expected[i].clone())),
            || format!("{name}: handle-form payload diverges from the inline form"),
        );
    }
    // release lifecycle: every handle releases exactly once; a second
    // release and a post-release solve are typed errors; re-upload works
    for (handle, (name, request)) in uploaded.iter().zip(&requests) {
        tx.submit_line(&wire::render_release(name, handle));
        let released = rx.recv().unwrap_or_default();
        ctx.check(
            "server.release-replied",
            wire::split_reply(&released).is_some_and(|r| r.frame_type == "released"),
            || format!("{name}: release not acknowledged: {released}"),
        );
        tx.submit_line(&wire::render_release(name, handle));
        let again = rx.recv().unwrap_or_default();
        ctx.check(
            "server.double-release-is-typed-error",
            again.contains("unknown instance handle"),
            || format!("{name}: double release not a typed error: {again}"),
        );
        tx.submit_line(&wire::render_request_with_handle(
            name,
            Priority::Normal,
            handle,
            request,
        ));
        let stale = rx.recv().unwrap_or_default();
        ctx.check(
            "server.stale-handle-is-typed-error",
            stale.contains("upload it first"),
            || format!("{name}: post-release solve not a typed error: {stale}"),
        );
    }
    tx.finish();
    ctx.check("server.handle-stream-drained", rx.recv().is_none(), || {
        "unexpected trailing frames on the handle connection".into()
    });
    // every rendering this pass produced is canonical, so nothing may
    // have fallen off the zero-copy fast path onto the strict parser
    let stats = server.stats();
    ctx.check("server.fast-path", stats.parse_fallbacks == 0, || {
        format!(
            "{} canonical instance parses used the strict fallback",
            stats.parse_fallbacks
        )
    });
    ctx.check("server.handles-released", stats.handles_held == 0, || {
        format!(
            "{} handles still held after release pass",
            stats.handles_held
        )
    });
    server.shutdown();
}

// ---------------------------------------------------------------- chaos

/// One fault-injected pass of the scenario menu through a fresh server:
/// returns the transport outcome, the raw bytes that reached the wire,
/// and whether the pool still serves after the faults.
fn chaos_pass(
    requests: &[(&'static str, splitting_api::Request)],
    chaos_seed: u64,
) -> (
    std::io::Result<splitting_server::transport::ServeSummary>,
    Vec<u8>,
    bool,
) {
    use splitting_api::{Problem, Request};
    use splitting_server::{transport, wire, ChaosConfig, Priority, Server, ServerConfig};

    let server = Server::start(ServerConfig {
        workers: 2,
        record_timings: false,
        chaos: Some(ChaosConfig {
            seed: chaos_seed,
            worker_panic: 0.2,
            worker_stall: 0.1,
            stall_ms: 1,
            torn_frame: 0.1,
            drop_connection: 0.05,
            process_kill: 0.0,
        }),
        ..ServerConfig::default()
    });
    let mut input = String::new();
    for (name, request) in requests {
        input.push_str(&wire::render_request(name, Priority::Normal, request));
        input.push('\n');
    }
    let mut out = Vec::new();
    let outcome = transport::serve_stream(&server, input.as_bytes(), &mut out);
    // liveness probe: whatever the faults did to that connection, the
    // pool must still answer fresh in-process work (the probe bypasses
    // the transport, so the stream-writer faults cannot touch it; the
    // worker faults key off (conn, seq), so a panic here is possible
    // and still must yield exactly one frame)
    let (mut tx, mut rx) = server.connect().split();
    tx.submit_request(
        "liveness",
        Priority::Normal,
        Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            splitgraph::generators::cycle(6).expect("probe graph"),
        ),
    );
    tx.finish();
    let alive = rx
        .recv()
        .is_some_and(|frame| wire::split_reply(&frame).is_some_and(|r| r.id == "liveness"))
        && rx.recv().is_none();
    // bounded teardown is part of the liveness contract
    let drained = server.drain();
    server.shutdown();
    (outcome, out, drained && alive)
}

fn check_chaos(ctx: &mut Ctx<'_>) {
    use splitting_api::Session;
    use splitting_server::wire;

    let s = ctx.scenario;
    let requests = server_request_menu(s);
    let session = Session::with_threads(1);
    let expected: Vec<String> = requests
        .iter()
        .map(|(_, r)| {
            session
                .solve(r)
                .map_or_else(|e| e.to_json_line(), |sol| sol.to_json_line())
        })
        .collect();

    // CI sweeps extra schedules by exporting CONFORMANCE_CHAOS_SEED;
    // unset, the schedule is a pure function of the scenario seed
    let sweep = std::env::var("CONFORMANCE_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let chaos_seed = s.seed ^ 0xc0a5_f00d ^ sweep.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let (outcome, bytes, alive) = chaos_pass(&requests, chaos_seed);

    // invariant: the fault schedule is a pure function of the seed — a
    // second pass over a fresh server reproduces the wire byte stream
    // and the transport outcome exactly
    let (outcome2, bytes2, alive2) = chaos_pass(&requests, chaos_seed);
    ctx.check(
        "chaos.schedule-replays-bit-identically",
        bytes == bytes2
            && outcome.is_ok() == outcome2.is_ok()
            && outcome.as_ref().ok() == outcome2.as_ref().ok(),
        || "same chaos seed over the same menu produced a different wire stream".into(),
    );

    // invariant: one reply per admitted request, or a clean teardown.
    // A fault-free transport outcome must have answered everything; a
    // failed one must be the injected stream fault, never a hang (the
    // harness reaching this line at all pins the no-deadlock half).
    let text = String::from_utf8_lossy(&bytes);
    let complete_lines: Vec<&str> = if bytes.ends_with(b"\n") {
        text.lines().collect()
    } else {
        // a torn frame leaves a trailing fragment: every line before it
        // is complete
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        lines
    };
    match &outcome {
        Ok(summary) => {
            ctx.check(
                "chaos.every-admitted-request-answered",
                summary.replies_out == requests.len() as u64
                    && complete_lines.len() == requests.len(),
                || {
                    format!(
                        "clean run answered {} of {} requests",
                        summary.replies_out,
                        requests.len()
                    )
                },
            );
        }
        Err(e) => {
            ctx.check(
                "chaos.teardown-is-the-injected-fault",
                e.to_string().contains("chaos:"),
                || format!("connection died of an uninjected fault: {e}"),
            );
        }
    }

    // invariants on every complete frame that survived: parses, stays
    // in submission order, and — unless the worker panic fault replaced
    // the solve — carries the byte-identical direct payload
    let mut last_seq = None;
    for frame in &complete_lines {
        let Some(reply) = wire::split_reply(frame) else {
            ctx.check("chaos.surviving-frame-parses", false, || {
                format!("surviving frame is malformed: {frame}")
            });
            continue;
        };
        ctx.check(
            "chaos.reply-order-preserved",
            last_seq.is_none_or(|prev| reply.seq > prev),
            || format!("seq {} arrived after {last_seq:?}", reply.seq),
        );
        last_seq = Some(reply.seq);
        let i = reply.seq as usize;
        let Some((name, _)) = requests.get(i) else {
            ctx.check("chaos.reply-seq-in-range", false, || {
                format!("reply seq {i} exceeds the {}-request menu", requests.len())
            });
            continue;
        };
        ctx.check("chaos.reply-id-matches-request", reply.id == *name, || {
            format!("seq {i} reply id {} but request was {name}", reply.id)
        });
        let injected_panic = reply
            .payload
            .is_some_and(|p| p.contains("\"kind\":\"internal-panic\""));
        if !injected_panic {
            ctx.check(
                "chaos.surviving-payload-byte-identical",
                reply.payload == Some(expected[i].as_str()),
                || format!("{name}: surviving reply diverges from direct Session::solve"),
            );
        }
    }

    // invariant: no leaked workers, no wedged pool — both passes ended
    // with a live pool and a bounded drain
    ctx.check("chaos.pool-survives-and-drains", alive && alive2, || {
        "server failed the post-chaos liveness probe or drain bound".into()
    });
}

// -------------------------------------------------------------- recovery

/// Drives the crash-safety contract end to end: a journaled,
/// single-worker server is killed at a seed-chosen job mid-menu
/// (the `process_kill` chaos site), a fresh server recovers from the
/// same journal, and the client reconnects and retries every request
/// under its original idempotency key. The kill position is made
/// deterministic by probing the seeded schedule and picking the
/// probability that fires exactly once, so every seed exercises a
/// different crash point without any flakiness.
fn check_recovery(ctx: &mut Ctx<'_>) {
    use splitting_api::Session;
    use splitting_server::{
        journal, wire, Admission, ChaosConfig, FsyncPolicy, Journal, Priority, Server, ServerConfig,
    };
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let s = ctx.scenario;
    let requests = server_request_menu(s);
    let session = Session::with_threads(1);
    let expected: Vec<String> = requests
        .iter()
        .map(|(_, r)| {
            session
                .solve(r)
                .map_or_else(|e| e.to_json_line(), |sol| sol.to_json_line())
        })
        .collect();

    // CI sweeps extra crash schedules and fsync policies via env, like
    // the chaos group; unset, both are pure functions of the scenario
    let sweep = std::env::var("CONFORMANCE_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let chaos_seed = s.seed ^ 0x5afe_c0de ^ sweep.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let policy = std::env::var("CONFORMANCE_FSYNC_POLICY")
        .ok()
        .and_then(|v| FsyncPolicy::parse(&v))
        .unwrap_or(FsyncPolicy::Batch);

    // place the kill deterministically: the site's draw is a pure
    // function of (seed, conn, seq), so the probability just above the
    // menu's smallest draw fires exactly once, at a seed-chosen job
    let probe = ChaosConfig {
        seed: chaos_seed,
        ..ChaosConfig::default()
    };
    let rolls: Vec<f64> = (0..requests.len() as u64)
        .map(|seq| probe.process_kill_roll(0, seq))
        .collect();
    let kill_seq = rolls
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("rolls are finite"))
        .map(|(i, _)| i)
        .expect("menu is non-empty");
    let mut sorted = rolls.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rolls are finite"));
    let process_kill = if sorted.len() > 1 {
        (sorted[0] + sorted[1]) / 2.0
    } else {
        sorted[0] + 1e-12
    };

    let path = std::env::temp_dir().join(format!(
        "splitd-recovery-{}-{}-{}-{}.journal",
        std::process::id(),
        s.family.replace(['/', '#'], "-"),
        s.seed,
        sweep
    ));
    let _ = std::fs::remove_file(&path);
    let keys: Vec<String> = requests
        .iter()
        .map(|(name, _)| format!("{name}#{}", s.seed))
        .collect();

    // ---- pass 1: the journaled server dies mid-stream ---------------
    let journal1 = Arc::new(Journal::open(&path, policy).expect("fresh journal opens"));
    let server = Server::start(ServerConfig {
        workers: 1,
        record_timings: false,
        admission: Admission::Block,
        chaos: Some(ChaosConfig {
            seed: chaos_seed,
            process_kill,
            ..ChaosConfig::default()
        }),
        journal: Some(Arc::clone(&journal1)),
        ..ServerConfig::default()
    });
    let (mut tx, mut rx) = server.connect().split();
    for ((name, request), key) in requests.iter().zip(&keys) {
        let line = wire::render_request_with_key(name, Priority::Normal, Some(key), request);
        let _ = tx.submit_line(&line);
    }
    tx.finish();
    let mut delivered: Vec<String> = Vec::new();
    while let Some(frame) = rx.recv() {
        delivered.push(frame);
    }
    ctx.check("recovery.kill-fires", server.killed(), || {
        format!(
            "process_kill = {process_kill} never fired over {} jobs",
            requests.len()
        )
    });
    server.halt();
    drop(journal1);

    // ---- the journal image is the crash's ground truth --------------
    let bytes = std::fs::read(&path).expect("journal image readable");
    let scanned = journal::scan(&bytes).expect("own journal must scan clean");
    let admitted: Vec<&journal::AdmittedRecord> = scanned
        .records
        .iter()
        .filter_map(|r| match r {
            journal::Record::Admitted(rec) => Some(rec),
            journal::Record::Payload { .. } | journal::Record::Completed { .. } => None,
        })
        .collect();
    let completed_count = scanned
        .records
        .iter()
        .filter(|r| matches!(r, journal::Record::Completed { .. }))
        .count();
    let pending = journal::incomplete(&scanned.records);
    ctx.check(
        "recovery.in-process-kill-leaves-no-torn-tail",
        scanned.truncated == 0,
        || format!("{} torn bytes after an in-process kill", scanned.truncated),
    );
    ctx.check(
        "recovery.admission-order-preserved",
        admitted
            .iter()
            .zip(&requests)
            .all(|(rec, (name, _))| rec.id == *name),
        || "journaled admission order diverges from submission order".into(),
    );
    ctx.check(
        "recovery.completions-match-deliveries",
        completed_count == delivered.len() && delivered.len() == kill_seq,
        || {
            format!(
                "kill at job {kill_seq}: {} deliveries, {completed_count} completions",
                delivered.len()
            )
        },
    );
    ctx.check(
        "recovery.incomplete-is-exactly-the-lost-tail",
        pending.len() == admitted.len() - delivered.len()
            && pending.first().map(|r| r.id.as_str()) == requests.get(kill_seq).map(|(n, _)| *n),
        || {
            format!(
                "{} admitted, {} delivered, but {} incomplete (first: {:?})",
                admitted.len(),
                delivered.len(),
                pending.len(),
                pending.first().map(|r| &r.id)
            )
        },
    );
    for (i, frame) in delivered.iter().enumerate() {
        let ok = wire::split_reply(frame)
            .is_some_and(|r| r.seq == i as u64 && r.payload == Some(expected[i].as_str()));
        ctx.check("recovery.pre-kill-replies-byte-identical", ok, || {
            format!("delivered frame {i} diverges from the direct rendering: {frame}")
        });
    }

    // torn-tail property, directly on the image: any byte-length prefix
    // recovers exactly the fully-written records — never an error, a
    // panic, or a half-record
    let mut framed_ends = Vec::new();
    let mut pos = journal::HEADER_LEN;
    for record in &scanned.records {
        pos += journal::encode_record(record).len();
        framed_ends.push(pos);
    }
    for cut in [
        journal::HEADER_LEN,
        (journal::HEADER_LEN + bytes.len()) / 2,
        bytes.len().saturating_sub(1),
    ] {
        let want = framed_ends.iter().filter(|&&end| end <= cut).count();
        let ok = match journal::scan(&bytes[..cut]) {
            Ok(torn) => torn.records.len() == want && torn.records[..] == scanned.records[..want],
            Err(_) => false,
        };
        ctx.check("recovery.torn-prefix-recovers-full-records", ok, || {
            format!("cut at byte {cut}: did not recover exactly {want} records")
        });
    }
    // a flipped byte inside a record truncates to the records before it
    if bytes.len() > journal::HEADER_LEN + 1 {
        let mut corrupt = bytes.clone();
        let hit = journal::HEADER_LEN + (corrupt.len() - journal::HEADER_LEN) / 2;
        corrupt[hit] ^= 0xff;
        let ok = match journal::scan(&corrupt) {
            Ok(out) => {
                out.records.len() <= scanned.records.len()
                    && out.records[..] == scanned.records[..out.records.len()]
            }
            Err(_) => false,
        };
        ctx.check("recovery.corrupt-record-truncates-cleanly", ok, || {
            format!("flipping byte {hit} did not truncate to a valid record prefix")
        });
    }
    // header damage is a typed refusal, never a guess
    ctx.check(
        "recovery.foreign-bytes-are-typed-bad-magic",
        matches!(
            journal::scan(b"NOT-A-JOURNAL-AT-ALL"),
            Err(journal::JournalError::BadMagic(_))
        ),
        || "scan accepted a non-journal image".into(),
    );
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    ctx.check(
        "recovery.version-mismatch-is-typed",
        matches!(
            journal::scan(&future),
            Err(journal::JournalError::VersionMismatch {
                found: u32::MAX,
                ..
            })
        ),
        || "scan accepted a future-format journal".into(),
    );

    // ---- pass 2: a fresh server restarts on the same journal --------
    let journal2 = Arc::new(Journal::open(&path, policy).expect("journal reopens after kill"));
    ctx.check(
        "recovery.reopen-recovers-the-incomplete-tail",
        journal2.stats().recovered == pending.len() as u64,
        || {
            format!(
                "reopen recovered {} jobs, scan says {} were incomplete",
                journal2.stats().recovered,
                pending.len()
            )
        },
    );
    let recovered_keys: HashSet<String> = pending
        .iter()
        .filter_map(|r| r.idempotency_key.clone())
        .collect();
    let server = Server::start(ServerConfig {
        workers: 1,
        record_timings: false,
        admission: Admission::Block,
        journal: Some(Arc::clone(&journal2)),
        ..ServerConfig::default()
    });
    // recovered jobs re-solve in the background; their completions land
    // in the journal, so poll its counters (bounded) instead of sleeping
    let deadline = Instant::now() + Duration::from_secs(120);
    while journal2.stats().completed < pending.len() as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    ctx.check(
        "recovery.recovered-jobs-complete",
        journal2.stats().completed >= pending.len() as u64,
        || {
            format!(
                "only {} of {} recovered jobs completed within the bound",
                journal2.stats().completed,
                pending.len()
            )
        },
    );
    let appended_before_retry = journal2.stats().appended;

    // ---- pass 3: the client reconnects and retries everything -------
    let (mut tx, rx) = server.connect().split();
    for ((name, request), key) in requests.iter().zip(&keys) {
        let line = wire::render_request_with_key(name, Priority::Normal, Some(key), request);
        let _ = tx.submit_line(&line);
    }
    tx.finish();
    let frames: Vec<String> = rx.collect();
    ctx.check(
        "recovery.every-retry-answered",
        frames.len() == requests.len(),
        || format!("{} retries but {} replies", requests.len(), frames.len()),
    );
    let mut replays = 0u64;
    for (i, frame) in frames.iter().enumerate() {
        let (name, _) = &requests[i];
        let Some(reply) = wire::split_reply(frame) else {
            ctx.check("recovery.retry-reply-parses", false, || {
                format!("{name}: retry reply is malformed: {frame}")
            });
            continue;
        };
        ctx.check(
            "recovery.retry-payload-byte-identical",
            reply.id == *name && reply.payload == Some(expected[i].as_str()),
            || format!("{name}: retry payload diverges from the uninterrupted rendering"),
        );
        if reply.replayed {
            replays += 1;
        }
        let was_recovered = recovered_keys.contains(&keys[i]);
        ctx.check(
            "recovery.recovered-keys-replay-not-resolve",
            reply.replayed == was_recovered,
            || {
                format!(
                    "{name}: replayed = {} but recovered = {was_recovered}",
                    reply.replayed
                )
            },
        );
    }
    ctx.check(
        "recovery.replays-skip-the-journal",
        journal2.stats().appended == appended_before_retry + (requests.len() as u64 - replays),
        || {
            format!(
                "{} admissions appended for {} fresh (non-replayed) retries",
                journal2.stats().appended - appended_before_retry,
                requests.len() as u64 - replays
            )
        },
    );
    let stats = server.stats();
    ctx.check(
        "recovery.stats-report-durability",
        stats.replayed == replays
            && stats.journal_recovered == pending.len() as u64
            && stats.journal_bytes > 0,
        || {
            format!(
                "stats {{ replayed: {}, journal_recovered: {}, journal_bytes: {} }} disagree with the run",
                stats.replayed, stats.journal_recovered, stats.journal_bytes
            )
        },
    );
    server.drain();
    server.shutdown();
    drop(journal2);

    // ---- end state: every admitted record completed exactly once ----
    let final_bytes = std::fs::read(&path).expect("final journal image");
    let final_scan = journal::scan(&final_bytes).expect("final journal scans");
    let mut completed_ids: Vec<u64> = final_scan
        .records
        .iter()
        .filter_map(|r| match r {
            journal::Record::Completed { record_id } => Some(*record_id),
            journal::Record::Payload { .. } | journal::Record::Admitted(_) => None,
        })
        .collect();
    let total = completed_ids.len();
    completed_ids.sort_unstable();
    completed_ids.dedup();
    ctx.check(
        "recovery.all-admitted-work-completes-exactly-once",
        journal::incomplete(&final_scan.records).is_empty() && completed_ids.len() == total,
        || {
            format!(
                "{} jobs still incomplete, {} duplicate completions",
                journal::incomplete(&final_scan.records).len(),
                total - completed_ids.len()
            )
        },
    );
    let _ = std::fs::remove_file(&path);
}

// ----------------------------------------------------------------- churn

fn check_churn(ctx: &mut Ctx<'_>) {
    use splitgraph::delta::{random_delta, ChurnStyle, EdgeDelta};
    use splitting_api::{HeldSolution, Instance, Problem, Request, Session};

    let s = ctx.scenario;
    let b = &s.bipartite;
    if b.left_count() == 0 || b.right_count() == 0 || b.edge_count() == 0 {
        return;
    }
    // CI sweeps extra mutation streams by exporting
    // CONFORMANCE_CHURN_SEED; the default stream is keyed from the
    // scenario seed so a failing cell replays bit-identically
    let sweep = std::env::var("CONFORMANCE_CHURN_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(s.seed);
    let session = Session::with_threads(1);
    let request = Request::new(
        Problem::WeakSplitting {
            thm12_constant: s.thm12_constant,
        },
        b.clone(),
    )
    .deterministic()
    .seed(s.seed);

    let scratch = match (session.hold(&request), session.solve(&request)) {
        (Err(held_err), Err(solve_err)) => {
            // negative regimes: hold must decline with the same typed
            // error the one-shot path reports — nothing to churn
            ctx.check(
                "churn.decline-typed",
                held_err.kind() == solve_err.kind(),
                || format!("hold declined with {held_err}, solve with {solve_err}"),
            );
            return;
        }
        (held, solve) => {
            ctx.check(
                "churn.hold-agrees-with-solve",
                held.is_ok() && solve.is_ok(),
                || {
                    format!(
                        "hold {:?} vs solve {:?} disagree about solvability",
                        held.as_ref().err().map(splitting_api::ApiError::kind),
                        solve.as_ref().err().map(splitting_api::ApiError::kind),
                    )
                },
            );
            let Ok(solution) = solve else { return };
            solution
        }
    };

    // one seeded mutation stream per churn style, each starting from an
    // adopted copy of the same from-scratch solution
    const STEPS: usize = 3;
    for (idx, style) in ChurnStyle::ALL.into_iter().enumerate() {
        let Ok(mut held) = HeldSolution::adopt(&session, &request, scratch.clone()) else {
            ctx.check("churn.adopt", false, || {
                format!("{}: adopting the scratch solution failed", style.name())
            });
            continue;
        };
        let mut rng = StdRng::seed_from_u64(sweep ^ ((idx as u64 + 1) << 32));
        let mut deltas: Vec<EdgeDelta> = Vec::new();
        for step in 0..STEPS {
            let delta = random_delta(held.instance(), style, 2, &mut rng);
            deltas.push(delta.clone());
            // ground truth: from-scratch solve of the patched instance
            let mut patched = held.instance().clone();
            if delta.apply(&mut patched).is_err() {
                ctx.check("churn.delta-applies", false, || {
                    format!("{}#{step}: sampled delta does not apply", style.name())
                });
                continue;
            }
            let patched_request = Request::new(
                Problem::WeakSplitting {
                    thm12_constant: s.thm12_constant,
                },
                patched,
            )
            .deterministic()
            .seed(s.seed);
            match (held.apply(&delta), session.solve(&patched_request)) {
                (Ok(repaired), Ok(_)) => {
                    ctx.check(
                        "churn.certificate-holds",
                        repaired.certificate.holds(),
                        || {
                            format!(
                                "{}#{step}: {} solution's certificate fails",
                                style.name(),
                                repaired.provenance.route
                            )
                        },
                    );
                    ctx.check(
                        "churn.reverifies-on-patched",
                        repaired.reverify(&Instance::Bipartite(held.instance().clone())),
                        || {
                            format!(
                                "{}#{step}: certificate does not re-verify against the patched instance",
                                style.name()
                            )
                        },
                    );
                }
                (Err(repair_err), Err(scratch_err)) => ctx.check(
                    "churn.decline-parity",
                    repair_err.kind() == scratch_err.kind(),
                    || {
                        format!(
                            "{}#{step}: repair declined with {repair_err}, scratch with {scratch_err}",
                            style.name()
                        )
                    },
                ),
                (Ok(repaired), Err(scratch_err)) => {
                    ctx.check("churn.accept-parity", false, || {
                        format!(
                            "{}#{step}: repair accepted via {} where scratch declined with {scratch_err}",
                            style.name(),
                            repaired.provenance.route
                        )
                    });
                }
                (Err(repair_err), Ok(_)) => {
                    ctx.check("churn.accept-parity", false, || {
                        format!(
                            "{}#{step}: repair declined with {repair_err} where scratch solved",
                            style.name()
                        )
                    });
                }
            }
        }
        // the whole stream applied up front reproduces the final held
        // instance bit-for-bit
        let mut replayed = b.clone();
        let replays_cleanly = deltas.iter().all(|d| d.apply(&mut replayed).is_ok());
        ctx.check(
            "churn.stream-composes",
            replays_cleanly && replayed == *held.instance(),
            || {
                format!(
                    "{}: replaying the delta stream diverges from the held instance",
                    style.name()
                )
            },
        );
        ctx.check(
            "churn.stats-count-updates",
            held.stats().mutations_applied == STEPS as u64
                && held.stats().repairs + held.stats().full_resolves <= STEPS as u64,
            || {
                format!(
                    "{}: stats {:?} disagree with {STEPS} updates",
                    style.name(),
                    held.stats()
                )
            },
        );
    }

    // server subcheck: a wire-level mutate on an uploaded handle moves
    // the held solution with it, and the follow-up handle solve answers
    // byte-identically to the direct hold → apply path
    {
        use splitting_server::{wire, Priority, Server, ServerConfig, Submitted};

        let mut rng = StdRng::seed_from_u64(sweep ^ 0x5EB7E5);
        let delta = random_delta(b, ChurnStyle::Rewire, 2, &mut rng);
        if delta.inserts().is_empty() && delta.deletes().is_empty() {
            return; // too dense to rewire: nothing to send
        }
        let server = Server::start(ServerConfig {
            workers: 1,
            record_timings: false,
            ..ServerConfig::default()
        });
        let (mut tx, mut rx) = server.connect().split();
        let handle = wire::render_handle(wire::instance_fingerprint(request.instance()));
        tx.submit_line(&wire::render_upload("up", request.instance()));
        rx.recv();
        tx.submit_line(&wire::render_request_with_handle(
            "s1",
            Priority::Normal,
            &handle,
            &request,
        ));
        rx.recv();
        let mutate = wire::render_mutate("m1", &handle, delta.inserts(), delta.deletes());
        ctx.check(
            "churn.server-mutate-inline",
            tx.submit_line(&mutate) == Submitted::Replied,
            || "mutate frame was not answered inline".into(),
        );
        let frame = rx.recv().unwrap_or_default();
        let new_handle = frame
            .split("\"new_handle\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_default()
            .to_owned();
        ctx.check(
            "churn.server-mutated-frame",
            frame.contains("\"type\":\"mutated\"") && !new_handle.is_empty(),
            || format!("expected a mutated frame naming the new handle, got {frame}"),
        );
        tx.submit_line(&wire::render_request_with_handle(
            "s2",
            Priority::Normal,
            &new_handle,
            &request,
        ));
        let reply = rx.recv().unwrap_or_default();
        let want = match HeldSolution::adopt(&session, &request, scratch) {
            Ok(mut direct) => direct
                .apply(&delta)
                .map_or_else(|e| e.to_json_line(), |sol| sol.to_json_line()),
            Err(e) => e.to_json_line(),
        };
        ctx.check(
            "churn.server-repair-byte-identical",
            wire::split_reply(&reply).and_then(|r| r.payload.map(str::to_owned))
                == Some(want.clone()),
            || format!("server churn reply diverges from direct hold → apply: {reply}"),
        );
        tx.finish();
        server.shutdown();
    }
}

// ----------------------------------------------------------- metamorphic

/// Applies a right-side relabeling to a bipartite instance.
fn relabel_right(b: &BipartiteGraph, perm: &[usize]) -> BipartiteGraph {
    let edges: Vec<(usize, usize)> = b.edges().map(|(u, v)| (u, perm[v])).collect();
    BipartiteGraph::from_edges_bulk(b.left_count(), b.right_count(), &edges)
        .expect("relabeling preserves simplicity")
}

fn check_metamorphic(ctx: &mut Ctx<'_>) {
    let s = ctx.scenario;
    let b = &s.bipartite;
    if !s.weak_pipeline_expected() {
        // negative instances stay negative under relabeling
        let mut rng = StdRng::seed_from_u64(s.seed ^ 0x5EED_5EED);
        let mut perm: Vec<usize> = (0..b.right_count()).collect();
        perm.shuffle(&mut rng);
        let relabeled = relabel_right(b, &perm);
        let solver = WeakSplittingSolver {
            seed: s.seed,
            thm12_constant: s.thm12_constant,
            ..Default::default()
        };
        ctx.check(
            "metamorphic.negative-relabel",
            solver.plan(&relabeled).is_none(),
            || "relabeling changed an uncovered instance into a covered one".into(),
        );
        return;
    }

    let solver = WeakSplittingSolver {
        seed: s.seed,
        thm12_constant: s.thm12_constant,
        ..Default::default()
    };
    let Ok((out, _)) = solver.solve(b) else {
        ctx.check("metamorphic.base-solve", false, || {
            "positive instance failed to solve".into()
        });
        return;
    };

    // Red ↔ Blue swap symmetry: weak splitting is color-symmetric
    let flipped: Vec<Color> = out.colors.iter().map(|c| c.flipped()).collect();
    ctx.check(
        "metamorphic.color-swap",
        checks::is_weak_splitting(b, &flipped, 0),
        || "flipping Red↔Blue broke a valid weak splitting".into(),
    );

    // node-relabeling equivariance: a permuted instance is still solvable,
    // and transporting the original solution along the permutation keeps
    // it valid on the permuted instance
    let mut rng = StdRng::seed_from_u64(s.seed ^ 0x5EED_5EED);
    let mut perm: Vec<usize> = (0..b.right_count()).collect();
    perm.shuffle(&mut rng);
    let relabeled = relabel_right(b, &perm);
    match solver.solve(&relabeled) {
        Ok((rout, _)) => ctx.check(
            "metamorphic.relabel-solvable",
            checks::is_weak_splitting(&relabeled, &rout.colors, 0),
            || "solver output on the relabeled instance is invalid".into(),
        ),
        Err(err) => ctx.check("metamorphic.relabel-solvable", false, || {
            format!("relabeled instance rejected: {err}")
        }),
    }
    let mut transported = out.colors.clone();
    for (v, &c) in out.colors.iter().enumerate() {
        transported[perm[v]] = c;
    }
    ctx.check(
        "metamorphic.relabel-transport",
        checks::is_weak_splitting(&relabeled, &transported, 0),
        || "transported solution invalid on the relabeled instance".into(),
    );

    // disjoint-union composition (bounded to keep the cell cheap):
    // solving the union solves each part, and gluing part solutions
    // solves the union
    if b.edge_count() <= 10_000 {
        let union = splitgraph::generators::bipartite_disjoint_union(&[b, b]);
        if solver.plan(&union).is_some() {
            match solver.solve(&union) {
                Ok((uout, _)) => {
                    let first: Vec<Color> = uout.colors[..b.right_count()].to_vec();
                    let second: Vec<Color> = uout.colors[b.right_count()..].to_vec();
                    ctx.check(
                        "metamorphic.union-restricts",
                        checks::is_weak_splitting(b, &first, 0)
                            && checks::is_weak_splitting(b, &second, 0),
                        || "union solution does not restrict to the parts".into(),
                    );
                }
                Err(err) => ctx.check("metamorphic.union-solvable", false, || {
                    format!("self-union of a covered instance rejected: {err}")
                }),
            }
            let mut glued = out.colors.clone();
            glued.extend(out.colors.iter().copied());
            ctx.check(
                "metamorphic.parts-compose",
                checks::is_weak_splitting(&union, &glued, 0),
                || "gluing two valid part solutions broke the union".into(),
            );
        }
    }
}
