//! # conformance — scenario corpus and differential/metamorphic harness
//!
//! All splitting problems in the paper are locally checkable, and
//! `splitgraph::checks` holds the ground-truth certifiers. This crate
//! closes the loop: a [`scenario`] registry enumerates instance families
//! tagged with the theorem regimes they exercise, and the [`harness`]
//! drives **every solver entrypoint** of the workspace over that corpus —
//!
//! * the [`splitting_core::WeakSplittingSolver`] dispatch façade,
//! * the direct theorem pipelines (2.5, 2.7, 1.2, zero-round),
//! * the multicolor variants (Definitions 1.2/1.3) across all engines,
//! * [`degree_split::DegreeSplitter`] over every `Engine` × `Flavor`,
//! * the Section 4 reductions (uniform splitting, Δ-coloring, MIS, edge
//!   coloring),
//!
//! validating outputs with the certifiers and round-ledger bounds,
//! cross-checking alternate engines on shared instances, and asserting
//! metamorphic invariants (relabeling equivariance, Red↔Blue swap,
//! disjoint-union composition). Failures are recorded in a seeded
//! [`replay`] ledger whose lines are one-command repros.
//!
//! Run the quick tier (per-PR CI budget) or the full tier:
//!
//! ```text
//! cargo run -p conformance --release -- --quick
//! cargo run -p conformance --release -- --full --ledger conformance-ledger.txt
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod replay;
pub mod report;
pub mod scenario;

pub use harness::{
    run_cell, run_corpus, run_corpus_groups, run_scenario, ConformanceReport, Finding, Group,
};
pub use replay::{repro_line, write_ledger, Selector, REPLAY_ENV};
pub use report::{matrix, render_matrix, MatrixRow};
pub use scenario::{corpus, Regime, Scenario, Tier, FAMILY_COUNT};
