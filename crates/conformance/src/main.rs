//! Conformance runner: drives the scenario corpus over every entrypoint
//! group, prints the family × group matrix, and writes the failure-replay
//! ledger. Exits non-zero when any check fails.
//!
//! Usage: `conformance [--quick | --full] [--ledger PATH]`

use conformance::{render_matrix, repro_line, run_corpus, write_ledger, Tier};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = if args.iter().any(|a| a == "--full") {
        Tier::Full
    } else {
        Tier::Quick
    };
    let ledger_path: PathBuf = args
        .iter()
        .position(|a| a == "--ledger")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("conformance-ledger.txt"));

    let label = match tier {
        Tier::Quick => "quick",
        Tier::Full => "full",
    };
    eprintln!("conformance: running the {label} tier…");
    let start = std::time::Instant::now();
    let report = run_corpus(tier);
    let elapsed = start.elapsed();

    print!("{}", render_matrix(&report));
    println!(
        "\n{} scenarios × {} groups, {} checks in {elapsed:.1?}",
        report.scenarios.len(),
        conformance::Group::ALL.len(),
        report.total_checks(),
    );

    if let Err(err) = write_ledger(&ledger_path, &report) {
        eprintln!(
            "conformance: could not write ledger {}: {err}",
            ledger_path.display()
        );
        return ExitCode::from(2);
    }

    let failures = report.failures();
    if failures.is_empty() {
        println!("conformance: GREEN (ledger at {})", ledger_path.display());
        ExitCode::SUCCESS
    } else {
        println!("conformance: {} FAILURES", failures.len());
        for f in &failures {
            println!("{}", repro_line(f));
        }
        println!("ledger written to {}", ledger_path.display());
        ExitCode::FAILURE
    }
}
