//! Conformance runner: drives the scenario corpus over every entrypoint
//! group, prints the family × group matrix, and writes the failure-replay
//! ledger. Exits non-zero when any check fails.
//!
//! Usage: `conformance [--quick | --full] [--group NAME ...] [--ledger PATH]`
//!
//! `--group` (repeatable) restricts the run to selected entrypoint
//! groups — e.g. `--group chaos` for the CI fault-injection sweep,
//! which additionally varies the schedule via `CONFORMANCE_CHAOS_SEED`.

use conformance::{render_matrix, repro_line, run_corpus_groups, write_ledger, Group, Tier};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = if args.iter().any(|a| a == "--full") {
        Tier::Full
    } else {
        Tier::Quick
    };
    let ledger_path: PathBuf = args
        .iter()
        .position(|a| a == "--ledger")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("conformance-ledger.txt"));
    let mut groups: Vec<Group> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg != "--group" {
            continue;
        }
        match args.get(i + 1).map(|name| (name, Group::parse(name))) {
            Some((_, Some(g))) => {
                if !groups.contains(&g) {
                    groups.push(g);
                }
            }
            Some((name, None)) => {
                eprintln!(
                    "conformance: unknown group {name:?} (expected one of: {})",
                    Group::ALL.map(Group::name).join(", ")
                );
                return ExitCode::from(2);
            }
            None => {
                eprintln!("conformance: --group needs a name");
                return ExitCode::from(2);
            }
        }
    }
    if groups.is_empty() {
        groups.extend(Group::ALL);
    }

    let label = match tier {
        Tier::Quick => "quick",
        Tier::Full => "full",
    };
    eprintln!(
        "conformance: running the {label} tier ({} groups)…",
        groups.len()
    );
    let start = std::time::Instant::now();
    let report = run_corpus_groups(tier, &groups);
    let elapsed = start.elapsed();

    print!("{}", render_matrix(&report));
    println!(
        "\n{} scenarios × {} groups, {} checks in {elapsed:.1?}",
        report.scenarios.len(),
        groups.len(),
        report.total_checks(),
    );

    if let Err(err) = write_ledger(&ledger_path, &report) {
        eprintln!(
            "conformance: could not write ledger {}: {err}",
            ledger_path.display()
        );
        return ExitCode::from(2);
    }

    let failures = report.failures();
    if failures.is_empty() {
        println!("conformance: GREEN (ledger at {})", ledger_path.display());
        ExitCode::SUCCESS
    } else {
        println!("conformance: {} FAILURES", failures.len());
        for f in &failures {
            println!("{}", repro_line(f));
        }
        println!("ledger written to {}", ledger_path.display());
        ExitCode::FAILURE
    }
}
