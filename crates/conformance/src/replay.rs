//! Seeded failure replay: every failed check prints a one-line repro that
//! re-runs exactly its (scenario, group) cell through the `replay`
//! integration test, and the full failure set is written to a ledger file
//! CI uploads as an artifact.

use crate::harness::{run_cell, CellReport, ConformanceReport, Finding, Group};
use crate::scenario::{corpus, Tier};
use std::io::Write;
use std::path::Path;

/// Environment variable the replay test reads its selector from.
pub const REPLAY_ENV: &str = "CONFORMANCE_REPLAY";

/// A parsed `scenario:group` selector (group optional — all groups when
/// omitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// Scenario name, exactly as printed in the ledger.
    pub scenario: String,
    /// Optional group restriction.
    pub group: Option<Group>,
}

impl Selector {
    /// Parses `scenario[:group]`. Scenario names contain `/` and `#` but
    /// never `:`, so the split is unambiguous.
    pub fn parse(raw: &str) -> Option<Selector> {
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        match raw.rsplit_once(':') {
            Some((scenario, group)) => Group::parse(group).map(|g| Selector {
                scenario: scenario.to_string(),
                group: Some(g),
            }),
            None => Some(Selector {
                scenario: raw.to_string(),
                group: None,
            }),
        }
    }
}

/// The one-line repro for a failure: paste-able into a shell.
pub fn repro_line(f: &Finding) -> String {
    format!(
        "FAIL {}:{} check={} detail={} | repro: {}='{}:{}' cargo test -p conformance --test replay -- --nocapture",
        f.scenario,
        f.group.name(),
        f.check,
        f.detail,
        REPLAY_ENV,
        f.scenario,
        f.group.name()
    )
}

/// Replays one selector against a tier's corpus (the scenario is rebuilt
/// from its registry seed, which is what makes the repro line sufficient).
/// Returns the replayed cells, or `None` if the scenario is not in the
/// tier's corpus.
pub fn replay(tier: Tier, sel: &Selector) -> Option<Vec<CellReport>> {
    let scenarios = corpus(tier);
    let s = scenarios.iter().find(|s| s.name == sel.scenario)?;
    let groups: Vec<Group> = match sel.group {
        Some(g) => vec![g],
        None => Group::ALL.to_vec(),
    };
    Some(groups.into_iter().map(|g| run_cell(s, g)).collect())
}

/// Writes the failure ledger: one repro line per failure, or a green
/// summary line when the run passed.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_ledger(path: &Path, report: &ConformanceReport) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    let failures = report.failures();
    if failures.is_empty() {
        writeln!(
            f,
            "GREEN {} scenarios, {} checks, 0 failures",
            report.scenarios.len(),
            report.total_checks()
        )?;
    } else {
        for finding in failures {
            writeln!(f, "{}", repro_line(finding))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_roundtrip() {
        let sel = Selector::parse("biregular/100x100d20#1:theorems").unwrap();
        assert_eq!(sel.scenario, "biregular/100x100d20#1");
        assert_eq!(sel.group, Some(Group::Theorems));
        let bare = Selector::parse("biregular/100x100d20#1").unwrap();
        assert_eq!(bare.group, None);
        assert!(Selector::parse("").is_none());
        assert!(Selector::parse("x:nonsense-group").is_none());
    }

    #[test]
    fn replay_finds_registered_scenarios() {
        let sel = Selector::parse("torus-incidence/6x6#1:solver").unwrap();
        let cells = replay(Tier::Quick, &sel).expect("scenario registered");
        assert_eq!(cells.len(), 1);
        assert!(cells[0].checks > 0);
        assert!(replay(Tier::Quick, &Selector::parse("no/such#9").unwrap()).is_none());
    }

    #[test]
    fn repro_line_mentions_env_and_selector() {
        let f = Finding {
            scenario: "fam/x#1".into(),
            family: "fam",
            seed: 1,
            group: Group::Solver,
            check: "solver.output-valid",
            detail: "boom".into(),
        };
        let line = repro_line(&f);
        assert!(line.contains("CONFORMANCE_REPLAY='fam/x#1:solver'"));
        assert!(line.contains("solver.output-valid"));
    }
}
