//! Failure replay entrypoint: `CONFORMANCE_REPLAY='scenario:group'` re-runs
//! exactly the cell a ledger line names (the scenario is rebuilt from its
//! registry seed). Without the variable, a smoke selector keeps the replay
//! path itself under test.

use conformance::{repro_line, Selector, Tier, REPLAY_ENV};

#[test]
fn replay_selected_cell() {
    let raw = std::env::var(REPLAY_ENV).unwrap_or_default();
    let (selector, from_env) = if raw.trim().is_empty() {
        // smoke default: a cheap scenario across all groups
        (
            Selector::parse("torus-incidence/6x6#1").expect("smoke selector parses"),
            false,
        )
    } else {
        // a set-but-unparseable selector is a typo, not a smoke request —
        // fail loudly instead of silently replaying the wrong cell
        let sel = Selector::parse(&raw).unwrap_or_else(|| {
            panic!(
                "{REPLAY_ENV}='{raw}' does not parse; expected 'scenario[:group]' \
                 with group one of {:?}",
                conformance::Group::ALL.map(|g| g.name())
            )
        });
        (sel, true)
    };
    // ledger lines name quick-tier scenarios; full-tier-only scenarios
    // (extra seeds) are found in the full corpus
    let cells = conformance::replay::replay(Tier::Quick, &selector)
        .or_else(|| conformance::replay::replay(Tier::Full, &selector))
        .unwrap_or_else(|| {
            panic!(
                "{REPLAY_ENV}='{}' does not name a registered scenario",
                selector.scenario
            )
        });
    let checks: usize = cells.iter().map(|c| c.checks).sum();
    let failures: Vec<String> = cells
        .iter()
        .flat_map(|c| &c.failures)
        .map(repro_line)
        .collect();
    println!(
        "replayed {} ({} cells, {checks} checks, {} failures){}",
        selector.scenario,
        cells.len(),
        failures.len(),
        if from_env { "" } else { " [smoke default]" }
    );
    for line in &failures {
        println!("{line}");
    }
    assert!(
        failures.is_empty(),
        "replayed cell still failing:\n{}",
        failures.join("\n")
    );
}
