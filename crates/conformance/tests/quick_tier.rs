//! The quick conformance tier as a test: every (scenario, group) cell of
//! the quick corpus must be green, with coverage floors on families,
//! groups, and regimes. On failure the assertion message contains the
//! one-line repros.

use conformance::{repro_line, run_corpus, Group, Regime, Tier, FAMILY_COUNT};
use std::collections::BTreeSet;

#[test]
fn quick_tier_is_green() {
    let report = run_corpus(Tier::Quick);
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "{} conformance failures:\n{}",
        failures.len(),
        failures
            .iter()
            .map(|f| repro_line(f))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // coverage floors from the acceptance criteria: ≥ 12 scenario
    // families × ≥ 6 entrypoint groups, every regime exercised
    const {
        assert!(FAMILY_COUNT >= 12);
        assert!(Group::ALL.len() >= 6);
    }
    let families: BTreeSet<&str> = report.scenarios.iter().map(|s| s.family).collect();
    assert!(families.len() >= 12, "families: {families:?}");
    for group in Group::ALL {
        let driven = report
            .scenarios
            .iter()
            .flat_map(|s| &s.cells)
            .filter(|c| c.group == group)
            .map(|c| c.checks)
            .sum::<usize>();
        assert!(driven > 0, "group {} never ran a check", group.name());
    }
    let exercised: BTreeSet<&str> = report
        .scenarios
        .iter()
        .flat_map(|s| &s.regimes)
        .map(|r| r.name())
        .collect();
    for regime in Regime::ALL {
        assert!(
            exercised.contains(regime.name()),
            "regime {} not exercised by the quick corpus",
            regime.name()
        );
    }
}
