//! Round-trip coverage of the request/solution boundary: every
//! [`Problem`] variant goes through `Request` → `Session::solve` →
//! `Solution` on a small conformance-style scenario, and the result is
//! checked two ways:
//!
//! 1. the returned [`Certificate`] holds and re-verifies against the
//!    instance (`Solution::reverify`);
//! 2. the output is **bit-identical** to the legacy entrypoint the API
//!    shims, under the same seed.
//!
//! The scenarios mirror the conformance corpus families at quick-tier
//! sizes (biregular density regimes, a skewed Theorem 2.7 instance, a
//! regular Section 4 host, a small multigraph).

use degree_split::{DegreeSplitter, Engine, Flavor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use splitgraph::{checks, generators, BipartiteGraph, Graph, MultiGraph};
use splitting_api::{ApiError, Determinism, Problem, Request, Session, Solution};
use splitting_core as core;
use splitting_reductions as red;

const SEED: u64 = 0xAB1DE;

/// Dense biregular instance: the Theorem 2.5 / zero-round regime.
fn dense_bipartite() -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(2);
    generators::random_biregular(100, 100, 20, &mut rng).unwrap()
}

/// Skewed instance: the Theorem 2.7 regime (δ = 12 ≥ 6r).
fn skewed_bipartite() -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(1);
    generators::random_biregular(12, 72, 12, &mut rng).unwrap()
}

/// Regular host graph for the Section 4 reductions.
fn host_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(3);
    generators::random_regular(128, 16, &mut rng).unwrap()
}

/// Dense regular host where the uniform Chernoff certificate holds.
fn dense_host() -> Graph {
    let mut rng = StdRng::seed_from_u64(4);
    generators::random_regular(128, 48, &mut rng).unwrap()
}

/// Small random multigraph (degree-splitting substrate).
fn multigraph() -> MultiGraph {
    let mut rng = StdRng::seed_from_u64(5);
    let mut g = MultiGraph::new(25);
    for _ in 0..80 {
        let a = rng.random_range(0..25usize);
        let mut b = rng.random_range(0..25usize);
        while b == a {
            b = rng.random_range(0..25usize);
        }
        g.add_edge(a, b);
    }
    g
}

fn solve_ok(request: &Request) -> Solution {
    let solution = Session::with_threads(1)
        .solve(request)
        .expect("request is solvable");
    assert!(solution.certificate.holds(), "{}", solution.certificate);
    assert!(
        solution.reverify(request.instance()),
        "certificate does not re-verify"
    );
    // the JSON line is stable and single-line
    let line = solution.to_json_line();
    assert!(line.starts_with("{\"event\":\"solution\""), "{line}");
    assert!(!line.contains('\n'));
    solution
}

#[test]
fn weak_splitting_matches_legacy_solver_randomized() {
    let b = dense_bipartite();
    let solution = solve_ok(&Request::new(Problem::weak_splitting(), b.clone()).seed(SEED));
    let legacy = core::WeakSplittingSolver {
        allow_randomized: true,
        seed: SEED,
        thm12_constant: 3.0,
    };
    let (out, pipeline) = legacy.solve(&b).unwrap();
    assert_eq!(solution.provenance.pipeline, Some(pipeline));
    assert_eq!(solution.output.two_coloring().unwrap(), &out.colors[..]);
}

#[test]
fn weak_splitting_matches_legacy_solver_deterministic() {
    let b = dense_bipartite();
    let solution = solve_ok(&Request::new(Problem::weak_splitting(), b.clone()).deterministic());
    let legacy = core::WeakSplittingSolver {
        allow_randomized: false,
        ..Default::default()
    };
    let (out, pipeline) = legacy.solve(&b).unwrap();
    assert_eq!(pipeline, core::Pipeline::Theorem25);
    assert_eq!(solution.provenance.pipeline, Some(pipeline));
    assert_eq!(solution.output.two_coloring().unwrap(), &out.colors[..]);
}

#[test]
fn weak_splitting_skewed_dispatches_theorem27() {
    let b = skewed_bipartite();
    let solution = solve_ok(&Request::new(Problem::weak_splitting(), b.clone()).seed(SEED));
    assert_eq!(
        solution.provenance.pipeline,
        Some(core::Pipeline::Theorem27)
    );
    let legacy = core::theorem27(&b, core::Variant::Randomized(SEED)).unwrap();
    assert_eq!(solution.output.two_coloring().unwrap(), &legacy.colors[..]);
}

#[test]
fn weak_splitting_pipeline_override_forces_theorem25() {
    // the dense instance would dispatch to zero-round under the
    // randomized policy; the override forces the deterministic headline
    let b = dense_bipartite();
    let solution = solve_ok(
        &Request::new(Problem::weak_splitting(), b.clone())
            .seed(SEED)
            .force_pipeline(core::Pipeline::Theorem25),
    );
    assert_eq!(
        solution.provenance.pipeline,
        Some(core::Pipeline::Theorem25)
    );
    assert!(solution.provenance.why.contains("override"));
    let (legacy, _) = core::theorem25(&b, Flavor::Deterministic).unwrap();
    assert_eq!(solution.output.two_coloring().unwrap(), &legacy.colors[..]);
}

#[test]
fn weak_splitting_uncovered_regime_is_typed() {
    let mut rng = StdRng::seed_from_u64(4);
    let b = generators::random_biregular(128, 256, 4, &mut rng).unwrap();
    let err = Session::with_threads(1)
        .solve(&Request::new(Problem::weak_splitting(), b))
        .unwrap_err();
    assert_eq!(err.kind(), "unsupported-regime");
}

#[test]
fn weak_multicolor_matches_legacy_both_policies() {
    // Definition 1.3 needs huge degrees relative to 2·log n — the
    // conformance corpus's multicolor-def13 family at quick-tier size
    let mut rng = StdRng::seed_from_u64(6);
    let b = generators::random_left_regular(18, 512, 256, &mut rng).unwrap();

    let det = solve_ok(&Request::new(Problem::WeakMulticolor, b.clone()).deterministic());
    let legacy = core::weak_multicolor_deterministic(&b).unwrap();
    let (colors, palette) = det.output.multi_coloring().unwrap();
    assert_eq!(colors, &legacy.colors[..]);
    assert_eq!(palette, legacy.palette);

    let rand = solve_ok(&Request::new(Problem::WeakMulticolor, b.clone()).seed(SEED));
    let legacy = core::weak_multicolor_random(&b, SEED);
    assert_eq!(rand.output.multi_coloring().unwrap().0, &legacy.colors[..]);
}

#[test]
fn multicolor_splitting_matches_legacy_both_policies() {
    let b = dense_bipartite();
    let problem = Problem::MulticolorSplitting {
        colors: 6,
        lambda: 0.6,
    };

    let det = solve_ok(&Request::new(problem.clone(), b.clone()).deterministic());
    let legacy = core::multicolor_splitting_deterministic(&b, 6, 0.6).unwrap();
    let (colors, palette) = det.output.multi_coloring().unwrap();
    assert_eq!(colors, &legacy.colors[..]);
    assert_eq!(palette, legacy.palette);

    let rand = solve_ok(&Request::new(problem, b.clone()).seed(SEED));
    let legacy = core::multicolor_splitting_random(&b, 6, 0.6, SEED);
    assert_eq!(rand.output.multi_coloring().unwrap().0, &legacy.colors[..]);
}

#[test]
fn uniform_splitting_matches_legacy_both_policies() {
    let g = dense_host();
    let eps = red::feasible_eps(g.node_count(), 48);
    let problem = Problem::UniformSplitting {
        eps: None,
        min_degree: None,
    };

    let det = solve_ok(&Request::new(problem.clone(), g.clone()).deterministic());
    let legacy = red::uniform_splitting_deterministic(&g, eps, 48).unwrap();
    assert_eq!(det.output.two_coloring().unwrap(), &legacy.colors[..]);

    // the randomized route replays the legacy Las Vegas loop: first
    // certifying seed in seed, seed+1, ... wins
    let rand = solve_ok(&Request::new(problem, g.clone()).seed(SEED));
    let legacy_las_vegas = (0..16)
        .map(|i| red::uniform_splitting_random(&g, SEED.wrapping_add(i)))
        .find(|sides| checks::is_uniform_splitting(&g, sides, eps, 48))
        .expect("some seed certifies");
    assert_eq!(rand.output.two_coloring().unwrap(), &legacy_las_vegas[..]);
}

#[test]
fn degree_splitting_matches_legacy_both_engines() {
    let g = multigraph();
    for (engine, determinism) in [
        (Engine::EulerianOracle, Determinism::Deterministic),
        (Engine::EulerianOracle, Determinism::Randomized),
        (Engine::Walk, Determinism::Deterministic),
    ] {
        let problem = Problem::DegreeSplitting { eps: 0.25, engine };
        let solution = solve_ok(
            &Request::new(problem, g.clone())
                .determinism_policy(determinism)
                .seed(SEED),
        );
        let flavor = match determinism {
            Determinism::Deterministic => Flavor::Deterministic,
            Determinism::Randomized => Flavor::Randomized,
        };
        let legacy = DegreeSplitter::new(0.25, engine, flavor).split(&g, g.node_count());
        let bits = |o: &splitgraph::Orientation| -> Vec<bool> {
            (0..o.edge_count())
                .map(|e| o.is_towards_second(e))
                .collect()
        };
        assert_eq!(
            bits(solution.output.edge_orientation().unwrap()),
            bits(&legacy.orientation),
            "{engine:?}/{determinism:?}"
        );
        assert_eq!(solution.ledger.total(), legacy.ledger.total());
    }
}

#[test]
fn sinkless_orientation_matches_legacy_reduction() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::random_regular(60, 24, &mut rng).unwrap();
    let solution = solve_ok(&Request::new(Problem::SinklessOrientation, g.clone()).seed(SEED));
    let ids: Vec<u64> = (0..60).collect();
    let legacy = core::sinkless_via_weak_splitting(&g, &ids, SEED).unwrap();
    assert_eq!(
        solution.output.host_orientation().unwrap().forward,
        legacy.orientation.forward
    );
}

#[test]
fn delta_coloring_matches_legacy_reduction() {
    let g = host_graph();
    let problem = Problem::DeltaColoring {
        base_degree: Some(28),
        max_eps: Some(0.35),
    };
    let solution = solve_ok(&Request::new(problem, g.clone()).deterministic());
    let (legacy, report, _) = red::delta_coloring_via_splitting(&g, 28, Some(0.35)).unwrap();
    let (colors, palette) = solution.output.multi_coloring().unwrap();
    assert_eq!(colors, &legacy[..]);
    assert_eq!(palette, report.palette.max(1));
}

#[test]
fn edge_coloring_matches_legacy_both_engines() {
    let g = host_graph();
    for engine in [red::EdgeSplitEngine::Eulerian, red::EdgeSplitEngine::Walk] {
        let problem = Problem::EdgeColoring {
            base_degree: Some(8),
            engine,
        };
        let solution = solve_ok(&Request::new(problem, g.clone()));
        let (legacy, _, _) = red::edge_coloring_via_splitting(&g, 8, engine).unwrap();
        assert_eq!(
            solution.output.multi_coloring().unwrap().0,
            &legacy[..],
            "{engine:?}"
        );
    }
}

#[test]
fn mis_matches_legacy_reduction() {
    let g = host_graph();
    let problem = Problem::Mis { base_degree: None };
    let solution = solve_ok(&Request::new(problem.clone(), g.clone()).seed(SEED));
    let base = 4 * splitgraph::math::ceil_log2(g.node_count()) as usize;
    let (legacy, _, _) = red::mis_via_splitting(&g, base, SEED);
    assert_eq!(solution.output.independent_set().unwrap(), &legacy[..]);

    // the deterministic policy is honestly rejected (Lemma 4.2's oracle
    // A is instantiated randomized — the open problem)
    let err = Session::with_threads(1)
        .solve(&Request::new(problem, g).deterministic())
        .unwrap_err();
    assert_eq!(err.kind(), "invalid-request");
}

#[test]
fn batch_solving_is_bit_identical_to_sequential_and_in_order() {
    let b = dense_bipartite();
    let g = host_graph();
    let mg = multigraph();
    let requests: Vec<Request> = vec![
        Request::new(Problem::weak_splitting(), b.clone()).seed(1),
        Request::new(Problem::weak_splitting(), b.clone())
            .seed(2)
            .deterministic(),
        Request::new(
            Problem::MulticolorSplitting {
                colors: 6,
                lambda: 0.6,
            },
            b.clone(),
        )
        .deterministic(),
        Request::new(
            Problem::DegreeSplitting {
                eps: 0.25,
                engine: Engine::EulerianOracle,
            },
            mg,
        ),
        Request::new(Problem::Mis { base_degree: None }, g.clone()).seed(3),
        Request::new(
            Problem::EdgeColoring {
                base_degree: Some(8),
                engine: red::EdgeSplitEngine::Eulerian,
            },
            g,
        ),
    ];
    let sequential = Session::with_threads(1).solve_batch(&requests);
    for threads in [2, 3, 8] {
        let parallel = Session::with_threads(threads).solve_batch(&requests);
        assert_eq!(parallel.len(), sequential.len());
        for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
            match (p, s) {
                (Ok(p), Ok(s)) => assert_eq!(
                    p.output, s.output,
                    "batch[{i}] diverged at {threads} threads"
                ),
                (Err(p), Err(s)) => assert_eq!(p, s),
                _ => panic!("batch[{i}] ok/err disagreement at {threads} threads"),
            }
        }
    }
}

#[test]
fn round_budget_is_enforced() {
    let b = dense_bipartite();
    // deterministic Theorem 2.5 charges thousands of rounds; 1.0 is
    // far below any real ledger
    let err = Session::with_threads(1)
        .solve(
            &Request::new(Problem::weak_splitting(), b)
                .deterministic()
                .max_rounds(1.0),
        )
        .unwrap_err();
    match err {
        ApiError::BudgetExceeded { budget, needed } => {
            assert_eq!(budget, 1.0);
            assert!(needed > 1.0);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn invalid_parameters_are_rejected_before_solving() {
    let b = dense_bipartite();
    let err = Session::with_threads(1)
        .solve(&Request::new(
            Problem::MulticolorSplitting {
                colors: 6,
                lambda: 1.5,
            },
            b.clone(),
        ))
        .unwrap_err();
    assert_eq!(err.kind(), "invalid-request");

    // instance-shape mismatch: weak splitting over a host graph
    let err = Session::with_threads(1)
        .solve(&Request::new(Problem::weak_splitting(), Graph::new(4)))
        .unwrap_err();
    assert_eq!(err.kind(), "invalid-request");

    // estimator honestly declines an uncertifiable accuracy
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::random_regular(128, 16, &mut rng).unwrap();
    let err = Session::with_threads(1)
        .solve(
            &Request::new(
                Problem::UniformSplitting {
                    eps: Some(0.01),
                    min_degree: Some(16),
                },
                g,
            )
            .deterministic(),
        )
        .unwrap_err();
    assert_eq!(err.kind(), "certification-unavailable");
}

#[test]
fn solutions_and_errors_render_stable_json_lines() {
    let b = dense_bipartite();
    let solution = solve_ok(&Request::new(Problem::weak_splitting(), b).seed(SEED));
    let line = solution.to_json_line();
    for field in [
        "\"problem\":\"weak-splitting\"",
        "\"route\":\"zero-round\"",
        "\"certificate\":{\"kind\":\"weak-splitting\",\"holds\":true",
        "\"output\":{\"type\":\"two-coloring\",\"len\":100}",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
    let err = ApiError::BudgetExceeded {
        budget: 1.0,
        needed: 2.0,
    };
    assert_eq!(
        err.to_json_line(),
        "{\"event\":\"error\",\"kind\":\"budget-exceeded\",\
         \"detail\":\"round budget exceeded: need 2, budget 1\"}"
    );
}

#[test]
fn deterministic_policy_cannot_be_bypassed() {
    // forcing a randomized pipeline under the deterministic policy is a
    // typed error, not a silent randomized run
    let b = dense_bipartite();
    let err = Session::with_threads(1)
        .solve(
            &Request::new(Problem::weak_splitting(), b)
                .deterministic()
                .force_pipeline(core::Pipeline::ZeroRound),
        )
        .unwrap_err();
    assert_eq!(err.kind(), "invalid-request");
    assert!(err.to_string().contains("zero-round"), "{err}");

    // sinkless below the Theorem 2.7 window (δ_G < 23): the only in-tree
    // solver is the randomized rank-2 reference, so the deterministic
    // track is honestly refused …
    let mut rng = StdRng::seed_from_u64(8);
    let sparse = generators::random_regular(60, 6, &mut rng).unwrap();
    let err = Session::with_threads(1)
        .solve(&Request::new(Problem::SinklessOrientation, sparse).deterministic())
        .unwrap_err();
    assert_eq!(err.kind(), "unsupported-regime");

    // … while above the window (δ_G ≥ 23 ⇒ δ_B ≥ 6·r_B) Theorem 2.7
    // solves it deterministically
    let mut rng = StdRng::seed_from_u64(7);
    let dense = generators::random_regular(60, 24, &mut rng).unwrap();
    let solution = solve_ok(&Request::new(Problem::SinklessOrientation, dense).deterministic());
    assert!(solution.certificate.holds());
}

#[test]
fn certificate_shape_mismatch_errors_instead_of_panicking() {
    use splitting_api::{Certificate, CertificateKind, Instance, Output};
    let inst = Instance::from(dense_bipartite());
    // wrong length: 3 colors for 100 variables
    let short = Output::TwoColoring(vec![splitgraph::Color::Red; 3]);
    let err = Certificate::verify(
        CertificateKind::WeakSplitting { min_degree: 0 },
        &inst,
        &short,
    )
    .unwrap_err();
    assert_eq!(err.kind(), "invalid-request");

    // reverify against a mismatched instance degrades to false, not a panic
    let solution = solve_ok(&Request::new(Problem::weak_splitting(), dense_bipartite()));
    let other = Instance::from(skewed_bipartite());
    assert!(!solution.reverify(&other));

    // out-of-palette colors are a shape error for the (C, λ) predicate
    let bad = Output::MultiColoring {
        colors: vec![9; 100],
        palette: 6,
    };
    let err = Certificate::verify(
        CertificateKind::MulticolorSplitting {
            lambda: 0.6,
            min_degree: 0,
        },
        &inst,
        &bad,
    )
    .unwrap_err();
    assert_eq!(err.kind(), "invalid-request");
}
