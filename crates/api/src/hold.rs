//! Held instances under churn: incremental re-splitting of a live
//! instance as edge mutations stream in.
//!
//! [`Session::hold`] solves a request once and keeps the instance and its
//! coloring alive; [`HeldSolution::apply`] then patches the instance with
//! an [`EdgeDelta`] and **repairs** the previous solution instead of
//! re-solving from scratch: the incremental conditional-expectation engine
//! ([`derand::FixerState`]) is seeded with the previous coloring for every
//! clean variable and only the dirty variables — the delta's endpoints —
//! are re-fixed, so only the dirty region's halo of constraints is ever
//! re-examined.
//!
//! Repair is an optimization, never a correctness shortcut:
//!
//! * every repaired [`Solution`] carries a **full** certificate, verified
//!   over the entire patched instance, not just the dirty region;
//! * the regime dispatch ([`splitting_core::decide_pipeline`]) is
//!   re-checked per update — if churn moved the instance into a different
//!   pipeline's regime (or out of every regime), the repair path is
//!   abandoned for a full re-solve (or a typed decline);
//! * when the dirty fraction exceeds the refix threshold, or seeding the
//!   fixer from the stale coloring cannot certify (`Φ ≥ 1`), the update
//!   falls back to a from-scratch solve of the patched instance.

use crate::error::ApiError;
use crate::problem::{Instance, Output, Problem};
use crate::request::{Determinism, Request};
use crate::session::Session;
use crate::solution::{Certificate, CertificateKind, Provenance, Solution};
use derand::{ColoringEstimator, FixerState};
use local_runtime::RoundLedger;
use splitgraph::checks;
use splitgraph::delta::{DirtyRegion, EdgeDelta};
use splitgraph::{BipartiteGraph, Color, MultiColor};
use splitting_core::{decide_pipeline, Pipeline, RegimeParams};
use std::sync::Arc;

/// Default ceiling on the dirty fraction (`|halo| / |U|`) the repair path
/// accepts; above it a from-scratch solve of the patched instance is
/// assumed cheaper than dragging a mostly-invalidated coloring along.
pub const DEFAULT_REFIX_THRESHOLD: f64 = 0.25;

/// Churn bookkeeping of one held solution — the same counters the `splitd`
/// heartbeat exposes service-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChurnStats {
    /// Edge-delta batches successfully applied to the held instance.
    pub mutations_applied: u64,
    /// Updates served by the incremental repair path.
    pub repairs: u64,
    /// Updates that fell back to a from-scratch solve (threshold, regime
    /// change, unrepairable problem, stale coloring, or failed repair).
    pub full_resolves: u64,
    /// Sum of the refix fractions over all repairs (for the mean).
    refix_sum: f64,
}

impl ChurnStats {
    /// Mean fraction of constraints re-examined per repair (0 when no
    /// repair has run).
    pub fn mean_refix_fraction(&self) -> f64 {
        if self.repairs == 0 {
            0.0
        } else {
            self.refix_sum / self.repairs as f64
        }
    }
}

/// A held instance with its live solution, ready to absorb edge deltas.
///
/// Produced by [`Session::hold`]; each [`apply`](HeldSolution::apply)
/// patches the instance in place and returns a freshly certified
/// [`Solution`] for the patched instance.
#[derive(Debug, Clone)]
pub struct HeldSolution {
    session: Session,
    request: Request,
    graph: BipartiteGraph,
    solution: Solution,
    /// The last certified coloring, if the held problem is repairable and
    /// the previous update succeeded (`None` forces a full re-solve).
    colors: Option<Vec<Color>>,
    pipeline: Option<Pipeline>,
    threshold: f64,
    stats: ChurnStats,
}

impl Session {
    /// Solves `request` and holds its instance for incremental updates.
    ///
    /// Only bipartite instances can be held (edge deltas are defined on
    /// them); the weak-splitting problem additionally gets the repair
    /// path — every other problem re-solves from scratch on each update,
    /// still through the same [`HeldSolution::apply`] surface.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] for non-bipartite instances, plus
    /// anything [`Session::solve`] can return for the initial solve.
    pub fn hold(&self, request: &Request) -> Result<HeldSolution, ApiError> {
        let graph = request.instance().bipartite()?.clone();
        let solution = self.solve(request)?;
        Ok(HeldSolution::assemble(
            self.clone(),
            request.clone(),
            graph,
            solution,
        ))
    }
}

impl HeldSolution {
    fn assemble(
        session: Session,
        request: Request,
        graph: BipartiteGraph,
        solution: Solution,
    ) -> HeldSolution {
        let colors = if matches!(request.problem(), Problem::WeakSplitting { .. }) {
            solution.output.two_coloring().map(<[Color]>::to_vec)
        } else {
            None
        };
        let pipeline = solution.provenance.pipeline;
        HeldSolution {
            session,
            request,
            graph,
            solution,
            colors,
            pipeline,
            threshold: DEFAULT_REFIX_THRESHOLD,
            stats: ChurnStats::default(),
        }
    }

    /// Adopts an already-solved request as a held solution without
    /// re-solving — the entry the `splitd` server uses after a worker has
    /// produced `solution` for `request` the normal way.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the request's instance is not
    /// bipartite or the output length does not match its variable side.
    pub fn adopt(
        session: &Session,
        request: &Request,
        solution: Solution,
    ) -> Result<HeldSolution, ApiError> {
        let graph = request.instance().bipartite()?.clone();
        if let Some(colors) = solution.output.two_coloring() {
            if colors.len() != graph.right_count() {
                return Err(ApiError::InvalidRequest {
                    field: "solution",
                    reason: format!(
                        "coloring covers {} variables but the instance has {}",
                        colors.len(),
                        graph.right_count()
                    ),
                });
            }
        }
        Ok(HeldSolution::assemble(
            session.clone(),
            request.clone(),
            graph,
            solution,
        ))
    }

    /// The held instance in its current (patched) state.
    pub fn instance(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The most recent certified solution.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Churn counters accumulated by this held solution.
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// Overrides the dirty-fraction ceiling of the repair path
    /// (clamped to `[0, 1]`; see [`DEFAULT_REFIX_THRESHOLD`]).
    pub fn set_refix_threshold(&mut self, threshold: f64) {
        self.threshold = threshold.clamp(0.0, 1.0);
    }

    /// Validates `(inserts, deletes)` against the current instance state —
    /// the convenience wrapper callers use to build deltas that are in
    /// sync with a held instance that has already absorbed updates.
    ///
    /// # Errors
    ///
    /// Exactly [`EdgeDelta::new`]'s typed errors, mapped to
    /// [`ApiError::InvalidRequest`].
    pub fn delta(
        &self,
        inserts: &[(usize, usize)],
        deletes: &[(usize, usize)],
    ) -> Result<EdgeDelta, ApiError> {
        EdgeDelta::new(&self.graph, inserts, deletes).map_err(|e| ApiError::InvalidRequest {
            field: "delta",
            reason: e.to_string(),
        })
    }

    /// Applies an edge delta to the held instance and returns a certified
    /// solution for the patched instance — repaired incrementally when
    /// possible, re-solved from scratch otherwise.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the delta does not validate
    /// against the current instance state (nothing is patched), or any
    /// solve error when the patched instance is re-solved and declined —
    /// the patch **has** been applied in that case, and the next update
    /// starts from a full re-solve.
    pub fn apply(&mut self, delta: &EdgeDelta) -> Result<Solution, ApiError> {
        let region = delta
            .apply(&mut self.graph)
            .map_err(|e| ApiError::InvalidRequest {
                field: "delta",
                reason: e.to_string(),
            })?;
        self.stats.mutations_applied += 1;
        match self.try_repair(delta, &region) {
            Some(solution) => {
                self.stats.repairs += 1;
                self.stats.refix_sum += region.refix_fraction(&self.graph);
                self.colors = solution.output.two_coloring().map(<[Color]>::to_vec);
                self.solution = solution.clone();
                Ok(solution)
            }
            None => {
                self.stats.full_resolves += 1;
                match self.full_resolve() {
                    Ok(solution) => {
                        self.colors =
                            if matches!(self.request.problem(), Problem::WeakSplitting { .. }) {
                                solution.output.two_coloring().map(<[Color]>::to_vec)
                            } else {
                                None
                            };
                        self.pipeline = solution.provenance.pipeline;
                        self.solution = solution.clone();
                        Ok(solution)
                    }
                    Err(e) => {
                        // the instance moved on but no solution covers it:
                        // drop the stale coloring so the next update
                        // re-solves instead of repairing from fiction
                        self.colors = None;
                        Err(e)
                    }
                }
            }
        }
    }

    /// The incremental path: `None` means "fall back to a full solve".
    fn try_repair(&self, delta: &EdgeDelta, region: &DirtyRegion) -> Option<Solution> {
        let Problem::WeakSplitting { thm12_constant } = *self.request.problem() else {
            return None;
        };
        let prev = self.colors.as_deref()?;
        let pipeline = self.pipeline?;
        // regime re-check: churn may have moved the instance into another
        // pipeline's territory (or out of every regime) — the repair path
        // must never mask a dispatch change
        let params = RegimeParams::of(&self.graph);
        let allow_randomized = self.request.determinism() == Determinism::Randomized;
        let expected = match self.request.pipeline_override() {
            Some(p) => p,
            None => decide_pipeline(allow_randomized, thm12_constant, params)?,
        };
        if expected != pipeline {
            return None;
        }
        let fraction = region.refix_fraction(&self.graph);
        if fraction > self.threshold {
            return None;
        }
        // seed the incremental fixer with the previous coloring on every
        // clean variable, then greedily re-fix the dirty ones; Φ < 1 at
        // the end certifies zero violated constraints
        let nv = self.graph.right_count();
        let mut dirty = vec![false; nv];
        for &v in &region.right {
            dirty[v] = true;
        }
        let mut state = FixerState::new(&self.graph, ColoringEstimator::monochromatic(&self.graph));
        let mut colors: Vec<MultiColor> = prev
            .iter()
            .map(|&c| match c {
                Color::Red => 0,
                Color::Blue => 1,
            })
            .collect();
        for (v, &is_dirty) in dirty.iter().enumerate() {
            if !is_dirty {
                state.fix(v, colors[v]);
            }
        }
        for &v in &region.right {
            let x = state.best_color(v);
            state.fix(v, x);
            colors[v] = x;
        }
        if state.total() >= 1.0 {
            return None;
        }
        let two: Vec<Color> = colors
            .iter()
            .map(|&x| if x == 0 { Color::Red } else { Color::Blue })
            .collect();
        // full certificate over the whole patched instance — repair never
        // narrows verification to the dirty region
        let kind = CertificateKind::WeakSplitting { min_degree: 0 };
        let violations = checks::weak_splitting_violations(&self.graph, &two, 0).len();
        if violations != 0 {
            return None;
        }
        let mut ledger = RoundLedger::new();
        ledger.add_measured("churn repair (seeded incremental fixer)", 0.0);
        Some(Solution {
            output: Output::TwoColoring(two),
            certificate: Certificate::from_parts(kind, violations),
            provenance: Provenance {
                problem: self.request.problem().name(),
                route: "weak-splitting/repair",
                pipeline: Some(pipeline),
                determinism: self.request.determinism(),
                seed: self.request.master_seed(),
                regime: params.to_string(),
                why: format!(
                    "re-fixed {} dirty variable(s), re-verified {} of {} constraints \
                     ({:.2}% refix) after {} edit(s)",
                    region.right.len(),
                    region.halo.len(),
                    self.graph.left_count(),
                    100.0 * fraction,
                    delta.len()
                ),
            },
            ledger,
        })
    }

    /// From-scratch solve of the current (patched) instance with the held
    /// request's policy.
    fn full_resolve(&self) -> Result<Solution, ApiError> {
        let mut request = Request::from_shared(
            self.request.problem().clone(),
            Arc::new(Instance::Bipartite(self.graph.clone())),
        )
        .determinism_policy(self.request.determinism())
        .seed(self.request.master_seed());
        if let Some(p) = self.request.pipeline_override() {
            request = request.force_pipeline(p);
        }
        let budget = self.request.budget();
        if let Some(rounds) = budget.max_rounds {
            request = request.max_rounds(rounds);
        }
        if let Some(attempts) = budget.attempts {
            request = request.attempts(attempts);
        }
        if let Some(ms) = budget.deadline_ms {
            request = request.deadline_ms(ms);
        }
        self.session.solve(&request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::delta::{random_delta, ChurnStyle};
    use splitgraph::generators;

    fn held(seed: u64) -> HeldSolution {
        let mut rng = StdRng::seed_from_u64(seed);
        // δ = r = 32 over n = 4000: the Theorem 2.5 density regime with
        // margin (2·log₂ n ≈ 23.9), so deletes cannot knock the instance
        // out of the regime; large enough that a handful of edits stays
        // well under the refix threshold (each dirty variable's halo
        // covers r constraints)
        let b = generators::random_biregular(2000, 2000, 32, &mut rng).unwrap();
        let request = Request::new(Problem::weak_splitting(), b)
            .deterministic()
            .seed(seed);
        Session::new().hold(&request).unwrap()
    }

    #[test]
    fn small_mutation_takes_the_repair_route() {
        let mut held = held(11);
        let mut rng = StdRng::seed_from_u64(12);
        let delta = random_delta(held.instance(), ChurnStyle::Rewire, 8, &mut rng);
        let solution = held.apply(&delta).unwrap();
        assert_eq!(solution.provenance.route, "weak-splitting/repair");
        assert!(solution.certificate.holds());
        // the certificate re-verifies against the *patched* instance
        let patched = Instance::Bipartite(held.instance().clone());
        assert!(solution.reverify(&patched));
        assert_eq!(held.stats().mutations_applied, 1);
        assert_eq!(held.stats().repairs, 1);
        assert_eq!(held.stats().full_resolves, 0);
        let mean = held.stats().mean_refix_fraction();
        assert!(mean > 0.0 && mean <= DEFAULT_REFIX_THRESHOLD);
    }

    #[test]
    fn zero_threshold_forces_full_resolve() {
        let mut held = held(21);
        held.set_refix_threshold(0.0);
        let mut rng = StdRng::seed_from_u64(22);
        let delta = random_delta(held.instance(), ChurnStyle::Grow, 4, &mut rng);
        let solution = held.apply(&delta).unwrap();
        assert_ne!(solution.provenance.route, "weak-splitting/repair");
        assert!(solution.certificate.holds());
        assert_eq!(held.stats().repairs, 0);
        assert_eq!(held.stats().full_resolves, 1);
        assert_eq!(held.stats().mean_refix_fraction(), 0.0);
    }

    #[test]
    fn repair_and_scratch_agree_on_accept() {
        let mut held = held(31);
        let mut rng = StdRng::seed_from_u64(32);
        for step in 0..4u64 {
            let style = ChurnStyle::ALL[(step % 3) as usize];
            let delta = random_delta(held.instance(), style, 6, &mut rng);
            let repaired = held.apply(&delta).unwrap();
            assert!(repaired.certificate.holds());
            // a from-scratch solve of the same patched instance accepts too
            let scratch = Request::new(Problem::weak_splitting(), held.instance().clone())
                .deterministic()
                .seed(31);
            let scratch = Session::new().solve(&scratch).unwrap();
            assert!(scratch.certificate.holds());
        }
        assert_eq!(held.stats().mutations_applied, 4);
    }

    #[test]
    fn regime_exit_declines_on_both_paths() {
        // δ = 6, r = 1 → Theorem 2.7 (δ ≥ 6r); deleting one constraint's
        // edges drops δ to 0, outside every regime — repair must not paper
        // over the dispatch change
        let mut edges = Vec::new();
        for u in 0..4usize {
            for j in 0..6usize {
                edges.push((u, 6 * u + j));
            }
        }
        let b = splitgraph::BipartiteGraph::from_edges(4, 24, &edges).unwrap();
        let request = Request::new(Problem::weak_splitting(), b)
            .deterministic()
            .seed(5);
        let mut held = Session::new().hold(&request).unwrap();
        let deletes: Vec<(usize, usize)> = (0..6).map(|j| (0, j)).collect();
        let delta = held.delta(&[], &deletes).unwrap();
        let err = held.apply(&delta).unwrap_err();
        assert_eq!(err.kind(), "unsupported-regime");
        assert_eq!(held.stats().full_resolves, 1);
        // the patch stuck: re-inserting the edges re-enters the regime
        // and the next update full-resolves from the (dropped) coloring
        let inserts: Vec<(usize, usize)> = (0..6).map(|j| (0, j)).collect();
        let delta = held.delta(&inserts, &[]).unwrap();
        let solution = held.apply(&delta).unwrap();
        assert!(solution.certificate.holds());
        assert_eq!(held.stats().full_resolves, 2);
        assert_eq!(held.stats().repairs, 0);
    }

    #[test]
    fn stale_delta_is_rejected_without_patching() {
        let mut held = held(41);
        let hash_before = held.instance().edge_count();
        // a delta built against a node that does not exist
        let err = held.delta(&[(0, 99_999)], &[]).unwrap_err();
        assert_eq!(err.kind(), "invalid-request");
        // inserting an existing edge through a hand-built shape mismatch
        let other = splitgraph::BipartiteGraph::from_edges(1, 2, &[(0, 0)]).unwrap();
        let foreign = EdgeDelta::new(&other, &[(0, 1)], &[]).unwrap();
        let err = held.apply(&foreign).unwrap_err();
        assert_eq!(err.kind(), "invalid-request");
        assert_eq!(held.instance().edge_count(), hash_before);
        assert_eq!(held.stats().mutations_applied, 0);
    }

    #[test]
    fn adopt_matches_hold() {
        let mut rng = StdRng::seed_from_u64(51);
        let b = generators::random_biregular(1200, 1200, 28, &mut rng).unwrap();
        let session = Session::new();
        let request = Request::new(Problem::weak_splitting(), b)
            .deterministic()
            .seed(51);
        let solution = session.solve(&request).unwrap();
        let mut adopted = HeldSolution::adopt(&session, &request, solution).unwrap();
        let mut rng = StdRng::seed_from_u64(52);
        let delta = random_delta(adopted.instance(), ChurnStyle::Rewire, 6, &mut rng);
        let repaired = adopted.apply(&delta).unwrap();
        assert_eq!(repaired.provenance.route, "weak-splitting/repair");
        assert!(repaired.certificate.holds());
    }
}
