//! The structured error taxonomy of the request/solution boundary.
//!
//! Every failure that can cross the API surface is one of the
//! [`ApiError`] variants below — a closed, typed taxonomy replacing the
//! mixed stringly/[`SplitError`]-only failures of the per-theorem
//! entrypoints. Pipeline errors ([`SplitError`]) convert losslessly via
//! `From`, so shimmed legacy callers keep their diagnostics.

use crate::render::JsonObject;
use splitting_core::SplitError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong at the API boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The request itself is malformed: a parameter outside its domain or
    /// an instance kind that does not match the problem (e.g. weak
    /// splitting over a multigraph).
    InvalidRequest {
        /// Which request field is at fault.
        field: &'static str,
        /// What is wrong with it.
        reason: String,
    },
    /// The instance lies outside every regime the paper covers for the
    /// requested problem/determinism combination (maps the pipelines'
    /// `SplitError::Precondition`).
    UnsupportedRegime {
        /// The requirement, in the paper's notation.
        requirement: String,
        /// The measured offending parameters.
        actual: String,
    },
    /// A randomized phase failed its postcondition on every attempted
    /// seed (maps `SplitError::RandomizedFailure`).
    RandomizedFailure {
        /// Which phase failed.
        phase: String,
        /// Seeds attempted before giving up.
        attempts: usize,
    },
    /// The derandomized fixer's union bound does not certify the instance
    /// (`Φ ≥ 1`; maps `SplitError::EstimatorTooLarge`).
    CertificationUnavailable {
        /// The initial pessimistic estimate.
        phi: f64,
    },
    /// A computed solution failed its own certificate check before it
    /// could be returned — the boundary never hands out unverified
    /// output. Seeing this means an algorithm bug or an uncertified
    /// randomized run outside its guaranteed regime.
    CertificateViolation {
        /// Certificate kind that failed, in stable-name form.
        kind: &'static str,
        /// Number of violated local constraints.
        violations: usize,
    },
    /// The solution exists but its round ledger exceeds the request's
    /// `max_rounds` budget.
    BudgetExceeded {
        /// The configured budget.
        budget: f64,
        /// The rounds the chosen pipeline actually needs.
        needed: f64,
    },
    /// The serving side refused admission: its job queue was at capacity
    /// when the request arrived. The request was **not** executed — a
    /// client may retry after backing off.
    Overloaded {
        /// Queue depth observed at admission time.
        queue_depth: usize,
        /// The configured queue capacity.
        capacity: usize,
        /// Server hint: wait at least this long before retrying. Clients
        /// should treat it as the base of an exponential backoff with
        /// jitter (see `examples/backoff_client.rs` in the server crate).
        retry_after_ms: u64,
    },
    /// The request's `deadline_ms` budget elapsed before a solution was
    /// produced. `stage` says how far it got: `"queued"` (expired while
    /// waiting for a worker — never executed) or `"solving"` (a worker
    /// abandoned the solve at a cancellation checkpoint).
    DeadlineExceeded {
        /// Where the deadline was detected.
        stage: &'static str,
        /// The request's configured budget, ms.
        deadline_ms: u64,
    },
}

impl ApiError {
    /// Stable machine-readable discriminant (used in logs and metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::InvalidRequest { .. } => "invalid-request",
            ApiError::UnsupportedRegime { .. } => "unsupported-regime",
            ApiError::RandomizedFailure { .. } => "randomized-failure",
            ApiError::CertificationUnavailable { .. } => "certification-unavailable",
            ApiError::CertificateViolation { .. } => "certificate-violation",
            ApiError::BudgetExceeded { .. } => "budget-exceeded",
            ApiError::Overloaded { .. } => "overloaded",
            ApiError::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }

    /// One-line JSON rendering for service logs (serde-free, stable
    /// field order).
    pub fn to_json_line(&self) -> String {
        let mut obj = JsonObject::new();
        obj.string("event", "error");
        obj.string("kind", self.kind());
        // machine-readable retry hint before the free-form detail, so
        // clients can back off without parsing prose
        if let ApiError::Overloaded { retry_after_ms, .. } = self {
            obj.uint("retry_after_ms", *retry_after_ms);
        }
        obj.string("detail", &self.to_string());
        obj.finish()
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::InvalidRequest { field, reason } => {
                write!(f, "invalid request: {field}: {reason}")
            }
            ApiError::UnsupportedRegime {
                requirement,
                actual,
            } => write!(f, "unsupported regime: need {requirement}, have {actual}"),
            ApiError::RandomizedFailure { phase, attempts } => {
                write!(
                    f,
                    "randomized phase '{phase}' failed after {attempts} attempts"
                )
            }
            ApiError::CertificationUnavailable { phi } => {
                write!(
                    f,
                    "derandomization certificate unavailable: initial Φ = {phi} is not below 1"
                )
            }
            ApiError::CertificateViolation { kind, violations } => {
                write!(
                    f,
                    "solution failed its {kind} certificate with {violations} violations"
                )
            }
            ApiError::BudgetExceeded { budget, needed } => {
                write!(f, "round budget exceeded: need {needed}, budget {budget}")
            }
            ApiError::Overloaded {
                queue_depth,
                capacity,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "overloaded: job queue at {queue_depth}/{capacity}; retry after {retry_after_ms} ms"
                )
            }
            ApiError::DeadlineExceeded { stage, deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded while {stage}")
            }
        }
    }
}

impl Error for ApiError {}

impl From<SplitError> for ApiError {
    fn from(e: SplitError) -> Self {
        match e {
            SplitError::Precondition {
                requirement,
                actual,
            } => ApiError::UnsupportedRegime {
                requirement,
                actual,
            },
            SplitError::RandomizedFailure { phase, attempts } => {
                ApiError::RandomizedFailure { phase, attempts }
            }
            SplitError::EstimatorTooLarge { phi } => ApiError::CertificationUnavailable { phi },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_error_maps_losslessly() {
        let e: ApiError = SplitError::Precondition {
            requirement: "δ ≥ 2 log n".into(),
            actual: "δ = 3".into(),
        }
        .into();
        assert_eq!(e.kind(), "unsupported-regime");
        assert!(e.to_string().contains("δ ≥ 2 log n"));
        let e: ApiError = SplitError::EstimatorTooLarge { phi: 1.25 }.into();
        assert_eq!(e.kind(), "certification-unavailable");
        let e: ApiError = SplitError::RandomizedFailure {
            phase: "shattering".into(),
            attempts: 16,
        }
        .into();
        assert_eq!(e.kind(), "randomized-failure");
    }

    #[test]
    fn json_line_is_escaped_and_stable() {
        let e = ApiError::InvalidRequest {
            field: "lambda",
            reason: "must lie in (0, 1], got \"2.0\"".into(),
        };
        let line = e.to_json_line();
        assert!(line.starts_with("{\"event\":\"error\",\"kind\":\"invalid-request\""));
        assert!(line.contains("\\\"2.0\\\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn overloaded_is_typed_and_renders() {
        let e = ApiError::Overloaded {
            queue_depth: 128,
            capacity: 128,
            retry_after_ms: 25,
        };
        assert_eq!(e.kind(), "overloaded");
        assert!(e.to_string().contains("128/128"));
        assert!(e
            .to_json_line()
            .starts_with("{\"event\":\"error\",\"kind\":\"overloaded\",\"retry_after_ms\":25"));
    }

    #[test]
    fn deadline_exceeded_is_typed_and_names_its_stage() {
        let e = ApiError::DeadlineExceeded {
            stage: "queued",
            deadline_ms: 40,
        };
        assert_eq!(e.kind(), "deadline-exceeded");
        assert!(e.to_string().contains("40 ms"));
        assert!(e.to_string().contains("queued"));
        assert!(e
            .to_json_line()
            .starts_with("{\"event\":\"error\",\"kind\":\"deadline-exceeded\""));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ApiError>();
    }
}
