//! The builder-style request type: one problem, one instance, plus the
//! cross-cutting policy knobs every workload shares.

use crate::problem::{Instance, Problem};
use splitting_core::Pipeline;
use std::fmt;
use std::sync::Arc;

/// Whether randomized pipelines may be used.
///
/// `Deterministic` reproduces the paper's deterministic track; problems
/// whose only implementation is randomized (MIS) reject deterministic
/// requests with a typed error rather than silently using randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Determinism {
    /// Deterministic pipelines only.
    Deterministic,
    /// Randomized pipelines allowed (the default, matching
    /// [`splitting_core::WeakSplittingSolver::default`]).
    #[default]
    Randomized,
}

impl Determinism {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::Randomized => "randomized",
        }
    }
}

impl fmt::Display for Determinism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Resource budgets for one request.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Budget {
    /// Reject solutions whose round ledger (measured + charged) exceeds
    /// this bound. `None` = unbounded.
    pub max_rounds: Option<f64>,
    /// Seed-retry budget for Las Vegas phases. `None` keeps each
    /// pipeline's legacy default (32 for the zero-round weak-splitting
    /// wrapper, 16 for Theorem 1.2 shattering and uniform splitting), so
    /// default-budget requests stay bit-identical to the legacy
    /// entrypoints.
    pub attempts: Option<usize>,
    /// Wall-clock deadline for producing a solution, milliseconds from
    /// the moment solving (or queueing, on the service path) starts.
    /// Enforced cooperatively: the executors and fixers abandon the
    /// solve at their next cancellation checkpoint and the request
    /// fails with [`ApiError::DeadlineExceeded`](crate::ApiError).
    /// `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

/// A fully-specified unit of work: problem + instance + policy.
///
/// Built in builder style and consumed by
/// [`Session::solve`](crate::Session::solve):
///
/// ```
/// use splitting_api::{Problem, Request};
/// use splitgraph::generators;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let b = generators::random_biregular(40, 40, 16, &mut rng)?;
/// let request = Request::new(Problem::weak_splitting(), b)
///     .deterministic()
///     .seed(7)
///     .max_rounds(1e6);
/// assert_eq!(request.problem().name(), "weak-splitting");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// The instance is held behind an [`Arc`], so cloning a request — the
/// common move when fanning the same work out to batch sessions or the
/// `splitd` job queue — shares the graph structurally instead of
/// deep-copying it. Equality still compares instance *contents*.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    problem: Problem,
    instance: Arc<Instance>,
    determinism: Determinism,
    seed: u64,
    pipeline_override: Option<Pipeline>,
    budget: Budget,
}

/// The default master seed, shared with
/// [`splitting_core::WeakSplittingSolver::default`] so unseeded requests
/// reproduce the legacy façade bit for bit.
pub const DEFAULT_SEED: u64 = 0xD15C0;

impl Request {
    /// Creates a request with the default policy: randomized allowed,
    /// seed [`DEFAULT_SEED`], no pipeline override, unbounded budget.
    pub fn new(problem: Problem, instance: impl Into<Instance>) -> Self {
        Request {
            problem,
            instance: Arc::new(instance.into()),
            determinism: Determinism::default(),
            seed: DEFAULT_SEED,
            pipeline_override: None,
            budget: Budget::default(),
        }
    }

    /// Creates a request over an already-shared instance, with the same
    /// default policy as [`Request::new`]. The instance is *not* copied:
    /// the request holds the given [`Arc`], so callers that intern one
    /// instance and fan many requests out over it (the `splitd` instance
    /// -handle path) pay no per-request graph allocation.
    pub fn from_shared(problem: Problem, instance: Arc<Instance>) -> Self {
        Request {
            problem,
            instance,
            determinism: Determinism::default(),
            seed: DEFAULT_SEED,
            pipeline_override: None,
            budget: Budget::default(),
        }
    }

    /// Restricts solving to deterministic pipelines.
    #[must_use]
    pub fn deterministic(mut self) -> Self {
        self.determinism = Determinism::Deterministic;
        self
    }

    /// Allows randomized pipelines (the default).
    #[must_use]
    pub fn randomized(mut self) -> Self {
        self.determinism = Determinism::Randomized;
        self
    }

    /// Sets the determinism policy explicitly.
    #[must_use]
    pub fn determinism_policy(mut self, determinism: Determinism) -> Self {
        self.determinism = determinism;
        self
    }

    /// Sets the master seed for randomized pipelines.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Forces a specific weak-splitting pipeline instead of the regime
    /// dispatcher's choice (the theorem-selection override). The forced
    /// pipeline's own precondition still applies.
    #[must_use]
    pub fn force_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline_override = Some(pipeline);
        self
    }

    /// Bounds the solution's total rounds (measured + charged).
    #[must_use]
    pub fn max_rounds(mut self, rounds: f64) -> Self {
        self.budget.max_rounds = Some(rounds);
        self
    }

    /// Sets the Las Vegas seed-retry budget.
    #[must_use]
    pub fn attempts(mut self, attempts: usize) -> Self {
        self.budget.attempts = Some(attempts);
        self
    }

    /// Sets a wall-clock deadline (milliseconds) for producing a
    /// solution. Over-deadline solves are abandoned at the next
    /// cooperative cancellation checkpoint with a typed
    /// `deadline-exceeded` error.
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.budget.deadline_ms = Some(ms);
        self
    }

    /// The problem to solve.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The instance to solve it on.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The determinism policy.
    pub fn determinism(&self) -> Determinism {
        self.determinism
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }

    /// The forced pipeline, if any.
    pub fn pipeline_override(&self) -> Option<Pipeline> {
        self.pipeline_override
    }

    /// The resource budgets.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Recovers the instance, cloning only when other requests still
    /// share it (for callers that want to reuse it after solving).
    pub fn into_instance(self) -> Instance {
        Arc::try_unwrap(self.instance).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} over {} ({}; {}, seed {:#x})",
            self.problem,
            self.instance.kind(),
            self.instance.summary(),
            self.determinism,
            self.seed
        )?;
        if let Some(p) = self.pipeline_override {
            write!(f, " [forced: {}]", p.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitgraph::Graph;

    #[test]
    fn builder_sets_every_knob() {
        let r = Request::new(Problem::Mis { base_degree: None }, Graph::new(4))
            .deterministic()
            .seed(42)
            .force_pipeline(Pipeline::Theorem27)
            .max_rounds(100.0)
            .attempts(3)
            .deadline_ms(750);
        assert_eq!(r.determinism(), Determinism::Deterministic);
        assert_eq!(r.master_seed(), 42);
        assert_eq!(r.pipeline_override(), Some(Pipeline::Theorem27));
        assert_eq!(r.budget().max_rounds, Some(100.0));
        assert_eq!(r.budget().attempts, Some(3));
        assert_eq!(r.budget().deadline_ms, Some(750));
        let shown = r.to_string();
        assert!(shown.contains("mis"), "{shown}");
        assert!(shown.contains("forced: theorem27"), "{shown}");
    }

    #[test]
    fn into_instance_clones_when_the_instance_is_still_shared() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let r = Request::new(Problem::Mis { base_degree: None }, g);
        // batch/queue fan-out holds sibling clones of the same request,
        // so the Arc'd instance is shared at extraction time
        let sibling = r.clone();
        let recovered = r.into_instance();
        assert_eq!(&recovered, sibling.instance());
        // and once exclusive again, extraction still works (no clone)
        drop(recovered);
        let exclusive = sibling.into_instance();
        assert_eq!(exclusive.kind(), "host-graph");
    }

    #[test]
    fn defaults_mirror_the_legacy_facade() {
        let r = Request::new(Problem::weak_splitting(), Graph::new(1));
        assert_eq!(r.master_seed(), DEFAULT_SEED);
        assert_eq!(r.determinism(), Determinism::Randomized);
        assert_eq!(r.budget(), &Budget::default());
    }
}
