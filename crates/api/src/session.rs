//! The session: solves single requests and parallel batches, verifying
//! every solution against its certificate before returning it.

use crate::error::ApiError;
use crate::problem::{Output, Problem};
use crate::request::{Determinism, Request};
use crate::solution::{Certificate, CertificateKind, Provenance, Solution};
use degree_split::{DegreeSplitter, Engine, Flavor};
use local_runtime::{CancelToken, RoundLedger};
use splitgraph::checks;
use splitgraph::math::{
    ceil_log2, weak_multicolor_degree_threshold, weak_multicolor_required_colors,
};
use splitting_core as core;
use splitting_core::{decide_pipeline, Pipeline, RegimeParams, DISPATCH_REQUIREMENT};
use splitting_reductions as red;

/// Legacy retry budget of the zero-round Las Vegas wrapper
/// (`WeakSplittingSolver::solve` hardcodes 32).
const ZERO_ROUND_ATTEMPTS: usize = 32;
/// Legacy retry budget of the uniform-splitting Las Vegas loop.
const UNIFORM_ATTEMPTS: usize = 16;

/// A solving session: thread configuration plus reusable batch scratch.
///
/// Sessions are cheap to create and reusable; one session can serve any
/// number of [`solve`](Session::solve) and
/// [`solve_batch`](Session::solve_batch) calls. Batches run on scoped
/// worker threads (mirroring `local_runtime::run_local_parallel`):
/// requests are partitioned into contiguous chunks, each worker solves
/// its chunk independently, and results are returned in request order —
/// so a batch result is bit-identical to solving the requests
/// sequentially.
#[derive(Debug, Clone)]
pub struct Session {
    threads: usize,
}

impl Session {
    /// A session sized to the host's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Session { threads }
    }

    /// A session with an explicit worker count (clamped to ≥ 1);
    /// `with_threads(1)` makes `solve_batch` strictly sequential.
    pub fn with_threads(threads: usize) -> Self {
        Session {
            threads: threads.max(1),
        }
    }

    /// The configured batch worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves one request.
    ///
    /// The returned solution's certificate has been verified against the
    /// matching `splitgraph::checks` predicate; an output that fails its
    /// own certificate is never returned (it becomes
    /// [`ApiError::CertificateViolation`]).
    ///
    /// # Errors
    ///
    /// Any [`ApiError`]: malformed requests, uncovered regimes,
    /// exhausted randomized retries, uncertifiable derandomization,
    /// failed certificates, or busted round budgets.
    pub fn solve(&self, request: &Request) -> Result<Solution, ApiError> {
        match request.budget().deadline_ms {
            None => self.solve_uncancellable(request),
            Some(ms) => {
                let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
                self.solve_with_cancel(request, &CancelToken::with_deadline(deadline))
            }
        }
    }

    /// Solves one request under an externally-owned cancellation token
    /// (in addition to any `deadline_ms` budget already folded into
    /// `token` by the caller). The solve is abandoned at the next
    /// cooperative checkpoint once the token trips — this is the entry
    /// the `splitd` workers use so an over-budget job releases its
    /// worker back to the pool.
    ///
    /// # Errors
    ///
    /// Exactly like [`solve`](Session::solve), plus
    /// [`ApiError::DeadlineExceeded`] (stage `"solving"`) when `token`
    /// cancels the solve.
    pub fn solve_with_cancel(
        &self,
        request: &Request,
        token: &CancelToken,
    ) -> Result<Solution, ApiError> {
        match local_runtime::with_token(token, || self.solve_uncancellable(request)) {
            Ok(result) => result,
            Err(local_runtime::Cancelled) => Err(ApiError::DeadlineExceeded {
                stage: "solving",
                deadline_ms: request.budget().deadline_ms.unwrap_or(0),
            }),
        }
    }

    fn solve_uncancellable(&self, request: &Request) -> Result<Solution, ApiError> {
        let solution = dispatch(request)?;
        if !solution.certificate.holds() {
            return Err(solution.certificate.into_error());
        }
        if let Some(budget) = request.budget().max_rounds {
            let needed = solution.ledger.total();
            if needed > budget {
                return Err(ApiError::BudgetExceeded { budget, needed });
            }
        }
        Ok(solution)
    }

    /// Solves a batch of requests on up to [`threads`](Session::threads)
    /// scoped worker threads, returning per-request results in request
    /// order. Each result is bit-identical to a standalone
    /// [`solve`](Session::solve) of the same request.
    pub fn solve_batch(&self, requests: &[Request]) -> Vec<Result<Solution, ApiError>> {
        let t = self.threads.min(requests.len().max(1));
        if t <= 1 {
            return requests.iter().map(|r| self.solve(r)).collect();
        }
        let chunk = requests.len().div_ceil(t);
        let mut results: Vec<Result<Solution, ApiError>> = Vec::with_capacity(requests.len());
        // per-worker result buffers, filled independently and drained in
        // chunk order (requests are solved where they land; outputs come
        // back in request order)
        let mut buffers: Vec<Vec<Result<Solution, ApiError>>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = requests
                .chunks(chunk)
                .map(|reqs| s.spawn(move || reqs.iter().map(|r| self.solve(r)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                buffers.push(h.join().expect("batch worker panicked"));
            }
        });
        for buf in buffers {
            results.extend(buf);
        }
        results
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

/// Solves one request on a throwaway single-thread session — the
/// convenience entry for one-off callers.
///
/// # Errors
///
/// Exactly like [`Session::solve`].
pub fn solve(request: &Request) -> Result<Solution, ApiError> {
    Session::with_threads(1).solve(request)
}

// ------------------------------------------------------------- dispatch

/// The reproduction's standard `poly log n` base-case threshold for the
/// Section 4 recursions: `4·⌈log₂ n⌉`, floored at 1.
fn default_base_degree(n: usize) -> usize {
    (4 * ceil_log2(n.max(2)) as usize).max(1)
}

fn provenance(
    request: &Request,
    route: &'static str,
    pipeline: Option<Pipeline>,
    why: String,
) -> Provenance {
    Provenance {
        problem: request.problem().name(),
        route,
        pipeline,
        determinism: request.determinism(),
        seed: request.master_seed(),
        regime: request.instance().summary(),
        why,
    }
}

fn certified_solution(
    request: &Request,
    kind: CertificateKind,
    output: Output,
    ledger: RoundLedger,
    route: &'static str,
    pipeline: Option<Pipeline>,
    why: String,
) -> Result<Solution, ApiError> {
    let certificate = Certificate::verify(kind, request.instance(), &output)?;
    Ok(Solution {
        output,
        certificate,
        provenance: provenance(request, route, pipeline, why),
        ledger,
    })
}

fn dispatch(request: &Request) -> Result<Solution, ApiError> {
    match *request.problem() {
        Problem::WeakSplitting { thm12_constant } => weak_splitting(request, thm12_constant),
        Problem::WeakMulticolor => weak_multicolor(request),
        Problem::MulticolorSplitting { colors, lambda } => multicolor(request, colors, lambda),
        Problem::UniformSplitting { eps, min_degree } => uniform(request, eps, min_degree),
        Problem::DegreeSplitting { eps, engine } => degree_splitting(request, eps, engine),
        Problem::SinklessOrientation => sinkless(request),
        Problem::DeltaColoring {
            base_degree,
            max_eps,
        } => delta_coloring(request, base_degree, max_eps),
        Problem::EdgeColoring {
            base_degree,
            engine,
        } => edge_coloring(request, base_degree, engine),
        Problem::Mis { base_degree } => mis(request, base_degree),
    }
}

fn weak_splitting(request: &Request, thm12_constant: f64) -> Result<Solution, ApiError> {
    if !(thm12_constant.is_finite() && thm12_constant > 0.0) {
        return Err(ApiError::InvalidRequest {
            field: "thm12_constant",
            reason: format!("must be a positive finite constant, got {thm12_constant}"),
        });
    }
    let b = request.instance().bipartite()?;
    let params = RegimeParams::of(b);
    let allow_randomized = request.determinism() == Determinism::Randomized;
    let seed = request.master_seed();
    let (pipeline, why) = match request.pipeline_override() {
        Some(p) => {
            // the override cannot launder randomness past the policy: a
            // deterministic request may only force deterministic pipelines
            if !allow_randomized && matches!(p, Pipeline::ZeroRound | Pipeline::Theorem12) {
                return Err(ApiError::InvalidRequest {
                    field: "pipeline_override",
                    reason: format!(
                        "pipeline {} is randomized but the request is deterministic",
                        p.name()
                    ),
                });
            }
            (
                p,
                format!("pipeline {} forced by request override", p.name()),
            )
        }
        None => {
            let p = decide_pipeline(allow_randomized, thm12_constant, params).ok_or_else(|| {
                ApiError::UnsupportedRegime {
                    requirement: DISPATCH_REQUIREMENT.into(),
                    actual: params.to_string(),
                }
            })?;
            (p, dispatch_reason(p, params, thm12_constant))
        }
    };
    // exactly the legacy WeakSplittingSolver::solve arm for each pipeline,
    // so same-seed outputs stay bit-identical to the façade
    let out = match pipeline {
        Pipeline::Theorem27 => {
            let variant = if allow_randomized {
                core::Variant::Randomized(seed)
            } else {
                core::Variant::Deterministic
            };
            core::theorem27(b, variant)?
        }
        Pipeline::Theorem25 => core::theorem25(b, Flavor::Deterministic).map(|(o, _)| o)?,
        Pipeline::ZeroRound => core::zero_round_whp(
            b,
            seed,
            request.budget().attempts.unwrap_or(ZERO_ROUND_ATTEMPTS),
        )?,
        Pipeline::Theorem12 => {
            let mut cfg = core::Theorem12Config {
                seed,
                c_constant: thm12_constant,
                ..core::Theorem12Config::default()
            };
            if let Some(attempts) = request.budget().attempts {
                cfg.attempts = attempts;
            }
            core::theorem12(b, &cfg)?
        }
    };
    certified_solution(
        request,
        CertificateKind::WeakSplitting { min_degree: 0 },
        Output::TwoColoring(out.colors),
        out.ledger,
        pipeline.name(),
        Some(pipeline),
        why,
    )
}

fn dispatch_reason(pipeline: Pipeline, p: RegimeParams, c: f64) -> String {
    match pipeline {
        Pipeline::Theorem27 => format!("δ = {} ≥ 6r = {}", p.delta, 6 * p.rank),
        Pipeline::Theorem25 => format!("deterministic and δ = {} ≥ 2·log n", p.delta),
        Pipeline::ZeroRound => format!("randomized and δ = {} ≥ 2·log n", p.delta),
        Pipeline::Theorem12 => {
            format!(
                "randomized and δ = {} ≥ c·log(r·log n) with c = {c}",
                p.delta
            )
        }
    }
}

fn weak_multicolor(request: &Request) -> Result<Solution, ApiError> {
    let b = request.instance().bipartite()?;
    let n = b.node_count();
    let kind = CertificateKind::WeakMulticolor {
        threshold: weak_multicolor_degree_threshold(n),
        palette: weak_multicolor_required_colors(n),
    };
    let (out, route, why) = match request.determinism() {
        Determinism::Deterministic => (
            core::weak_multicolor_deterministic(b)?,
            "weak-multicolor/compiled",
            "missing-color estimator, SLOCAL(2) → LOCAL compilation (Thm 3.2)".to_string(),
        ),
        Determinism::Randomized => (
            core::weak_multicolor_random(b, request.master_seed()),
            "weak-multicolor/zero-round",
            "one uniform color choice per variable (zero rounds)".to_string(),
        ),
    };
    certified_solution(
        request,
        kind,
        Output::MultiColoring {
            colors: out.colors,
            palette: out.palette,
        },
        out.ledger,
        route,
        None,
        why,
    )
}

fn multicolor(request: &Request, colors: u32, lambda: f64) -> Result<Solution, ApiError> {
    if colors < 2 {
        return Err(ApiError::InvalidRequest {
            field: "colors",
            reason: format!("palette bound C must be at least 2, got {colors}"),
        });
    }
    if !(lambda > 0.0 && lambda <= 1.0) {
        return Err(ApiError::InvalidRequest {
            field: "lambda",
            reason: format!("must lie in (0, 1], got {lambda}"),
        });
    }
    let b = request.instance().bipartite()?;
    let (out, route, why) = match request.determinism() {
        Determinism::Deterministic => (
            core::multicolor_splitting_deterministic(b, colors, lambda)?,
            "multicolor/compiled",
            "Chernoff-overload estimator, conditional-expectation fixer".to_string(),
        ),
        Determinism::Randomized => (
            core::multicolor_splitting_random(b, colors, lambda, request.master_seed()),
            "multicolor/zero-round",
            "one uniform palette choice per variable (zero rounds)".to_string(),
        ),
    };
    certified_solution(
        request,
        CertificateKind::MulticolorSplitting {
            lambda,
            min_degree: 0,
        },
        Output::MultiColoring {
            colors: out.colors,
            palette: out.palette,
        },
        out.ledger,
        route,
        None,
        why,
    )
}

fn uniform(
    request: &Request,
    eps: Option<f64>,
    min_degree: Option<usize>,
) -> Result<Solution, ApiError> {
    let g = request.instance().host()?;
    let n = g.node_count();
    let min_degree = min_degree.unwrap_or_else(|| g.max_degree());
    let eps = eps.unwrap_or_else(|| red::feasible_eps(n, min_degree));
    if !(eps > 0.0 && eps <= 0.5) {
        return Err(ApiError::InvalidRequest {
            field: "eps",
            reason: format!("accuracy must lie in (0, 1/2], got {eps}"),
        });
    }
    let kind = CertificateKind::UniformSplitting { eps, min_degree };
    match request.determinism() {
        Determinism::Deterministic => {
            let out = red::uniform_splitting_deterministic(g, eps, min_degree)?;
            certified_solution(
                request,
                kind,
                Output::TwoColoring(out.colors),
                out.ledger,
                "uniform/derandomized",
                None,
                format!("Chernoff certificate at ε = {eps:.4}, degree floor {min_degree}"),
            )
        }
        Determinism::Randomized => {
            // the legacy Las Vegas loop: one coin flip per node per seed,
            // first seed whose splitting certifies wins
            let attempts = request.budget().attempts.unwrap_or(UNIFORM_ATTEMPTS);
            let seed = request.master_seed();
            for i in 0..attempts {
                let sides = red::uniform_splitting_random(g, seed.wrapping_add(i as u64));
                if checks::is_uniform_splitting(g, &sides, eps, min_degree) {
                    let mut ledger = RoundLedger::new();
                    ledger.add_measured("zero-round uniform splitting", 0.0);
                    return certified_solution(
                        request,
                        kind,
                        Output::TwoColoring(sides),
                        ledger,
                        "uniform/las-vegas",
                        None,
                        format!("seed {} certified after {} attempt(s)", seed, i + 1),
                    );
                }
            }
            Err(ApiError::RandomizedFailure {
                phase: "uniform splitting".into(),
                attempts,
            })
        }
    }
}

fn degree_splitting(request: &Request, eps: f64, engine: Engine) -> Result<Solution, ApiError> {
    if !(eps > 0.0 && eps <= 1.0) {
        return Err(ApiError::InvalidRequest {
            field: "eps",
            reason: format!("accuracy must lie in (0, 1], got {eps}"),
        });
    }
    let g = request.instance().multigraph()?;
    let flavor = match request.determinism() {
        Determinism::Deterministic => Flavor::Deterministic,
        Determinism::Randomized => Flavor::Randomized,
    };
    let splitter = DegreeSplitter::new(eps, engine, flavor);
    let result = splitter.split(g, g.node_count());
    let (route, why, aggregate) = match engine {
        Engine::EulerianOracle => (
            "degree-split/eulerian-oracle",
            format!("Eulerian reference engine, rounds charged per Theorem 2.3 ({flavor:?})"),
            false,
        ),
        Engine::Walk => (
            "degree-split/walk",
            "walk-segmentation engine, rounds measured".to_string(),
            true,
        ),
    };
    certified_solution(
        request,
        CertificateKind::DegreeSplitContract { eps, aggregate },
        Output::EdgeOrientation(result.orientation),
        result.ledger,
        route,
        None,
        why,
    )
}

fn sinkless(request: &Request) -> Result<Solution, ApiError> {
    let g = request.instance().host()?;
    let ids: Vec<u64> = (0..g.node_count() as u64).collect();
    let instance = splitgraph::generators::sinkless_instance(g, &ids);
    if request.determinism() == Determinism::Deterministic && g.min_degree() >= 5 {
        // below the Theorem 2.7 window the Figure 1 pipeline falls back
        // to the randomized rank-2 reference (Theorem 2.10 forbids a
        // fast LOCAL solver there) — a deterministic request must not be
        // served by it silently
        let b = &instance.bipartite;
        if b.min_left_degree() < 6 * b.rank() {
            return Err(ApiError::UnsupportedRegime {
                requirement: "deterministic sinkless orientation needs δ_B ≥ 6·r_B \
                              (δ_G ≥ 23) so Theorem 2.7 applies; below it the only \
                              in-tree solver is randomized"
                    .into(),
                actual: format!("δ_B = {}, r_B = {}", b.min_left_degree(), b.rank()),
            });
        }
    }
    let reduction = core::sinkless_from_instance(g, instance, &ids, request.master_seed())?;
    let b = &reduction.instance.bipartite;
    let why = if b.min_left_degree() >= 6 * b.rank() {
        format!(
            "Figure 1 reduction; δ_B = {} ≥ 6·r_B lands in Theorem 2.7",
            b.min_left_degree()
        )
    } else {
        "Figure 1 reduction; below the Theorem 2.7 window — centralized rank-2 reference \
         (Theorem 2.10 forbids a fast LOCAL solver here)"
            .to_string()
    };
    certified_solution(
        request,
        CertificateKind::Sinkless { min_degree: 1 },
        Output::HostOrientation(reduction.orientation),
        reduction.ledger,
        "sinkless/figure1",
        None,
        why,
    )
}

fn delta_coloring(
    request: &Request,
    base_degree: Option<usize>,
    max_eps: Option<f64>,
) -> Result<Solution, ApiError> {
    let g = request.instance().host()?;
    let base = base_degree.unwrap_or_else(|| default_base_degree(g.node_count()));
    let (colors, report, ledger) = red::delta_coloring_via_splitting(g, base, max_eps)?;
    certified_solution(
        request,
        CertificateKind::ProperColoring,
        Output::MultiColoring {
            colors,
            palette: report.palette.max(1),
        },
        ledger,
        "coloring/lemma41",
        None,
        format!(
            "recursive uniform splitting to base degree {base}: {} levels, \
             palette ratio {:.3}",
            report.levels, report.ratio
        ),
    )
}

fn edge_coloring(
    request: &Request,
    base_degree: Option<usize>,
    engine: red::EdgeSplitEngine,
) -> Result<Solution, ApiError> {
    let g = request.instance().host()?;
    let base = base_degree.unwrap_or_else(|| default_base_degree(g.node_count()));
    let (colors, report, ledger) = red::edge_coloring_via_splitting(g, base, engine)?;
    certified_solution(
        request,
        CertificateKind::ProperEdgeColoring,
        Output::MultiColoring {
            colors,
            palette: report.palette.max(1),
        },
        ledger,
        "edge-coloring/gs17",
        None,
        format!(
            "recursive {engine:?} edge splitting to base degree {base}: {} levels, \
             palette ratio {:.3}",
            report.levels, report.ratio
        ),
    )
}

fn mis(request: &Request, base_degree: Option<usize>) -> Result<Solution, ApiError> {
    if request.determinism() == Determinism::Deterministic {
        return Err(ApiError::InvalidRequest {
            field: "determinism",
            reason: "the Lemma 4.2 MIS reduction instantiates its splitting oracle A \
                     with randomness (an efficient deterministic A is the paper's open \
                     problem); request the randomized policy"
                .into(),
        });
    }
    let g = request.instance().host()?;
    let base = base_degree.unwrap_or_else(|| default_base_degree(g.node_count()));
    let (in_set, report, ledger) = red::mis_via_splitting(g, base, request.master_seed());
    certified_solution(
        request,
        CertificateKind::MaximalIndependentSet,
        Output::IndependentSet(in_set),
        ledger,
        "mis/lemma42",
        None,
        format!(
            "heavy-node elimination to base degree {base}: {} steps, {} splittings",
            report.steps, report.splittings
        ),
    )
}
