//! # splitting-api — one typed door to every splitting workload
//!
//! The paper presents one coherent landscape — weak, multicolor, and
//! uniform splitting, degree splitting, and the Section 4 reductions —
//! dispatched by `(n, δ, r)` regime. This crate is that landscape as a
//! single request/solution surface:
//!
//! * [`Problem`] — every solvable workload as one enum (weak splitting,
//!   Definition 1.2/1.3 multicolor, uniform splitting, degree splitting,
//!   sinkless orientation, Δ-coloring, edge coloring, MIS);
//! * [`Request`] — a builder carrying the instance, determinism policy,
//!   master seed, theorem-selection override, and resource budgets;
//! * [`Solution`] — the output bundled with a self-verifying
//!   [`Certificate`] (re-runs the matching `splitgraph::checks`
//!   predicate), a [`Provenance`] record (chosen pipeline + regime
//!   parameters + why), and the round ledger;
//! * [`Session`] — solves single requests or parallel batches over
//!   scoped worker threads, returning results in request order;
//! * [`Session::hold`] / [`HeldSolution`] — the churn surface: hold an
//!   instance, stream [`splitgraph::EdgeDelta`] batches into it, and get
//!   back incrementally repaired (still fully certified) solutions;
//! * [`ApiError`] — the closed error taxonomy of the boundary.
//!
//! Solutions are **verified before they are returned**: a session never
//! hands out an output that fails its own certificate. Under the same
//! seed, every route is bit-identical to the legacy per-theorem
//! entrypoint it wraps (asserted by the conformance harness's `api`
//! group).
//!
//! # Example
//!
//! ```
//! use splitting_api::{Problem, Request, Session};
//! use splitgraph::generators;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 100 constraints of degree 20 over 100 variables: the Theorem 2.5 /
//! // zero-round density regime.
//! let mut rng = StdRng::seed_from_u64(1);
//! let b = generators::random_biregular(100, 100, 20, &mut rng)?;
//!
//! let session = Session::new();
//! let solution = session.solve(&Request::new(Problem::weak_splitting(), b).seed(7))?;
//!
//! // the certificate re-ran splitgraph::checks and holds
//! assert!(solution.certificate.holds());
//! // provenance says which pipeline the regime dispatcher picked and why
//! println!("{}", solution.provenance);
//! // one-line JSON for service logs
//! assert!(solution.to_json_line().starts_with("{\"event\":\"solution\""));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod hold;
mod problem;
pub mod render;
mod request;
mod session;
mod solution;

pub use error::ApiError;
pub use hold::{ChurnStats, HeldSolution, DEFAULT_REFIX_THRESHOLD};
pub use problem::{Instance, Output, Problem};
pub use request::{Budget, Determinism, Request, DEFAULT_SEED};
pub use session::{solve, Session};
pub use solution::{Certificate, CertificateKind, Provenance, Solution};

// the pipeline names surface in requests (`force_pipeline`) and
// provenance records; re-export so API callers need not depend on the
// core crate for them
pub use splitting_core::{Pipeline, RegimeParams};

// cancellation handles surface in `Session::solve_with_cancel`;
// re-export so API callers (notably the `splitd` workers) need not
// depend on the runtime crate for them
pub use local_runtime::{CancelToken, Cancelled};
