//! Serde-free JSON-line rendering helpers.
//!
//! The service-log and wire format is newline-delimited JSON with a
//! stable field order; this module provides the tiny escaping/assembly
//! layer every `to_json_line` implementation shares, so no external
//! serialization dependency is needed. It is public because the
//! `splitting-server` wire layer assembles its protocol frames with the
//! same builder — one renderer, one byte-level convention (see
//! `docs/PROTOCOL.md`).

use std::fmt::Write as _;

/// Escapes `s` into `out` as JSON string contents (without the quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders an `f64` the way the rest of the JSON reports do: finite
/// numbers verbatim, non-finite as `null` (JSON has no NaN/Inf).
pub fn number(x: f64) -> String {
    if x == 0.0 {
        // normalize -0.0: round-trips as 0 and keeps log lines diffable
        "0".into()
    } else if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// An incrementally-built single-line JSON object with stable field order.
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object (`{`).
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds a raw (pre-rendered) JSON value — a number, bool, or nested
    /// object the caller already assembled.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    /// Adds a float field (`null` when non-finite).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        let n = number(value);
        self.raw(key, &n)
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Closes the object and returns the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_assembles_in_order() {
        let mut o = JsonObject::new();
        o.string("a", "x\"y")
            .uint("b", 7)
            .float("c", 1.5)
            .bool("d", true);
        assert_eq!(
            o.finish(),
            "{\"a\":\"x\\\"y\",\"b\":7,\"c\":1.5,\"d\":true}"
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(0.25), "0.25");
    }

    #[test]
    fn control_chars_escape() {
        let mut s = String::new();
        escape_into(&mut s, "a\x01b\nc");
        assert_eq!(s, "a\\u0001b\\nc");
    }
}
