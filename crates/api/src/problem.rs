//! The problem taxonomy: every solvable workload behind one typed enum,
//! plus the instance and output representations they share.

use crate::error::ApiError;
use degree_split::Engine;
use splitgraph::checks::GraphOrientation;
use splitgraph::{BipartiteGraph, Color, Graph, MultiColor, MultiGraph, Orientation};
use splitting_reductions::EdgeSplitEngine;
use std::fmt;

/// Every workload the paper's landscape covers, as one dispatchable type.
///
/// Problem-specific tuning parameters live on the variant; `Option` fields
/// default to the reproduction's standard choices (documented per field).
/// Determinism policy, seeds, and budgets live on the
/// [`Request`](crate::Request) instead — they are cross-cutting.
///
/// # Problem → pipeline dispatch
///
/// Which theorem of the paper serves each variant, on which instance
/// shape, and which `splitgraph::checks` predicate certifies the output:
///
/// | `Problem` variant | Instance | Route(s) | Certificate |
/// |---|---|---|---|
/// | [`WeakSplitting`](Problem::WeakSplitting) | bipartite | `(n, δ, r)` regime dispatch: δ ≥ 6r → Thm 2.7; δ ≥ 2·log n → Thm 2.5 (det) / zero-round (rand); δ ≥ c·log(r·log n) → Thm 1.2 (rand); overridable via [`Request::force_pipeline`](crate::Request::force_pipeline) | `is_weak_splitting` |
/// | [`WeakMulticolor`](Problem::WeakMulticolor) | bipartite | missing-color fixer (det) / zero-round choice (rand), Def 1.3 | `is_weak_multicolor_splitting` |
/// | [`MulticolorSplitting`](Problem::MulticolorSplitting) `{C, λ}` | bipartite | Chernoff-overload fixer (det) / zero-round choice (rand), Def 1.2 | `is_multicolor_splitting` |
/// | [`UniformSplitting`](Problem::UniformSplitting) `{ε, δ₀}` | host graph | derandomized doubling instance (det) / Las Vegas coin flips (rand), §4.1 | `is_uniform_splitting` |
/// | [`DegreeSplitting`](Problem::DegreeSplitting) `{ε, engine}` | multigraph | Eulerian oracle or walk engine, Thm 2.3 flavor from the determinism policy | `ε·d + 2` contract (per-node / aggregate) |
/// | [`SinklessOrientation`](Problem::SinklessOrientation) | host graph | Figure 1 reduction → Thm 2.7 or rank-2 reference (§2.5) | `is_sinkless` |
/// | [`DeltaColoring`](Problem::DeltaColoring) | host graph | recursive uniform splitting + greedy base (Lemma 4.1) | `is_proper_coloring` |
/// | [`EdgeColoring`](Problem::EdgeColoring) `{engine}` | host graph | recursive edge splitting + greedy base (§1.1, \[GS17\]) | `is_proper_edge_coloring` |
/// | [`Mis`](Problem::Mis) | host graph | heavy-node elimination (Lemma 4.2; randomized-only — a det request is a typed error) | `is_mis` |
///
/// The regime decision for `WeakSplitting` is the single shared
/// `splitting_core::decide_pipeline` function — `WeakSplittingSolver::plan`,
/// `::solve`, and this API all route through it, so plan-vs-solve can
/// never disagree (pinned by a proptest in
/// `crates/core/tests/dispatch_consistency.rs`).
#[derive(Debug, Clone, PartialEq)]
pub enum Problem {
    /// Weak splitting (Definition 1.1) over a bipartite instance,
    /// dispatched by `(n, δ, r)` regime exactly like
    /// [`splitting_core::WeakSplittingSolver`].
    WeakSplitting {
        /// The Theorem 1.2 constant `c` in `δ ≥ c·log(r·log n)`.
        thm12_constant: f64,
    },
    /// C-weak multicolor splitting (Definition 1.3): every constraint of
    /// degree ≥ `2·log n` misses at least one of the `⌈2·log n⌉` colors.
    WeakMulticolor,
    /// `(C, λ)`-multicolor splitting (Definition 1.2).
    MulticolorSplitting {
        /// Palette bound `C`.
        colors: u32,
        /// Per-color load cap `λ` (each constraint sees at most
        /// `⌈λ·deg⌉` neighbors of any one color).
        lambda: f64,
    },
    /// Uniform (strong) splitting of a host graph (Section 4.1).
    UniformSplitting {
        /// Accuracy `ε`; `None` picks the certified
        /// [`splitting_reductions::feasible_eps`] for the degree floor.
        eps: Option<f64>,
        /// Constrain only nodes of at least this degree; `None` uses the
        /// host's maximum degree.
        min_degree: Option<usize>,
    },
    /// Directed degree splitting of a multigraph (Theorem 2.3 contract).
    DegreeSplitting {
        /// Contract accuracy `ε` in `|out(v) − in(v)| ≤ ε·d(v) + 2`.
        eps: f64,
        /// Which engine computes the orientation.
        engine: Engine,
    },
    /// Sinkless orientation via the Figure 1 / Section 2.5 reduction to
    /// weak splitting (node IDs are `0..n`).
    SinklessOrientation,
    /// `(1 + o(1))·Δ` vertex coloring via recursive splitting (Lemma 4.1).
    DeltaColoring {
        /// Degree at which recursion stops; `None` uses `4·⌈log₂ n⌉`.
        base_degree: Option<usize>,
        /// Per-level accuracy ceiling; `None` uses the engine default.
        max_eps: Option<f64>,
    },
    /// `2Δ(1 + o(1))` edge coloring via recursive edge splitting (§1.1).
    EdgeColoring {
        /// Per-class degree at which recursion stops; `None` uses
        /// `4·⌈log₂ n⌉`.
        base_degree: Option<usize>,
        /// Which engine performs the per-class edge splittings.
        engine: EdgeSplitEngine,
    },
    /// Maximal independent set via heavy-node elimination (Lemma 4.2).
    Mis {
        /// `poly log n` threshold below which the base MIS takes over;
        /// `None` uses `4·⌈log₂ n⌉`.
        base_degree: Option<usize>,
    },
}

impl Problem {
    /// Weak splitting with the default Theorem 1.2 constant (`c = 3`,
    /// matching [`splitting_core::WeakSplittingSolver::default`]).
    pub fn weak_splitting() -> Self {
        Problem::WeakSplitting {
            thm12_constant: 3.0,
        }
    }

    /// Stable machine-readable name (used in provenance and logs).
    pub fn name(&self) -> &'static str {
        match self {
            Problem::WeakSplitting { .. } => "weak-splitting",
            Problem::WeakMulticolor => "weak-multicolor",
            Problem::MulticolorSplitting { .. } => "multicolor-splitting",
            Problem::UniformSplitting { .. } => "uniform-splitting",
            Problem::DegreeSplitting { .. } => "degree-splitting",
            Problem::SinklessOrientation => "sinkless-orientation",
            Problem::DeltaColoring { .. } => "delta-coloring",
            Problem::EdgeColoring { .. } => "edge-coloring",
            Problem::Mis { .. } => "mis",
        }
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The instance an algorithm runs on. The three shapes the paper uses:
/// bipartite constraint/variable systems, plain host graphs, and
/// multigraphs (for degree splitting, whose intermediate graphs carry
/// parallel edges).
#[derive(Debug, Clone, PartialEq)]
pub enum Instance {
    /// A bipartite constraint/variable instance `B = (U ∪ V, E)`.
    Bipartite(BipartiteGraph),
    /// A simple host graph `G`.
    Host(Graph),
    /// A multigraph (degree-splitting substrate).
    Multi(MultiGraph),
}

impl Instance {
    /// Stable kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Instance::Bipartite(_) => "bipartite",
            Instance::Host(_) => "host-graph",
            Instance::Multi(_) => "multigraph",
        }
    }

    /// A one-line parameter summary (for provenance records).
    pub fn summary(&self) -> String {
        match self {
            // same string as the dispatch layer's regime rendering — one
            // format, one source
            Instance::Bipartite(b) => splitting_core::RegimeParams::of(b).to_string(),
            Instance::Host(g) => format!(
                "n = {}, m = {}, δ = {}, Δ = {}",
                g.node_count(),
                g.edge_count(),
                g.min_degree(),
                g.max_degree()
            ),
            Instance::Multi(g) => format!(
                "n = {}, m = {}, Δ = {}",
                g.node_count(),
                g.edge_count(),
                g.max_degree()
            ),
        }
    }

    /// The bipartite instance, or a typed mismatch error.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the instance has another shape.
    pub fn bipartite(&self) -> Result<&BipartiteGraph, ApiError> {
        match self {
            Instance::Bipartite(b) => Ok(b),
            other => Err(Self::mismatch("bipartite", other)),
        }
    }

    /// The host graph, or a typed mismatch error.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the instance has another shape.
    pub fn host(&self) -> Result<&Graph, ApiError> {
        match self {
            Instance::Host(g) => Ok(g),
            other => Err(Self::mismatch("host-graph", other)),
        }
    }

    /// The multigraph, or a typed mismatch error.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the instance has another shape.
    pub fn multigraph(&self) -> Result<&MultiGraph, ApiError> {
        match self {
            Instance::Multi(g) => Ok(g),
            other => Err(Self::mismatch("multigraph", other)),
        }
    }

    fn mismatch(needed: &'static str, got: &Instance) -> ApiError {
        ApiError::InvalidRequest {
            field: "instance",
            reason: format!("problem needs a {needed} instance, got {}", got.kind()),
        }
    }
}

impl From<BipartiteGraph> for Instance {
    fn from(b: BipartiteGraph) -> Self {
        Instance::Bipartite(b)
    }
}

impl From<Graph> for Instance {
    fn from(g: Graph) -> Self {
        Instance::Host(g)
    }
}

impl From<MultiGraph> for Instance {
    fn from(g: MultiGraph) -> Self {
        Instance::Multi(g)
    }
}

/// The solved object, in the representation the matching checker expects.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// A red/blue 2-coloring (weak or uniform splitting), indexed by
    /// variable (bipartite instances) or node (host graphs).
    TwoColoring(Vec<Color>),
    /// A multicolor assignment with its palette size — variable colors
    /// (multicolor splitting), node colors (Δ-coloring), or edge colors
    /// (edge coloring, indexed in [`Graph::edges`] order).
    MultiColoring {
        /// The per-element colors.
        colors: Vec<MultiColor>,
        /// Palette size actually used.
        palette: u32,
    },
    /// A multigraph edge orientation (degree splitting).
    EdgeOrientation(Orientation),
    /// A simple-graph orientation in [`Graph::edges`] order (sinkless
    /// orientation).
    HostOrientation(GraphOrientation),
    /// A node subset (MIS).
    IndependentSet(Vec<bool>),
}

impl Output {
    /// Stable kind name for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Output::TwoColoring(_) => "two-coloring",
            Output::MultiColoring { .. } => "multi-coloring",
            Output::EdgeOrientation(_) => "edge-orientation",
            Output::HostOrientation(_) => "host-orientation",
            Output::IndependentSet(_) => "independent-set",
        }
    }

    /// Number of solved elements (variables, nodes, or edges).
    pub fn len(&self) -> usize {
        match self {
            Output::TwoColoring(xs) => xs.len(),
            Output::MultiColoring { colors, .. } => colors.len(),
            Output::EdgeOrientation(o) => o.edge_count(),
            Output::HostOrientation(o) => o.forward.len(),
            Output::IndependentSet(xs) => xs.len(),
        }
    }

    /// Whether the output covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The 2-coloring, when this output is one.
    pub fn two_coloring(&self) -> Option<&[Color]> {
        match self {
            Output::TwoColoring(xs) => Some(xs),
            _ => None,
        }
    }

    /// The multicolor assignment and its palette, when this output is one.
    pub fn multi_coloring(&self) -> Option<(&[MultiColor], u32)> {
        match self {
            Output::MultiColoring { colors, palette } => Some((colors, *palette)),
            _ => None,
        }
    }

    /// The multigraph orientation, when this output is one.
    pub fn edge_orientation(&self) -> Option<&Orientation> {
        match self {
            Output::EdgeOrientation(o) => Some(o),
            _ => None,
        }
    }

    /// The host-graph orientation, when this output is one.
    pub fn host_orientation(&self) -> Option<&GraphOrientation> {
        match self {
            Output::HostOrientation(o) => Some(o),
            _ => None,
        }
    }

    /// The node subset, when this output is one.
    pub fn independent_set(&self) -> Option<&[bool]> {
        match self {
            Output::IndependentSet(xs) => Some(xs),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shape_mismatch_is_typed() {
        let g = Graph::new(3);
        let inst = Instance::from(g);
        assert_eq!(inst.kind(), "host-graph");
        let err = inst.bipartite().unwrap_err();
        assert_eq!(err.kind(), "invalid-request");
        assert!(err.to_string().contains("host-graph"));
        assert!(inst.host().is_ok());
    }

    #[test]
    fn problem_names_are_stable() {
        assert_eq!(Problem::weak_splitting().name(), "weak-splitting");
        assert_eq!(
            Problem::MulticolorSplitting {
                colors: 6,
                lambda: 0.6
            }
            .name(),
            "multicolor-splitting"
        );
        assert_eq!(
            Problem::SinklessOrientation.to_string(),
            "sinkless-orientation"
        );
    }

    #[test]
    fn output_accessors_roundtrip() {
        let out = Output::TwoColoring(vec![Color::Red, Color::Blue]);
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
        assert!(out.two_coloring().is_some());
        assert!(out.multi_coloring().is_none());
        let out = Output::MultiColoring {
            colors: vec![0, 1, 2],
            palette: 3,
        };
        assert_eq!(out.kind(), "multi-coloring");
        assert_eq!(out.multi_coloring().unwrap().1, 3);
    }
}
