//! The solution bundle: output + self-verifying certificate + provenance
//! + round ledger.

use crate::error::ApiError;
use crate::problem::{Instance, Output};
use crate::render::JsonObject;
use crate::request::Determinism;
use local_runtime::RoundLedger;
use splitgraph::checks;
use splitting_core::Pipeline;
use std::fmt;

/// Which `splitgraph::checks` predicate certifies the output, with the
/// parameters it was solved under. The certificate is *self-verifying*:
/// [`Certificate::verify`] re-runs the exact ground-truth checker the
/// conformance harness uses, against any instance/output pair.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateKind {
    /// [`checks::weak_splitting_violations`] at the given degree floor.
    WeakSplitting {
        /// Constraints below this degree are unconstrained.
        min_degree: usize,
    },
    /// [`checks::weak_multicolor_violations`] (Definition 1.3).
    WeakMulticolor {
        /// The Definition 1.3 degree threshold (`2·log n`).
        threshold: usize,
        /// Required palette (`⌈2·log n⌉`).
        palette: usize,
    },
    /// [`checks::multicolor_splitting_violations`] (Definition 1.2).
    MulticolorSplitting {
        /// Per-color load cap `λ`.
        lambda: f64,
        /// Constraints below this degree are unconstrained.
        min_degree: usize,
    },
    /// [`checks::uniform_splitting_violations`] (Section 4.1).
    UniformSplitting {
        /// Accuracy `ε`.
        eps: f64,
        /// Nodes below this degree are unconstrained.
        min_degree: usize,
    },
    /// The Theorem 2.3 degree-splitting contract
    /// `|out(v) − in(v)| ≤ ε·d(v) + 2`.
    DegreeSplitContract {
        /// Contract accuracy `ε`.
        eps: f64,
        /// `false`: per-node (the Eulerian oracle's strength);
        /// `true`: aggregated over all nodes (the walk engine's
        /// documented strength on irregular multigraphs).
        aggregate: bool,
    },
    /// [`checks::sink_violations`] at the given degree floor.
    Sinkless {
        /// Nodes below this degree may be sinks.
        min_degree: usize,
    },
    /// [`checks::proper_coloring_violations`].
    ProperColoring,
    /// [`checks::edge_coloring_violations`].
    ProperEdgeColoring,
    /// [`checks::mis_violations`] (independence + maximality).
    MaximalIndependentSet,
}

impl CertificateKind {
    /// Stable name for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            CertificateKind::WeakSplitting { .. } => "weak-splitting",
            CertificateKind::WeakMulticolor { .. } => "weak-multicolor",
            CertificateKind::MulticolorSplitting { .. } => "multicolor-splitting",
            CertificateKind::UniformSplitting { .. } => "uniform-splitting",
            CertificateKind::DegreeSplitContract { .. } => "degree-split-contract",
            CertificateKind::Sinkless { .. } => "sinkless",
            CertificateKind::ProperColoring => "proper-coloring",
            CertificateKind::ProperEdgeColoring => "proper-edge-coloring",
            CertificateKind::MaximalIndependentSet => "maximal-independent-set",
        }
    }
}

/// A verification record bound to one solution.
///
/// The [`Session`](crate::Session) verifies every solution before
/// returning it, so a certificate in a returned [`Solution`] always
/// holds; `verify` lets callers (and the conformance harness) re-run the
/// ground-truth predicate at any later point.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    kind: CertificateKind,
    violations: usize,
}

impl Certificate {
    /// Verifies `output` against `instance` under the `kind` predicate
    /// and returns the resulting certificate.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] when the output or instance shape
    /// does not match the predicate (e.g. an orientation checked as a
    /// coloring).
    pub fn verify(
        kind: CertificateKind,
        instance: &Instance,
        output: &Output,
    ) -> Result<Certificate, ApiError> {
        let violations = count_violations(&kind, instance, output)?;
        Ok(Certificate { kind, violations })
    }

    /// Builds a certificate from an already-run predicate — for crate
    /// paths (the churn repair) that verify against a graph they own
    /// without materializing a temporary [`Instance`]. Callers must have
    /// run the matching `splitgraph::checks` predicate themselves.
    pub(crate) fn from_parts(kind: CertificateKind, violations: usize) -> Certificate {
        Certificate { kind, violations }
    }

    /// The predicate and parameters this certificate ran.
    pub fn kind(&self) -> &CertificateKind {
        &self.kind
    }

    /// Number of violated local constraints at verification time.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Whether the certificate holds (no violations).
    pub fn holds(&self) -> bool {
        self.violations == 0
    }

    /// Converts a failed certificate into the boundary error.
    pub(crate) fn into_error(self) -> ApiError {
        ApiError::CertificateViolation {
            kind: self.kind.name(),
            violations: self.violations,
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds() {
            write!(f, "{} certificate holds", self.kind.name())
        } else {
            write!(
                f,
                "{} certificate FAILS with {} violations",
                self.kind.name(),
                self.violations
            )
        }
    }
}

fn shape_error(kind: &CertificateKind, detail: &str) -> ApiError {
    ApiError::InvalidRequest {
        field: "certificate",
        reason: format!("{} predicate: {detail}", kind.name()),
    }
}

fn count_violations(
    kind: &CertificateKind,
    instance: &Instance,
    output: &Output,
) -> Result<usize, ApiError> {
    match kind {
        CertificateKind::WeakSplitting { min_degree } => {
            let b = instance.bipartite()?;
            let colors = output
                .two_coloring()
                .ok_or_else(|| shape_error(kind, "needs a two-coloring output"))?;
            if colors.len() != b.right_count() {
                return Err(shape_error(kind, "coloring/variable-count mismatch"));
            }
            Ok(checks::weak_splitting_violations(b, colors, *min_degree).len())
        }
        CertificateKind::WeakMulticolor { threshold, palette } => {
            let b = instance.bipartite()?;
            let (colors, _) = output
                .multi_coloring()
                .ok_or_else(|| shape_error(kind, "needs a multi-coloring output"))?;
            if colors.len() != b.right_count() {
                return Err(shape_error(kind, "coloring/variable-count mismatch"));
            }
            Ok(checks::weak_multicolor_violations(b, colors, *threshold, *palette).len())
        }
        CertificateKind::MulticolorSplitting { lambda, min_degree } => {
            let b = instance.bipartite()?;
            let (colors, palette) = output
                .multi_coloring()
                .ok_or_else(|| shape_error(kind, "needs a multi-coloring output"))?;
            if colors.len() != b.right_count() {
                return Err(shape_error(kind, "coloring/variable-count mismatch"));
            }
            if colors.iter().any(|&x| x >= palette) {
                return Err(shape_error(kind, "color outside the declared palette"));
            }
            Ok(
                checks::multicolor_splitting_violations(b, colors, palette, *lambda, *min_degree)
                    .len(),
            )
        }
        CertificateKind::UniformSplitting { eps, min_degree } => {
            let g = instance.host()?;
            let sides = output
                .two_coloring()
                .ok_or_else(|| shape_error(kind, "needs a two-coloring output"))?;
            if sides.len() != g.node_count() {
                return Err(shape_error(kind, "coloring/node-count mismatch"));
            }
            Ok(checks::uniform_splitting_violations(g, sides, *eps, *min_degree).len())
        }
        CertificateKind::DegreeSplitContract { eps, aggregate } => {
            let g = instance.multigraph()?;
            let o = output
                .edge_orientation()
                .ok_or_else(|| shape_error(kind, "needs an edge-orientation output"))?;
            if o.edge_count() != g.edge_count() {
                return Err(shape_error(kind, "orientation/edge-count mismatch"));
            }
            let n = g.node_count();
            if *aggregate {
                // the walk engine's documented strength: cuts can
                // concentrate on single nodes of irregular multigraphs,
                // so the ε·d + 2 budget is asserted in aggregate
                let total: f64 = (0..n).map(|v| o.discrepancy(g, v) as f64).sum();
                let budget: f64 = (0..n).map(|v| eps * g.degree(v) as f64 + 2.0).sum();
                Ok(usize::from(total > budget))
            } else {
                Ok((0..n)
                    .filter(|&v| o.discrepancy(g, v) as f64 > eps * g.degree(v) as f64 + 2.0)
                    .count())
            }
        }
        CertificateKind::Sinkless { min_degree } => {
            let g = instance.host()?;
            let o = output
                .host_orientation()
                .ok_or_else(|| shape_error(kind, "needs a host-orientation output"))?;
            if o.forward.len() != g.edge_count() {
                return Err(shape_error(kind, "orientation/edge-count mismatch"));
            }
            Ok(checks::sink_violations(g, o, *min_degree).len())
        }
        CertificateKind::ProperColoring => {
            let g = instance.host()?;
            let (colors, _) = output
                .multi_coloring()
                .ok_or_else(|| shape_error(kind, "needs a multi-coloring output"))?;
            if colors.len() != g.node_count() {
                return Err(shape_error(kind, "coloring/node-count mismatch"));
            }
            Ok(checks::proper_coloring_violations(g, colors).len())
        }
        CertificateKind::ProperEdgeColoring => {
            let g = instance.host()?;
            let (colors, _) = output
                .multi_coloring()
                .ok_or_else(|| shape_error(kind, "needs a multi-coloring output"))?;
            if colors.len() != g.edge_count() {
                return Err(shape_error(kind, "coloring/edge-count mismatch"));
            }
            Ok(checks::edge_coloring_violations(g, colors).len())
        }
        CertificateKind::MaximalIndependentSet => {
            let g = instance.host()?;
            let in_set = output
                .independent_set()
                .ok_or_else(|| shape_error(kind, "needs an independent-set output"))?;
            if in_set.len() != g.node_count() {
                return Err(shape_error(kind, "set/node-count mismatch"));
            }
            let (independence, maximality) = checks::mis_violations(g, in_set);
            Ok(independence.len() + maximality.len())
        }
    }
}

/// Why the session solved the request the way it did: the chosen route,
/// the regime parameters that drove the choice, and the policy inputs —
/// subsuming the old `WeakSplittingSolver::plan` as a record attached to
/// every solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The problem's stable name.
    pub problem: &'static str,
    /// The executed route's stable name (e.g. `theorem25`,
    /// `uniform/las-vegas`, `degree-split/walk`).
    pub route: &'static str,
    /// The weak-splitting pipeline, when the route is one (what
    /// `WeakSplittingSolver::plan` used to return).
    pub pipeline: Option<Pipeline>,
    /// The determinism policy in force.
    pub determinism: Determinism,
    /// The master seed the request carried.
    pub seed: u64,
    /// Instance regime parameters at dispatch time.
    pub regime: String,
    /// Why this route was chosen, in the paper's notation.
    pub why: String,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} ({}; {}): {}",
            self.problem, self.route, self.regime, self.determinism, self.why
        )
    }
}

/// A solved request: output, certificate, provenance, and round ledger.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The solved object.
    pub output: Output,
    /// The verification record ([`Certificate::holds`] is always true on
    /// solutions returned by a session).
    pub certificate: Certificate,
    /// The dispatch record.
    pub provenance: Provenance,
    /// Measured + charged rounds of every phase.
    pub ledger: RoundLedger,
}

impl Solution {
    /// Re-runs the ground-truth predicate against `instance` (normally
    /// the one the request carried) and reports whether it still holds.
    pub fn reverify(&self, instance: &Instance) -> bool {
        Certificate::verify(self.certificate.kind().clone(), instance, &self.output)
            .map(|c| c.holds())
            .unwrap_or(false)
    }

    /// One-line JSON rendering for service logs (serde-free, stable
    /// field order).
    pub fn to_json_line(&self) -> String {
        let mut cert = JsonObject::new();
        cert.string("kind", self.certificate.kind().name())
            .bool("holds", self.certificate.holds())
            .uint("violations", self.certificate.violations() as u64);
        let mut rounds = JsonObject::new();
        rounds
            .float("measured", self.ledger.measured_total())
            .float("charged", self.ledger.charged_total());
        let mut output = JsonObject::new();
        output
            .string("type", self.output.kind())
            .uint("len", self.output.len() as u64);
        if let Some((_, palette)) = self.output.multi_coloring() {
            output.uint("palette", u64::from(palette));
        }
        let mut obj = JsonObject::new();
        obj.string("event", "solution")
            .string("problem", self.provenance.problem)
            .string("route", self.provenance.route)
            .string("determinism", self.provenance.determinism.name())
            .uint("seed", self.provenance.seed)
            .string("regime", &self.provenance.regime)
            .string("why", &self.provenance.why)
            .raw("certificate", &cert.finish())
            .raw("rounds", &rounds.finish())
            .raw("output", &output.finish());
        obj.finish()
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {} over {} elements; {}; rounds: {:.1} measured + {:.1} charged",
            self.provenance,
            self.output.kind(),
            self.output.len(),
            self.certificate,
            self.ledger.measured_total(),
            self.ledger.charged_total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitgraph::{BipartiteGraph, Color};

    fn tiny_instance() -> Instance {
        // one constraint over two variables, both colors present
        let b = BipartiteGraph::from_edges(1, 2, &[(0, 0), (0, 1)]).unwrap();
        Instance::Bipartite(b)
    }

    #[test]
    fn weak_splitting_certificate_verifies() {
        let inst = tiny_instance();
        let good = Output::TwoColoring(vec![Color::Red, Color::Blue]);
        let cert = Certificate::verify(
            CertificateKind::WeakSplitting { min_degree: 0 },
            &inst,
            &good,
        )
        .unwrap();
        assert!(cert.holds());
        let bad = Output::TwoColoring(vec![Color::Red, Color::Red]);
        let cert = Certificate::verify(
            CertificateKind::WeakSplitting { min_degree: 0 },
            &inst,
            &bad,
        )
        .unwrap();
        assert!(!cert.holds());
        assert_eq!(cert.violations(), 1);
        assert_eq!(cert.into_error().kind(), "certificate-violation");
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let inst = tiny_instance();
        let wrong = Output::IndependentSet(vec![true]);
        let err = Certificate::verify(
            CertificateKind::WeakSplitting { min_degree: 0 },
            &inst,
            &wrong,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid-request");
    }
}
