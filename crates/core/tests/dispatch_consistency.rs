//! Plan-vs-solve consistency: `WeakSplittingSolver::plan` and
//! `WeakSplittingSolver::solve` both route through the shared
//! [`decide_pipeline`] decision function, so the pipeline `solve` executes
//! must always be the one `plan` announced. These properties pin that
//! contract over randomized biregular instances spanning every regime
//! (Theorem 2.7 skew, Theorem 2.5 / zero-round density, the Theorem 1.2
//! shattering window, and the uncovered territory below all of them).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitting_core::{decide_pipeline, RegimeParams, WeakSplittingSolver};

proptest! {
    /// `solve` executes exactly the pipeline `plan` chose, and fails iff
    /// `plan` found nothing.
    #[test]
    fn solve_pipeline_matches_plan(
        (nu, ratio, k, seed, mode) in (4usize..40, 1usize..8, 1usize..6, 0u64..1_000, 0u32..8)
    ) {
        // d = k·ratio keeps nu·d divisible by nv = nu·ratio (biregular
        // feasibility) while still spanning every dispatch regime
        let nv = nu * ratio;
        let d = (k * ratio).max(2).min(nv);
        prop_assume!(nu * d % nv == 0);
        let mut rng = StdRng::seed_from_u64(seed);
        // very dense corners can exhaust the generator's repair budget —
        // skip those cases, the regime coverage does not depend on them
        let Ok(b) = splitgraph::generators::random_biregular(nu, nv, d, &mut rng) else {
            return;
        };
        let solver = WeakSplittingSolver {
            allow_randomized: mode % 2 == 0,
            seed,
            // c ∈ {1.5, 2.5, 3.5, 4.5}: straddles the Theorem 1.2 window
            thm12_constant: 1.5 + f64::from(mode / 2),
        };
        let plan = solver.plan(&b);
        match solver.solve(&b) {
            Ok((_, pipeline)) => prop_assert_eq!(plan, Some(pipeline)),
            Err(_) => prop_assert_eq!(plan, None),
        }
    }

    /// `plan` is exactly the shared decision function on the instance's
    /// `(n, δ, r)` parameters — no second copy of the regime logic exists.
    #[test]
    fn plan_is_the_shared_decision_function(
        (nu, ratio, k, seed, mode) in (4usize..40, 1usize..8, 1usize..6, 0u64..1_000, 0u32..2)
    ) {
        let nv = nu * ratio;
        let d = (k * ratio).max(2).min(nv);
        prop_assume!(nu * d % nv == 0);
        let mut rng = StdRng::seed_from_u64(seed);
        // very dense corners can exhaust the generator's repair budget —
        // skip those cases, the regime coverage does not depend on them
        let Ok(b) = splitgraph::generators::random_biregular(nu, nv, d, &mut rng) else {
            return;
        };
        let allow_randomized = mode == 0;
        let solver = WeakSplittingSolver {
            allow_randomized,
            seed,
            ..Default::default()
        };
        prop_assert_eq!(
            solver.plan(&b),
            decide_pipeline(allow_randomized, solver.thm12_constant, RegimeParams::of(&b))
        );
    }
}
