//! Virtual-node degree uniformization (Section 2.4 preprocessing).
//!
//! The randomized algorithm assumes almost-uniform constraint degrees
//! (`δ > Δ/2`). This is without loss of generality: every constraint `u`
//! with `deg(u) ≥ 2δ` splits into `⌊deg(u)/δ⌋` virtual constraints, each
//! watching between `δ` and `2δ − 1` of `u`'s edges. A weak splitting
//! satisfying every virtual constraint satisfies `u` (each virtual node
//! already sees both colors), so solutions pull back directly.

use splitgraph::BipartiteGraph;

/// A degree-uniformized instance with the mapping back to the original
/// constraints.
#[derive(Debug, Clone)]
pub struct VirtualSplit {
    /// The uniformized instance: same variable side, virtual constraint side.
    pub graph: BipartiteGraph,
    /// `origin[i]` = original constraint of virtual constraint `i`.
    pub origin: Vec<usize>,
}

/// Splits every constraint of degree `≥ 2·target` into virtual constraints
/// of degree in `[target, 2·target)`. Constraints of degree `< 2·target`
/// (including those below `target`) are kept as single virtual nodes.
///
/// # Panics
///
/// Panics if `target == 0`.
pub fn uniformize_left_degrees(b: &BipartiteGraph, target: usize) -> VirtualSplit {
    assert!(target > 0, "target degree must be positive");
    let mut origin = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(b.edge_count());
    for u in 0..b.left_count() {
        let nbrs = b.left_neighbors(u);
        let d = nbrs.len();
        let parts = (d / target).max(1);
        // distribute the d edges over `parts` virtual nodes as evenly as
        // possible: sizes differ by at most one, all in [target, 2·target)
        // when d ≥ 2·target
        let base = d / parts;
        let extra = d % parts;
        let mut offset = 0;
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            let vid = origin.len();
            origin.push(u);
            for &v in &nbrs[offset..offset + size] {
                edges.push((vid, v));
            }
            offset += size;
        }
        debug_assert_eq!(offset, d);
    }
    let graph = BipartiteGraph::from_edges(origin.len(), b.right_count(), &edges)
        .expect("virtual split preserves simplicity");
    VirtualSplit { graph, origin }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;
    use splitgraph::Color;

    #[test]
    fn small_degrees_untouched() {
        let b = generators::complete_bipartite(3, 5); // degrees 5 < 2·4
        let vs = uniformize_left_degrees(&b, 4);
        assert_eq!(vs.graph.left_count(), 3);
        assert_eq!(vs.origin, vec![0, 1, 2]);
        assert_eq!(vs.graph.edge_count(), b.edge_count());
    }

    #[test]
    fn high_degree_splits_into_uniform_parts() {
        let b = generators::complete_bipartite(1, 23); // one constraint, degree 23
        let vs = uniformize_left_degrees(&b, 5);
        // 23/5 = 4 parts of sizes 6, 6, 6, 5
        assert_eq!(vs.graph.left_count(), 4);
        for i in 0..4 {
            let d = vs.graph.left_degree(i);
            assert!((5..10).contains(&d), "virtual degree {d} outside [5, 10)");
            assert_eq!(vs.origin[i], 0);
        }
        assert_eq!(vs.graph.edge_count(), 23);
    }

    #[test]
    fn degrees_end_up_almost_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::erdos_renyi_bipartite(50, 120, 0.4, &mut rng);
        let target = 8;
        let vs = uniformize_left_degrees(&b, target);
        let max = (0..vs.graph.left_count())
            .map(|u| vs.graph.left_degree(u))
            .max()
            .unwrap();
        // constraints of original degree ≥ 2·target now sit below 2·target
        for i in 0..vs.graph.left_count() {
            let orig_deg = b.left_degree(vs.origin[i]);
            if orig_deg >= 2 * target {
                let d = vs.graph.left_degree(i);
                assert!((target..2 * target).contains(&d), "degree {d}");
            }
        }
        assert!(max < 2 * target.max(b.max_left_degree().min(2 * target)));
    }

    #[test]
    fn solutions_pull_back() {
        let b = generators::complete_bipartite(2, 12);
        let vs = uniformize_left_degrees(&b, 3);
        // alternate colors on the variable side: valid for the virtual
        // instance (every virtual node has ≥ 3 consecutive variables)
        let colors: Vec<Color> = (0..12)
            .map(|v| if v % 2 == 0 { Color::Red } else { Color::Blue })
            .collect();
        assert!(is_weak_splitting(&vs.graph, &colors, 0));
        assert!(is_weak_splitting(&b, &colors, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_target() {
        let b = generators::complete_bipartite(1, 1);
        let _ = uniformize_left_degrees(&b, 0);
    }
}
