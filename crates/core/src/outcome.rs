//! Shared result and error types for the splitting algorithms.

use local_runtime::RoundLedger;
use splitgraph::Color;
use std::error::Error;
use std::fmt;

/// A solved weak-splitting instance: the 2-coloring of the variable side
/// plus the round accounting of the pipeline that produced it.
#[derive(Debug, Clone)]
pub struct SplitOutcome {
    /// Color per variable (right-side node).
    pub colors: Vec<Color>,
    /// Measured + charged rounds of every phase.
    pub ledger: RoundLedger,
}

/// Errors raised by the splitting pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitError {
    /// A theorem's precondition does not hold for the instance.
    Precondition {
        /// Which requirement failed, in the paper's notation.
        requirement: String,
        /// The offending measured value.
        actual: String,
    },
    /// A randomized phase failed its postcondition on every attempted seed.
    RandomizedFailure {
        /// Which phase failed.
        phase: String,
        /// Number of seeds attempted.
        attempts: usize,
    },
    /// The derandomized fixer started with `Φ ≥ 1`, so the union bound does
    /// not certify success (the instance is outside the guaranteed regime).
    EstimatorTooLarge {
        /// Initial `Φ` value.
        phi: f64,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::Precondition {
                requirement,
                actual,
            } => {
                write!(
                    f,
                    "precondition violated: need {requirement}, have {actual}"
                )
            }
            SplitError::RandomizedFailure { phase, attempts } => {
                write!(
                    f,
                    "randomized phase '{phase}' failed after {attempts} attempts"
                )
            }
            SplitError::EstimatorTooLarge { phi } => {
                write!(f, "initial pessimistic estimate {phi} is not below 1")
            }
        }
    }
}

impl Error for SplitError {}

/// Converts the fixers' `0/1` multicolors into [`Color`]s (`0` → red).
pub fn to_two_coloring(xs: &[splitgraph::MultiColor]) -> Vec<Color> {
    xs.iter()
        .map(|&x| if x == 0 { Color::Red } else { Color::Blue })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SplitError::Precondition {
            requirement: "δ ≥ 2 log n".into(),
            actual: "δ = 3".into(),
        };
        assert!(e.to_string().contains("δ ≥ 2 log n"));
        let e = SplitError::RandomizedFailure {
            phase: "shattering".into(),
            attempts: 5,
        };
        assert!(e.to_string().contains("5 attempts"));
        let e = SplitError::EstimatorTooLarge { phi: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn two_coloring_conversion() {
        assert_eq!(
            to_two_coloring(&[0, 1, 0]),
            vec![Color::Red, Color::Blue, Color::Red]
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SplitError>();
        assert_send_sync::<SplitOutcome>();
    }
}
