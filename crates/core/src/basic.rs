//! Lemma 2.1: deterministic weak splitting in `O(Δ·r)` rounds for
//! `δ ≥ 2·log n`.
//!
//! The zero-round algorithm is derandomized by the method of conditional
//! expectations ([GHK16, Thm III.1] gives an SLOCAL(2) algorithm), compiled
//! to LOCAL with a proper coloring of the variable square of `B`
//! ([GHK17a, Prop. 3.2]): variables sharing a constraint must not decide
//! simultaneously, so the phases enumerate the square's color classes. The
//! square has maximum degree `< Δ·r`, so the palette — and hence the phase
//! count — is `O(Δ·r)`.
//!
//! The scheduling coloring itself is a cited black box in the paper
//! (\[BEK14a\]: `O(Δr)` colors in `O(Δr + log* n)` rounds); see
//! [`SchedulingMode`] for the two reproduction engines.

use crate::outcome::{to_two_coloring, SplitError, SplitOutcome};
use derand::{phased_fix, ColoringEstimator};
use local_coloring::{color_power, greedy_sequential};
use local_runtime::RoundLedger;
use splitgraph::math::{log_star, weak_splitting_degree_threshold};
use splitgraph::{right_square, BipartiteGraph};

/// How the distance-2 scheduling coloring of Lemma 2.1 is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingMode {
    /// Reference engine for the cited \[BEK14a\] black box: a sequential
    /// greedy coloring with `Δ(B²|_V)+1 = O(Δr)` colors, rounds **charged**
    /// as `Δr + log* n` (the cited complexity, constants 1).
    #[default]
    Reference,
    /// Genuinely distributed engine: Linial + Kuhn–Wattenhofer on the
    /// variable square, rounds **measured** (shape `O(Δr·log(Δr) + log* n)`,
    /// one log factor above the citation; see DESIGN.md).
    Distributed,
}

/// Runs the Lemma 2.1 pipeline with the default (reference) scheduling.
///
/// `n_for_threshold` is the node count entering the `δ ≥ 2·log n`
/// requirement — callers solving a *sub*instance of a larger network (e.g.
/// Theorem 1.2 on shattered components) pass the relevant size.
///
/// # Errors
///
/// Returns [`SplitError::Precondition`] if `δ < 2·log n` and
/// [`SplitError::EstimatorTooLarge`] if the union bound fails to certify
/// the derandomization (impossible when the precondition holds).
pub fn basic_deterministic(
    b: &BipartiteGraph,
    n_for_threshold: usize,
) -> Result<SplitOutcome, SplitError> {
    basic_deterministic_with(b, n_for_threshold, SchedulingMode::default())
}

/// [`basic_deterministic`] with an explicit scheduling engine.
///
/// # Errors
///
/// Same as [`basic_deterministic`].
pub fn basic_deterministic_with(
    b: &BipartiteGraph,
    n_for_threshold: usize,
    mode: SchedulingMode,
) -> Result<SplitOutcome, SplitError> {
    let threshold = weak_splitting_degree_threshold(n_for_threshold);
    let delta = b.min_left_degree();
    if delta < threshold {
        return Err(SplitError::Precondition {
            requirement: format!("δ ≥ 2·log n = {threshold}"),
            actual: format!("δ = {delta}"),
        });
    }
    basic_deterministic_unchecked(b, mode)
}

/// The Lemma 2.1 pipeline without the degree precondition — used by callers
/// that establish `Φ < 1` by other means. Still fails if `Φ ≥ 1`.
///
/// # Errors
///
/// Returns [`SplitError::EstimatorTooLarge`] when the union bound does not
/// certify success.
pub fn basic_deterministic_unchecked(
    b: &BipartiteGraph,
    mode: SchedulingMode,
) -> Result<SplitOutcome, SplitError> {
    let mut ledger = RoundLedger::new();

    // distance-2 scheduling coloring of the variable square (palette O(Δ·r))
    let sq = right_square(b);
    let (scheduling_colors, palette) = match mode {
        SchedulingMode::Reference => {
            let order: Vec<usize> = (0..sq.node_count()).collect();
            let colors = greedy_sequential(&sq, &order);
            let palette = sq.max_degree() as u32 + 1;
            ledger.add_charged(
                "B² coloring (BEK14a: Δr + log* n)",
                (sq.max_degree() + 1) as f64 + log_star(b.node_count().max(2)) as f64,
            );
            (colors, palette)
        }
        SchedulingMode::Distributed => {
            let ids: Vec<u64> = (0..sq.node_count() as u64).collect();
            let out = color_power(&sq, 1, &ids, sq.node_count().max(1) as u64);
            // coloring the square of B costs a factor-2 simulation on B
            ledger.add_measured(
                "B² coloring (Linial + KW, simulated on B)",
                2.0 * out.rounds as f64,
            );
            (out.colors, out.palette)
        }
    };

    let est = ColoringEstimator::monochromatic(b);
    let fix = phased_fix(b, est, &scheduling_colors, palette);
    ledger.add_measured(
        "conditional-expectation phases (2 per color class)",
        fix.rounds as f64,
    );
    if fix.initial_phi >= 1.0 {
        return Err(SplitError::EstimatorTooLarge {
            phi: fix.initial_phi,
        });
    }
    debug_assert!(fix.final_phi < 1.0, "greedy fixing must not increase Φ");
    Ok(SplitOutcome {
        colors: to_two_coloring(&fix.colors),
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;

    #[test]
    fn solves_random_biregular_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        // n = 300: threshold = ⌈2 log 300⌉ = 17
        let b = generators::random_biregular(100, 200, 18, &mut rng).unwrap();
        let out = basic_deterministic(&b, b.node_count()).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
        assert!(out.ledger.measured_total() > 0.0);
        assert!(
            out.ledger.charged_total() > 0.0,
            "reference scheduling is charged"
        );
    }

    #[test]
    fn distributed_mode_matches_reference_validity() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = generators::random_biregular(60, 120, 18, &mut rng).unwrap();
        let reference =
            basic_deterministic_with(&b, b.node_count(), SchedulingMode::Reference).unwrap();
        let distributed =
            basic_deterministic_with(&b, b.node_count(), SchedulingMode::Distributed).unwrap();
        assert!(is_weak_splitting(&b, &reference.colors, 0));
        assert!(is_weak_splitting(&b, &distributed.colors, 0));
        assert_eq!(
            distributed.ledger.charged_total(),
            0.0,
            "fully measured pipeline"
        );
    }

    #[test]
    fn rejects_low_degree_instances() {
        let b = generators::complete_bipartite(50, 4);
        let err = basic_deterministic(&b, b.node_count()).unwrap_err();
        assert!(matches!(err, SplitError::Precondition { .. }));
    }

    #[test]
    fn unchecked_variant_works_when_phi_small() {
        let mut rng = StdRng::seed_from_u64(3);
        // degree 12 < 2 log 360 but Φ = 120·2·2^{-12} ≈ 0.06 < 1
        let b = generators::random_left_regular(120, 240, 12, &mut rng).unwrap();
        let out = basic_deterministic_unchecked(&b, SchedulingMode::Reference).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn unchecked_variant_reports_large_phi() {
        let mut rng = StdRng::seed_from_u64(5);
        // degree 3: Φ = 100·2·2^{-3} = 25 ≥ 1
        let b = generators::random_left_regular(100, 60, 3, &mut rng).unwrap();
        let err = basic_deterministic_unchecked(&b, SchedulingMode::Reference).unwrap_err();
        assert!(matches!(err, SplitError::EstimatorTooLarge { .. }));
    }

    #[test]
    fn rounds_scale_with_delta_r() {
        let mut rng = StdRng::seed_from_u64(8);
        // same n, growing Δ·r: charged + measured rounds must grow
        let small = generators::random_biregular(128, 128, 18, &mut rng).unwrap();
        let big = generators::complete_bipartite(120, 136);
        let rs = basic_deterministic(&small, small.node_count()).unwrap();
        let rb = basic_deterministic(&big, big.node_count()).unwrap();
        assert!(
            rb.ledger.total() > rs.ledger.total(),
            "expected more rounds for larger Δ·r ({} vs {})",
            rb.ledger.total(),
            rs.ledger.total()
        );
    }
}
