//! Theorem 2.7: weak splitting for `δ ≥ 6r` — deterministic in polylog `n`
//! rounds, randomized in polyloglog `n` rounds.
//!
//! When `δ ≥ 2·log n` the generic algorithms apply. Otherwise the paper's
//! pipeline runs: uniformize constraint degrees (`Δ ≤ 2δ`, Section 2.4
//! preprocessing), set `ε = 1/(10Δ)` so that every splitting discrepancy is
//! at most 2, run `⌈log r⌉` iterations of Degree–Rank Reduction II until the
//! rank is exactly 1 (Lemma 2.6), and observe that `δ ≥ 6r` leaves every
//! constraint with at least 2 edges — each constraint then simply picks one
//! remaining neighbor red and one blue, conflict-free because rank 1 means
//! no variable serves two constraints.

use crate::drr2::degree_rank_reduction_ii;
use crate::outcome::{SplitError, SplitOutcome};
use crate::thm12::{theorem12, Theorem12Config};
use crate::thm25::theorem25;
use crate::virtual_split::uniformize_left_degrees;
use crate::zero_round::zero_round_whp;
use degree_split::{DegreeSplitter, Engine, Flavor};
use local_runtime::RoundLedger;
use splitgraph::math::{ceil_log2, weak_splitting_degree_threshold};
use splitgraph::{checks, BipartiteGraph, Color};

/// Deterministic or randomized execution of Theorem 2.7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Deterministic: polylog `n` rounds.
    Deterministic,
    /// Randomized with a master seed: polyloglog `n` rounds.
    Randomized(u64),
}

/// Runs Theorem 2.7.
///
/// # Errors
///
/// Returns [`SplitError::Precondition`] unless `δ ≥ 6r` and `δ ≥ 2`
/// (non-trivial instances), or propagates inner-pipeline errors.
///
/// # Examples
///
/// ```
/// use splitting_core::{theorem27, Variant};
/// use splitgraph::{checks, generators};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// // δ = 12 ≥ 6·r = 12: the skewed regime Theorem 2.7 covers
/// let b = generators::random_biregular(12, 72, 12, &mut rng)?;
/// let out = theorem27(&b, Variant::Deterministic)?;
/// assert!(checks::is_weak_splitting(&b, &out.colors, 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn theorem27(b: &BipartiteGraph, variant: Variant) -> Result<SplitOutcome, SplitError> {
    let delta = b.min_left_degree();
    let rank = b.rank();
    if delta < 6 * rank || delta < 2 {
        return Err(SplitError::Precondition {
            requirement: "δ ≥ 6r and δ ≥ 2".into(),
            actual: format!("δ = {delta}, r = {rank}"),
        });
    }
    let n = b.node_count();
    let threshold = weak_splitting_degree_threshold(n);

    // high-degree regime: the generic algorithms already apply
    if delta >= threshold {
        return match variant {
            Variant::Deterministic => theorem25(b, Flavor::Deterministic).map(|(out, _)| out),
            Variant::Randomized(seed) => zero_round_whp(b, seed, 64),
        };
    }

    // randomized middle regime: Theorem 1.2 handles δ = Ω(log(r·log n))
    if let Variant::Randomized(seed) = variant {
        let cfg = Theorem12Config {
            seed,
            ..Theorem12Config::default()
        };
        if let Ok(out) = theorem12(b, &cfg) {
            return Ok(out);
        }
        // otherwise fall through to the DRR-II route with randomized flavor
    }

    let mut ledger = RoundLedger::new();
    // degree uniformization: Δ ≤ 2δ − 1 afterwards (local, 0 rounds)
    let vs = uniformize_left_degrees(b, delta);
    ledger.add_measured("virtual-node degree uniformization (local)", 0.0);
    let work = &vs.graph;

    let flavor = match variant {
        Variant::Deterministic => Flavor::Deterministic,
        Variant::Randomized(_) => Flavor::Randomized,
    };
    let eps = 1.0 / (10.0 * work.max_left_degree().max(1) as f64);
    let splitter = DegreeSplitter::new(eps, Engine::EulerianOracle, flavor);
    let k = if work.rank() <= 1 {
        0
    } else {
        ceil_log2(work.rank()) as usize
    };
    let reduction = degree_rank_reduction_ii(work, &splitter, k);
    ledger.merge(reduction.ledger);
    let reduced = &reduction.graph;
    debug_assert!(
        reduced.rank() <= 1,
        "Lemma 2.6: rank must be 1 after ⌈log r⌉ iterations"
    );

    // rank 1: every constraint picks one red and one blue neighbor
    let mut colors = vec![None; b.right_count()];
    for u in 0..reduced.left_count() {
        let nbrs = reduced.left_neighbors(u);
        if nbrs.len() < 2 {
            return Err(SplitError::Precondition {
                requirement: "two surviving edges per constraint (δ ≥ 6r gives this)".into(),
                actual: format!("virtual constraint {u} kept {} edges", nbrs.len()),
            });
        }
        debug_assert!(colors[nbrs[0]].is_none() && colors[nbrs[1]].is_none());
        colors[nbrs[0]] = Some(Color::Red);
        colors[nbrs[1]] = Some(Color::Blue);
    }
    ledger.add_measured("final red/blue selection (1 round)", 1.0);
    let colors: Vec<Color> = colors
        .into_iter()
        .map(|c| c.unwrap_or(Color::Red))
        .collect();
    debug_assert!(
        checks::is_weak_splitting(b, &colors, 0),
        "Theorem 2.7 output must be valid"
    );
    Ok(SplitOutcome { colors, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;

    #[test]
    fn low_degree_regime_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        // δ = 12, rank = 2, n = 84: threshold ≈ 13 > 12 → DRR-II route
        let b = generators::random_biregular(12, 72, 12, &mut rng).unwrap();
        assert!(b.min_left_degree() < weak_splitting_degree_threshold(b.node_count()));
        let out = theorem27(&b, Variant::Deterministic).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn low_degree_regime_randomized() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = generators::random_biregular(12, 72, 12, &mut rng).unwrap();
        let out = theorem27(&b, Variant::Randomized(99)).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn high_degree_regime_dispatches() {
        let mut rng = StdRng::seed_from_u64(3);
        // δ = 30 ≥ 2 log(480) ≈ 17.8 and rank 2 ≤ δ/6
        let b = generators::random_biregular(30, 450, 30, &mut rng).unwrap();
        assert!(b.rank() * 6 <= b.min_left_degree());
        let out = theorem27(&b, Variant::Deterministic).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
        let out = theorem27(&b, Variant::Randomized(5)).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn rejects_wrong_regime() {
        let b = generators::complete_bipartite(10, 10); // δ = 10, r = 10
        assert!(matches!(
            theorem27(&b, Variant::Deterministic),
            Err(SplitError::Precondition { .. })
        ));
    }

    #[test]
    fn nonuniform_degrees_are_uniformized() {
        // one huge constraint plus small ones, rank kept low by many variables
        let mut edges = Vec::new();
        for v in 0..60 {
            edges.push((0, v)); // degree-60 constraint
        }
        for u in 1..6 {
            for j in 0..12 {
                edges.push((u, 60 + (u - 1) * 12 + j)); // degree-12 constraints
            }
        }
        let b = BipartiteGraph::from_edges(6, 120, &edges).unwrap();
        assert_eq!(b.rank(), 1);
        let out = theorem27(&b, Variant::Deterministic).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }
}
