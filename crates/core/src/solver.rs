//! Parameter-dispatching weak-splitting façade.
//!
//! Picks the right theorem's pipeline for an instance's `(n, δ, r)`
//! parameters, mirroring the case analysis running through the paper:
//! `δ ≥ 6r` → Theorem 2.7; `δ ≥ 2·log n` → Theorem 2.5 (deterministic) or
//! the zero-round algorithm (randomized); `δ ≥ c·log(r·log n)` →
//! Theorem 1.2 (randomized only). Anything below those regimes is exactly
//! the open territory the paper maps out, and the solver says so.

use crate::outcome::{SplitError, SplitOutcome};
use crate::thm12::{theorem12, Theorem12Config};
use crate::thm25::theorem25;
use crate::thm27::{theorem27, Variant};
use crate::zero_round::zero_round_whp;
use degree_split::Flavor;
use splitgraph::math::weak_splitting_degree_threshold;
use splitgraph::BipartiteGraph;
use std::fmt;

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakSplittingSolver {
    /// Allow randomized pipelines (deterministic-only mode reproduces the
    /// paper's deterministic track).
    pub allow_randomized: bool,
    /// Master seed for randomized pipelines.
    pub seed: u64,
    /// The Theorem 1.2 constant `c`.
    pub thm12_constant: f64,
}

impl Default for WeakSplittingSolver {
    fn default() -> Self {
        WeakSplittingSolver {
            allow_randomized: true,
            seed: 0xD15C0,
            thm12_constant: 3.0,
        }
    }
}

/// Which pipeline the dispatcher chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// Theorem 2.7 (`δ ≥ 6r`).
    Theorem27,
    /// Theorem 2.5 (deterministic, `δ ≥ 2·log n`).
    Theorem25,
    /// Zero-round randomized (`δ ≥ 2·log n`).
    ZeroRound,
    /// Theorem 1.2 (randomized, `δ ≥ c·log(r·log n)`).
    Theorem12,
}

impl Pipeline {
    /// Stable display name (used in provenance records and service logs).
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::Theorem27 => "theorem27",
            Pipeline::Theorem25 => "theorem25",
            Pipeline::ZeroRound => "zero-round",
            Pipeline::Theorem12 => "theorem12",
        }
    }
}

/// The coverage requirement of the dispatcher, in the paper's notation —
/// the single source for every "uncovered regime" error message.
pub const DISPATCH_REQUIREMENT: &str =
    "one of: δ ≥ 6r; δ ≥ 2·log n; randomized and δ ≥ c·log(r·log n)";

/// The `(n, δ, r)` parameters entering the dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegimeParams {
    /// Total node count `n = |U| + |V|`.
    pub n: usize,
    /// Minimum constraint degree `δ`.
    pub delta: usize,
    /// Rank `r` (maximum variable degree).
    pub rank: usize,
}

impl RegimeParams {
    /// Reads the dispatch parameters off an instance.
    pub fn of(b: &BipartiteGraph) -> Self {
        RegimeParams {
            n: b.node_count(),
            delta: b.min_left_degree(),
            rank: b.rank(),
        }
    }
}

impl fmt::Display for RegimeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "δ = {}, r = {}, n = {}", self.delta, self.rank, self.n)
    }
}

/// The one shared regime-dispatch decision, mirroring the case analysis
/// running through the paper: `δ ≥ 6r` → Theorem 2.7; `δ ≥ 2·log n` →
/// Theorem 2.5 (deterministic) or the zero-round algorithm (randomized);
/// `δ ≥ c·log(r·log n)` → Theorem 1.2 (randomized only).
///
/// Both [`WeakSplittingSolver::plan`] and [`WeakSplittingSolver::solve`]
/// (and the `splitting-api` request layer) route through this function, so
/// plan-vs-solve can never disagree about the chosen pipeline.
pub fn decide_pipeline(
    allow_randomized: bool,
    thm12_constant: f64,
    p: RegimeParams,
) -> Option<Pipeline> {
    let RegimeParams { n, delta, rank } = p;
    if delta >= 6 * rank && delta >= 2 {
        return Some(Pipeline::Theorem27);
    }
    if delta >= weak_splitting_degree_threshold(n) {
        return Some(if allow_randomized {
            Pipeline::ZeroRound
        } else {
            Pipeline::Theorem25
        });
    }
    if allow_randomized {
        let req = thm12_constant
            * splitgraph::math::log2(
                ((rank.max(1) as f64) * splitgraph::math::log2(n.max(2))).ceil() as usize + 1,
            );
        if delta as f64 >= req {
            return Some(Pipeline::Theorem12);
        }
    }
    None
}

impl WeakSplittingSolver {
    /// The pipeline the dispatcher would choose for `b`, if any.
    pub fn plan(&self, b: &BipartiteGraph) -> Option<Pipeline> {
        decide_pipeline(
            self.allow_randomized,
            self.thm12_constant,
            RegimeParams::of(b),
        )
    }

    /// Solves `b` with the dispatched pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::Precondition`] when the instance lies outside
    /// every regime the paper covers, or propagates pipeline errors.
    pub fn solve(&self, b: &BipartiteGraph) -> Result<(SplitOutcome, Pipeline), SplitError> {
        let plan = self.plan(b).ok_or_else(|| SplitError::Precondition {
            requirement: DISPATCH_REQUIREMENT.into(),
            actual: RegimeParams::of(b).to_string(),
        })?;
        let out = match plan {
            Pipeline::Theorem27 => {
                let variant = if self.allow_randomized {
                    Variant::Randomized(self.seed)
                } else {
                    Variant::Deterministic
                };
                theorem27(b, variant)?
            }
            Pipeline::Theorem25 => theorem25(b, Flavor::Deterministic).map(|(o, _)| o)?,
            Pipeline::ZeroRound => zero_round_whp(b, self.seed, 32)?,
            Pipeline::Theorem12 => {
                let cfg = Theorem12Config {
                    seed: self.seed,
                    c_constant: self.thm12_constant,
                    ..Theorem12Config::default()
                };
                theorem12(b, &cfg)?
            }
        };
        Ok((out, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;

    #[test]
    fn dispatches_theorem27_for_skewed_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_biregular(12, 72, 12, &mut rng).unwrap();
        let solver = WeakSplittingSolver {
            allow_randomized: false,
            ..Default::default()
        };
        assert_eq!(solver.plan(&b), Some(Pipeline::Theorem27));
        let (out, plan) = solver.solve(&b).unwrap();
        assert_eq!(plan, Pipeline::Theorem27);
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn dispatches_theorem25_deterministically() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = generators::random_biregular(100, 100, 20, &mut rng).unwrap();
        let solver = WeakSplittingSolver {
            allow_randomized: false,
            ..Default::default()
        };
        assert_eq!(solver.plan(&b), Some(Pipeline::Theorem25));
        let (out, _) = solver.solve(&b).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn dispatches_zero_round_when_randomized_allowed() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_biregular(100, 100, 20, &mut rng).unwrap();
        let solver = WeakSplittingSolver::default();
        assert_eq!(solver.plan(&b), Some(Pipeline::ZeroRound));
        let (out, _) = solver.solve(&b).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn dispatches_theorem12_in_the_shattering_window() {
        let mut rng = StdRng::seed_from_u64(7);
        // δ = 24 < 2·log n ≈ 27 but ≥ c·log(r·log n): the Theorem 1.2 window
        let b = generators::random_biregular(1024, 4096, 24, &mut rng).unwrap();
        let solver = WeakSplittingSolver {
            thm12_constant: 1.5,
            ..Default::default()
        };
        assert_eq!(solver.plan(&b), Some(Pipeline::Theorem12));
        let (out, plan) = solver.solve(&b).unwrap();
        assert_eq!(plan, Pipeline::Theorem12);
        assert!(is_weak_splitting(&b, &out.colors, 0));
        // deterministic-only mode has no pipeline for this window
        let det = WeakSplittingSolver {
            allow_randomized: false,
            ..Default::default()
        };
        assert_eq!(det.plan(&b), None);
    }

    #[test]
    fn uncovered_regime_reported() {
        let mut rng = StdRng::seed_from_u64(4);
        // δ = 4: below every regime
        let b = generators::random_biregular(128, 256, 4, &mut rng).unwrap();
        let solver = WeakSplittingSolver::default();
        assert_eq!(solver.plan(&b), None);
        assert!(matches!(
            solver.solve(&b),
            Err(SplitError::Precondition { .. })
        ));
    }
}
