//! # splitting-core — the algorithms of the splitting paper
//!
//! Reproduction of every algorithm in *"On the Complexity of Distributed
//! Splitting Problems"* (Bamberger, Ghaffari, Kuhn, Maus, Uitto; PODC 2019):
//!
//! * [`zero_round_coloring`] — the trivial randomized algorithm (Sec. 2.1);
//! * [`basic_deterministic`] — Lemma 2.1, `O(Δ·r)` rounds;
//! * [`truncated_deterministic`] — Lemma 2.2, `O(r·log n)` rounds;
//! * [`degree_rank_reduction_i`] — Section 2.2 + Lemma 2.4 bound traces;
//! * [`theorem25`] — Theorem 2.5 / 1.1, the deterministic headline result;
//! * [`degree_rank_reduction_ii`] — Section 2.3 + Lemma 2.6;
//! * [`theorem27`] — Theorem 2.7, the `δ ≥ 6r` regime;
//! * [`shatter`] — the Section 2.4 shattering algorithm (LOCAL program);
//! * [`theorem12`] — Theorem 1.2, the randomized headline result;
//! * [`uniformize_left_degrees`] — Section 2.4 virtual-node preprocessing;
//! * [`weak_multicolor_deterministic`] / [`multicolor_splitting_deterministic`]
//!   — the Section 3 multicolor variants;
//! * [`weak_splitting_via_weak_multicolor`] /
//!   [`weak_multicolor_via_multicolor_splitting`] — the Theorems 3.2/3.3
//!   completeness reductions, run forward;
//! * [`sinkless_via_weak_splitting`] — Section 2.5 / Figure 1;
//! * [`theorem52`] / [`theorem53`] — Section 5 high-girth results;
//! * [`slocal_weak_splitting`] — Lemma 3.1's SLOCAL(2) algorithm with the
//!   read radius enforced by the executor;
//! * [`WeakSplittingSolver`] — the parameter-dispatching façade.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod basic;
mod completeness;
mod drr1;
mod drr2;
mod high_girth;
mod lower_bound;
mod multicolor;
mod outcome;
mod shatter;
mod slocal_alg;
mod solver;
mod thm12;
mod thm25;
mod thm27;
mod truncate;
mod virtual_split;
mod zero_round;

pub use basic::{
    basic_deterministic, basic_deterministic_unchecked, basic_deterministic_with, SchedulingMode,
};
pub use completeness::{
    weak_multicolor_via_multicolor_splitting, weak_splitting_via_weak_multicolor, Theorem33Config,
    Theorem33Report,
};
pub use drr1::{degree_rank_reduction_i, DrrIterationStats, DrrReduction};
pub use drr2::{degree_rank_reduction_ii, drr2_iteration, Drr2IterationStats, Drr2Reduction};
pub use high_girth::{lemma51_stats, theorem52, theorem53, GirthScheduling, Lemma51Stats};
pub use lower_bound::{
    corollary211_deterministic_bound, orientation_from_splitting, sinkless_from_instance,
    sinkless_via_weak_splitting, solve_rank2_reference, theorem210_randomized_bound,
    SinklessReduction,
};
pub use multicolor::{
    multicolor_splitting_deterministic, multicolor_splitting_random, theorem33_palette,
    weak_multicolor_deterministic, weak_multicolor_random, weak_multicolor_slocal,
    MulticolorOutcome,
};
pub use outcome::{to_two_coloring, SplitError, SplitOutcome};
pub use shatter::{shatter, shatter_with_probability, ShatterOutcome};
pub use slocal_alg::slocal_weak_splitting;
pub use solver::{
    decide_pipeline, Pipeline, RegimeParams, WeakSplittingSolver, DISPATCH_REQUIREMENT,
};
pub use thm12::{theorem12, theorem12_with_report, Theorem12Config, Theorem12Report};
pub use thm25::{theorem25, theorem25_round_bound, Theorem25Report};
pub use thm27::{theorem27, Variant};
pub use truncate::{truncate_left_degrees, truncated_deterministic};
pub use virtual_split::{uniformize_left_degrees, VirtualSplit};
pub use zero_round::{zero_round_coloring, zero_round_whp};
