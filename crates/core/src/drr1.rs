//! Degree–Rank Reduction I (Section 2.2) and the Lemma 2.4 bounds.
//!
//! Each iteration computes a directed degree splitting of the bipartite
//! graph (viewed as a multigraph over `U ∪ V`) and deletes every edge
//! oriented from the variable side toward the constraint side. Constraint
//! degrees shrink by roughly half per iteration while the rank shrinks at
//! the same rate, so after `k = ⌊log(δ / (12·log n))⌋` iterations the rank
//! is `O(r/δ · log n)` while constraint degrees stay above `2·log n` —
//! Lemma 2.4 makes the tradeoff precise:
//!
//! ```text
//! δ_k > ((1 − ε)/2)^k·δ − 2      r_k < ((1 + ε)/2)^k·r + 3
//! ```

use degree_split::DegreeSplitter;
use local_runtime::RoundLedger;
use splitgraph::{BipartiteGraph, MultiGraph};

/// Parameters and measurements of one DRR-I iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct DrrIterationStats {
    /// Iteration index (1-based, matching Lemma 2.4's `k`).
    pub iteration: usize,
    /// Minimum constraint degree after the iteration.
    pub min_left_degree: usize,
    /// Rank after the iteration.
    pub rank: usize,
    /// Lemma 2.4 lower bound `((1−ε)/2)^k·δ − 2` on the minimum degree.
    pub delta_lower_bound: f64,
    /// Lemma 2.4 upper bound `((1+ε)/2)^k·r + 3` on the rank.
    pub rank_upper_bound: f64,
}

/// Result of running DRR-I.
#[derive(Debug, Clone)]
pub struct DrrReduction {
    /// The residual bipartite graph after `k` iterations.
    pub graph: BipartiteGraph,
    /// Per-iteration measurements against the Lemma 2.4 bounds.
    pub trace: Vec<DrrIterationStats>,
    /// Accumulated rounds of the splitting subroutine calls.
    pub ledger: RoundLedger,
}

/// Views the bipartite graph as a multigraph over `U ∪ V` (left node `u` at
/// index `u`, right node `v` at `left_count + v`), returning the multigraph
/// and, aligned with its edge ids, the original bipartite edges.
fn as_multigraph(b: &BipartiteGraph) -> (MultiGraph, Vec<(usize, usize)>) {
    let edges: Vec<(usize, usize)> = b.edges().collect();
    let endpoints: Vec<(usize, usize)> =
        edges.iter().map(|&(u, v)| (u, b.right_index(v))).collect();
    (MultiGraph::from_endpoints(b.node_count(), endpoints), edges)
}

/// Runs `k` iterations of Degree–Rank Reduction I with accuracy `eps`.
///
/// # Panics
///
/// Panics if `eps` is outside `(0, 1]` (the splitter enforces it).
pub fn degree_rank_reduction_i(
    b: &BipartiteGraph,
    splitter: &DegreeSplitter,
    k: usize,
) -> DrrReduction {
    let delta0 = b.min_left_degree() as f64;
    let rank0 = b.rank() as f64;
    let eps = splitter.eps();
    let n = b.node_count();
    let mut current = b.clone();
    let mut trace = Vec::with_capacity(k);
    let mut ledger = RoundLedger::new();
    for it in 1..=k {
        let (g, edges) = as_multigraph(&current);
        let result = splitter.split(&g, n);
        ledger.merge_prefixed(&format!("DRR-I iteration {it}"), result.ledger);
        // keep exactly the edges oriented toward the variable side
        let kept: Vec<(usize, usize)> = edges
            .iter()
            .enumerate()
            .filter(|&(e, &(_, v))| result.orientation.head(&g, e) == current.right_index(v))
            .map(|(_, &edge)| edge)
            .collect();
        current =
            BipartiteGraph::from_edges_bulk(current.left_count(), current.right_count(), &kept)
                .expect("kept edges stay simple");
        let factor_lo = ((1.0 - eps) / 2.0).powi(it as i32);
        let factor_hi = ((1.0 + eps) / 2.0).powi(it as i32);
        trace.push(DrrIterationStats {
            iteration: it,
            min_left_degree: current.min_left_degree(),
            rank: current.rank(),
            delta_lower_bound: factor_lo * delta0 - 2.0,
            rank_upper_bound: factor_hi * rank0 + 3.0,
        });
    }
    DrrReduction {
        graph: current,
        trace,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degree_split::{Engine, Flavor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    fn splitter(eps: f64) -> DegreeSplitter {
        DegreeSplitter::new(eps, Engine::EulerianOracle, Flavor::Deterministic)
    }

    #[test]
    fn single_iteration_roughly_halves_both_sides() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_biregular(120, 90, 24, &mut rng).unwrap();
        let red = degree_rank_reduction_i(&b, &splitter(0.25), 1);
        let s = &red.trace[0];
        assert!(s.min_left_degree >= 11, "δ₁ = {}", s.min_left_degree);
        assert!(s.rank <= 17, "r₁ = {}", s.rank);
    }

    #[test]
    fn lemma_2_4_bounds_hold_along_the_trace() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = generators::random_biregular(160, 128, 32, &mut rng).unwrap();
        let red = degree_rank_reduction_i(&b, &splitter(0.2), 4);
        for s in &red.trace {
            assert!(
                s.min_left_degree as f64 > s.delta_lower_bound,
                "iteration {}: δ = {} ≤ bound {}",
                s.iteration,
                s.min_left_degree,
                s.delta_lower_bound
            );
            assert!(
                (s.rank as f64) < s.rank_upper_bound,
                "iteration {}: r = {} ≥ bound {}",
                s.iteration,
                s.rank,
                s.rank_upper_bound
            );
        }
    }

    #[test]
    fn oracle_engine_accumulates_charged_rounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_biregular(60, 60, 16, &mut rng).unwrap();
        let red = degree_rank_reduction_i(&b, &splitter(0.3), 3);
        assert_eq!(red.trace.len(), 3);
        assert!(red.ledger.charged_total() > 0.0);
        assert_eq!(red.ledger.measured_total(), 0.0);
        assert_eq!(red.ledger.entries().len(), 3);
    }

    #[test]
    fn walk_engine_measures_rounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = generators::random_biregular(60, 60, 16, &mut rng).unwrap();
        let s = DegreeSplitter::new(0.25, Engine::Walk, Flavor::Deterministic);
        let red = degree_rank_reduction_i(&b, &s, 2);
        assert!(red.ledger.measured_total() > 0.0);
        assert_eq!(red.ledger.charged_total(), 0.0);
        // walk engine is approximate: degrees still shrink near half
        assert!(red.trace[0].min_left_degree >= 5);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let b = generators::complete_bipartite(4, 6);
        let red = degree_rank_reduction_i(&b, &splitter(0.2), 0);
        assert_eq!(red.graph, b);
        assert!(red.trace.is_empty());
        assert_eq!(red.ledger.total(), 0.0);
    }

    #[test]
    fn edges_only_ever_deleted() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = generators::random_biregular(40, 40, 12, &mut rng).unwrap();
        let red = degree_rank_reduction_i(&b, &splitter(0.25), 2);
        for (u, v) in red.graph.edges() {
            assert!(
                b.contains_edge(u, v),
                "edge ({u}, {v}) appeared from nowhere"
            );
        }
    }
}
