//! Section 5: weak splitting in girth-≥10 bipartite graphs.
//!
//! On high-girth instances the shattering events at distinct neighbors of a
//! variable are independent, which upgrades the residual guarantee from
//! "small components" to the *structural* property `δ_H ≥ 6·r_H`
//! (Lemma 5.1) — exactly Theorem 2.7's regime, with no dependence on
//! component sizes. Theorem 5.2 derandomizes the shattering through a
//! coloring of `B⁴` (`O(Δ²r²)` colors dominate the round cost) and
//! Theorem 5.3 keeps it randomized.
//!
//! Substitution note (recorded in DESIGN.md): the paper derandomizes the
//! 1-round shattering via [GHK16] into an SLOCAL(4) algorithm consuming the
//! `B⁴` coloring. We compute that coloring (it dominates the rounds, as in
//! the paper) but replace the SLOCAL estimator pass with seeded shattering
//! whose Lemma 5.1 postcondition `δ_H ≥ 6·r_H` is *verified* and retried —
//! a Las Vegas variant with identical output guarantees and round shape.

use crate::outcome::{SplitError, SplitOutcome};
use crate::shatter::{shatter, ShatterOutcome};
use crate::thm27::{theorem27, Variant};
use local_coloring::color_power;
use local_runtime::RoundLedger;
use splitgraph::{bipartite_girth, checks, BipartiteGraph, Color};

/// Residual statistics of one shattering run — the Lemma 5.1 quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lemma51Stats {
    /// Minimum residual degree over unsatisfied constraints (`None` when
    /// every constraint was satisfied).
    pub delta_h: Option<usize>,
    /// Maximum residual variable degree `r_H`.
    pub rank_h: usize,
    /// Number of unsatisfied constraints.
    pub unsatisfied: usize,
    /// Whether `δ_H ≥ 6·r_H` holds (trivially true with no unsatisfied
    /// constraints).
    pub holds: bool,
}

/// Runs the shattering once and reports the Lemma 5.1 quantities.
pub fn lemma51_stats(b: &BipartiteGraph, seed: u64) -> Lemma51Stats {
    let sh = shatter(b, seed);
    stats_from_shatter(b, &sh)
}

fn stats_from_shatter(b: &BipartiteGraph, sh: &ShatterOutcome) -> Lemma51Stats {
    let delta_h = (0..b.left_count())
        .filter(|&u| !sh.satisfied[u])
        .map(|u| sh.residual.left_degree(u))
        .min();
    let rank_h = sh.residual.rank();
    let unsatisfied = sh.satisfied.iter().filter(|&&s| !s).count();
    let holds = match delta_h {
        None => true,
        Some(d) => d >= 6 * rank_h,
    };
    Lemma51Stats {
        delta_h,
        rank_h,
        unsatisfied,
        holds,
    }
}

/// Scheduling engine for the `B⁴` coloring of Theorem 5.2 (same tradeoff
/// as [`crate::basic::SchedulingMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GirthScheduling {
    /// Sequential greedy on `B⁴`, rounds charged as `Δ(B⁴)+1 + log* n`.
    #[default]
    Reference,
    /// Linial + KW on `B⁴`, rounds measured (×4 simulation overhead).
    Distributed,
}

/// Runs the Theorem 5.2 pipeline (deterministic finish). Set
/// `verify_girth` to certify the input (costs an `O(n·m)` centralized
/// check, recommended in tests).
///
/// # Errors
///
/// [`SplitError::Precondition`] if the girth check fails;
/// [`SplitError::RandomizedFailure`] if no shattering seed satisfies
/// Lemma 5.1 within the attempt budget; inner Theorem 2.7 errors propagate.
pub fn theorem52(
    b: &BipartiteGraph,
    seed: u64,
    verify_girth: bool,
    scheduling: GirthScheduling,
) -> Result<SplitOutcome, SplitError> {
    high_girth_pipeline(b, seed, verify_girth, scheduling, Variant::Deterministic)
}

/// Runs the Theorem 5.3 pipeline (randomized finish; no `B⁴` coloring, the
/// components are handled by the randomized Theorem 2.7).
///
/// # Errors
///
/// As for [`theorem52`].
pub fn theorem53(
    b: &BipartiteGraph,
    seed: u64,
    verify_girth: bool,
) -> Result<SplitOutcome, SplitError> {
    let mut out = high_girth_pipeline(
        b,
        seed,
        verify_girth,
        GirthScheduling::Reference,
        Variant::Randomized(seed ^ 0x9e37_79b9),
    )?;
    // Theorem 5.3 does not pay for the deterministic B⁴ scheduling
    let mut ledger = RoundLedger::new();
    for e in out.ledger.entries() {
        if !e.label.contains("B⁴") {
            match e.kind {
                local_runtime::CostKind::Measured => ledger.add_measured(e.label.clone(), e.rounds),
                local_runtime::CostKind::Charged => ledger.add_charged(e.label.clone(), e.rounds),
            }
        }
    }
    out.ledger = ledger;
    Ok(out)
}

fn high_girth_pipeline(
    b: &BipartiteGraph,
    seed: u64,
    verify_girth: bool,
    scheduling: GirthScheduling,
    finish: Variant,
) -> Result<SplitOutcome, SplitError> {
    if verify_girth {
        if let Some(girth) = bipartite_girth(b) {
            if girth < 10 {
                return Err(SplitError::Precondition {
                    requirement: "girth ≥ 10".into(),
                    actual: format!("girth = {girth}"),
                });
            }
        }
    }
    let mut ledger = RoundLedger::new();

    // the B⁴ scheduling coloring (Theorem 5.2's dominant O(Δ²r²) term)
    if matches!(finish, Variant::Deterministic) {
        match scheduling {
            GirthScheduling::Reference => {
                // Δ(B⁴) < (Δ·r)², and the Las Vegas shattering substitution
                // never consumes the colors, so the palette is charged from
                // the analytic degree bound without materializing B⁴
                let degree_bound = (b.max_left_degree() * b.rank().max(1)).pow(2);
                ledger.add_charged(
                    "B⁴ scheduling coloring (Δ²r² + log* n)",
                    (degree_bound + 1) as f64
                        + splitgraph::math::log_star(b.node_count().max(2)) as f64,
                );
            }
            GirthScheduling::Distributed => {
                let host = b.to_graph();
                let ids: Vec<u64> = (0..host.node_count() as u64).collect();
                let out = color_power(&host, 4, &ids, host.node_count().max(1) as u64);
                ledger.add_measured("B⁴ scheduling coloring (Linial + KW)", out.rounds as f64);
            }
        }
    }

    // shattering until the Lemma 5.1 structural property holds
    const ATTEMPTS: usize = 24;
    let mut chosen: Option<ShatterOutcome> = None;
    for attempt in 0..ATTEMPTS {
        let sh = shatter(b, seed.wrapping_add(attempt as u64));
        let stats = stats_from_shatter(b, &sh);
        ledger.add_measured("shattering (coloring + uncoloring)", sh.rounds as f64);
        if stats.holds {
            chosen = Some(sh);
            break;
        }
    }
    let sh = chosen.ok_or(SplitError::RandomizedFailure {
        phase: "high-girth shattering (Lemma 5.1 postcondition)".into(),
        attempts: ATTEMPTS,
    })?;

    // solve the residual in the Theorem 2.7 regime
    let mut colors: Vec<Option<Color>> = sh.colors.clone();
    let unsat: Vec<usize> = (0..b.left_count()).filter(|&u| !sh.satisfied[u]).collect();
    if !unsat.is_empty() {
        let uncolored: Vec<usize> = (0..b.right_count())
            .filter(|&v| sh.colors[v].is_none())
            .collect();
        let right_local: std::collections::HashMap<usize, usize> =
            uncolored.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut h = BipartiteGraph::new(unsat.len(), uncolored.len());
        for (i, &u) in unsat.iter().enumerate() {
            for &v in sh.residual.left_neighbors(u) {
                h.add_edge(i, right_local[&v])
                    .expect("residual edges stay simple");
            }
        }
        let inner = theorem27(&h, finish)?;
        ledger.merge_prefixed("residual (Theorem 2.7)", inner.ledger);
        for (j, &orig) in uncolored.iter().enumerate() {
            colors[orig] = Some(inner.colors[j]);
        }
    }
    let colors: Vec<Color> = colors
        .into_iter()
        .map(|c| c.unwrap_or(Color::Red))
        .collect();
    debug_assert!(checks::is_weak_splitting(b, &colors, 0));
    Ok(SplitOutcome { colors, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;

    use splitgraph::generators;

    /// Explicit girth-12 incidence instance of the projective plane of
    /// order `q`: constraint degrees `q + 1`, rank 2.
    fn girth_instance(q: u64) -> BipartiteGraph {
        generators::projective_girth12_bipartite(q).unwrap().0
    }

    #[test]
    fn lemma51_holds_on_high_girth_instances() {
        // δ = 24: unsatisfied constraints are dominated by the
        // uncolor-all case (residual degree 24 ≥ 6·r_H = 12)
        let b = girth_instance(23);
        let mut holds = 0;
        for seed in 0..10 {
            if lemma51_stats(&b, seed).holds {
                holds += 1;
            }
        }
        assert!(holds >= 8, "Lemma 5.1 held only {holds}/10 times");
    }

    #[test]
    fn theorem52_end_to_end() {
        let b = girth_instance(23);
        let out = theorem52(&b, 7, true, GirthScheduling::Reference).unwrap();
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        assert!(
            out.ledger.charged_total() > 0.0,
            "B⁴ coloring must be charged"
        );
    }

    #[test]
    fn theorem53_end_to_end() {
        let b = girth_instance(23);
        let out = theorem53(&b, 11, true).unwrap();
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        assert!(
            out.ledger.entries().iter().all(|e| !e.label.contains("B⁴")),
            "randomized variant must not pay for the B⁴ coloring"
        );
    }

    #[test]
    fn girth_verification_rejects_short_cycles() {
        // K_{2,2} has girth 4
        let b = generators::complete_bipartite(6, 6);
        assert!(matches!(
            theorem52(&b, 0, true, GirthScheduling::Reference),
            Err(SplitError::Precondition { .. })
        ));
    }

    #[test]
    fn stats_fields_consistent() {
        let b = girth_instance(13);
        let s = lemma51_stats(&b, 9);
        if s.unsatisfied == 0 {
            assert_eq!(s.delta_h, None);
            assert!(s.holds);
        } else {
            assert!(s.delta_h.is_some());
        }
    }
}
