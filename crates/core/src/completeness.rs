//! The P-RLOCAL-completeness reductions of Section 3, run *forward* as
//! executable pipelines.
//!
//! Completeness means: a deterministic polylog-round algorithm for the
//! relaxed problem would solve weak splitting (and hence everything in
//! P-RLOCAL). The reductions are constructive, so we execute them:
//!
//! * [`weak_splitting_via_weak_multicolor`] (Theorem 3.2): solve C-weak
//!   multicolor splitting, keep for every constraint a set `S(u)` of
//!   `⌈2·log n⌉` distinctly-colored neighbors, and observe that on the
//!   pruned instance `B'` the multicolor classes form a proper distance-2
//!   schedule — the SLOCAL(2) weak-splitting fixer then compiles to `O(C)`
//!   LOCAL rounds.
//! * [`weak_multicolor_via_multicolor_splitting`] (Theorem 3.3): iterate
//!   (C, λ)-multicolor splitting `⌈log_{1/λ}(2·log n)⌉` times on virtual
//!   per-color-class constraints, refining the coloring until every class
//!   holds at most a `1/(2·log n)` fraction of each neighborhood, which
//!   forces at least `2·log n` distinct colors.

use crate::multicolor::{
    multicolor_splitting_deterministic, weak_multicolor_deterministic, MulticolorOutcome,
};
use crate::outcome::{to_two_coloring, SplitError, SplitOutcome};
use derand::{phased_fix, ColoringEstimator};
use local_runtime::RoundLedger;
use splitgraph::math::{ln, log2, weak_multicolor_required_colors};
use splitgraph::{checks, BipartiteGraph, MultiColor};

/// Theorem 3.2 forward: reduces weak splitting on `b` to one C-weak
/// multicolor splitting call plus `O(C)` compiled phases.
///
/// # Errors
///
/// Propagates solver errors; returns [`SplitError::Precondition`] if some
/// constraint sees fewer than `⌈2·log n⌉` distinct colors (i.e., the
/// multicolor solution was invalid for the Definition 1.3 regime) and
/// [`SplitError::EstimatorTooLarge`] if the pruned instance fails the
/// union bound (impossible when `S(u)` selection succeeded).
pub fn weak_splitting_via_weak_multicolor(b: &BipartiteGraph) -> Result<SplitOutcome, SplitError> {
    let n = b.node_count();
    let required = weak_multicolor_required_colors(n);
    let mut ledger = RoundLedger::new();

    // step 1: the relaxed problem
    let mc: MulticolorOutcome = weak_multicolor_deterministic(b)?;
    ledger.merge_prefixed("weak multicolor splitting", mc.ledger);

    // step 2: select S(u) — ⌈2·log n⌉ distinctly-colored neighbors per u
    let mut selected_edges: Vec<(usize, usize)> = Vec::new();
    for u in 0..b.left_count() {
        let mut seen = std::collections::HashSet::new();
        let mut selected = 0usize;
        for &v in b.left_neighbors(u) {
            if seen.insert(mc.colors[v]) {
                selected_edges.push((u, v));
                selected += 1;
                if selected == required {
                    break;
                }
            }
        }
        if selected < required {
            return Err(SplitError::Precondition {
                requirement: format!("{required} distinct colors at every constraint"),
                actual: format!("constraint {u} saw only {selected}"),
            });
        }
    }
    let pruned = BipartiteGraph::from_edges_bulk(b.left_count(), b.right_count(), &selected_edges)
        .expect("subset of simple edges");
    ledger.add_measured("S(u) selection (local)", 0.0);

    // step 3: the multicolor classes schedule the SLOCAL(2) fixer on B'
    let est = ColoringEstimator::monochromatic(&pruned);
    let fix = phased_fix(&pruned, est, &mc.colors, mc.palette);
    ledger.add_measured(
        "weak splitting phases on B' (2 per color)",
        fix.rounds as f64,
    );
    if fix.initial_phi >= 1.0 {
        return Err(SplitError::EstimatorTooLarge {
            phi: fix.initial_phi,
        });
    }
    let colors = to_two_coloring(&fix.colors);
    debug_assert!(checks::is_weak_splitting(&pruned, &colors, 0));
    debug_assert!(checks::is_weak_splitting(b, &colors, required));
    Ok(SplitOutcome { colors, ledger })
}

/// Configuration of the Theorem 3.3 iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem33Config {
    /// Palette bound `C` handed to the (C, λ) solver.
    pub c: u32,
    /// Per-color load fraction `λ`.
    pub lambda: f64,
    /// The constant `α` in the virtual-node degree floor `α·λ·ln n`.
    pub alpha: f64,
}

/// Diagnostics of a Theorem 3.3 reduction run.
#[derive(Debug, Clone)]
pub struct Theorem33Report {
    /// Iterations executed (`⌈log_{1/λ}(2·log n)⌉`).
    pub iterations: usize,
    /// Total colors `C''` of the final refinement.
    pub total_colors: u64,
    /// Max per-class fraction `max_u max_x |class|/deg(u)` after each
    /// iteration.
    pub class_fractions: Vec<f64>,
}

/// Theorem 3.3 forward: builds a C-weak multicolor splitting from iterated
/// (C, λ)-multicolor splitting calls.
///
/// # Errors
///
/// Propagates estimator failures from the inner solver; returns
/// [`SplitError::Precondition`] if `λ > 1/2` would make the refinement
/// diverge or the final coloring is not a valid weak multicolor splitting
/// in the Definition 1.3 sense restricted to the paper's degree regime.
pub fn weak_multicolor_via_multicolor_splitting(
    b: &BipartiteGraph,
    cfg: &Theorem33Config,
) -> Result<(Vec<MultiColor>, Theorem33Report, RoundLedger), SplitError> {
    let n = b.node_count();
    if cfg.lambda <= 0.0 || cfg.lambda >= 1.0 {
        return Err(SplitError::Precondition {
            requirement: "λ ∈ (0, 1)".into(),
            actual: format!("λ = {}", cfg.lambda),
        });
    }
    let target_fraction = 1.0 / (2.0 * log2(n.max(2)));
    let iterations = ((2.0 * log2(n.max(2))).ln() / (1.0 / cfg.lambda).ln())
        .ceil()
        .max(1.0) as usize;
    let floor = (cfg.alpha * cfg.lambda * ln(n.max(2))).ceil().max(2.0) as usize;

    let mut colors: Vec<u64> = vec![0; b.right_count()];
    let mut palette: u64 = 1;
    let mut ledger = RoundLedger::new();
    let mut report = Theorem33Report {
        iterations,
        total_colors: 1,
        class_fractions: Vec::new(),
    };

    for it in 1..=iterations {
        // virtual constraints: one per (original constraint, color class)
        // with at least `floor` members
        let mut virt_edges: Vec<(usize, usize)> = Vec::new();
        let mut virt_count = 0usize;
        for u in 0..b.left_count() {
            let mut classes: std::collections::HashMap<u64, Vec<usize>> =
                std::collections::HashMap::new();
            for &v in b.left_neighbors(u) {
                classes.entry(colors[v]).or_default().push(v);
            }
            for (_, members) in classes {
                if members.len() >= floor {
                    for v in members {
                        virt_edges.push((virt_count, v));
                    }
                    virt_count += 1;
                }
            }
        }
        if virt_count == 0 {
            break; // every class is already below the floor
        }
        let h = BipartiteGraph::from_edges(virt_count, b.right_count(), &virt_edges)
            .expect("virtual instance edges are simple");
        let inner = multicolor_splitting_deterministic(&h, cfg.c, cfg.lambda)?;
        ledger.merge_prefixed(&format!("iteration {it} (C, λ)-splitting"), inner.ledger);
        let c_prime = inner.palette as u64;
        for (color, &refined) in colors.iter_mut().zip(&inner.colors) {
            *color = *color * c_prime + refined as u64;
        }
        palette *= c_prime;
        report.class_fractions.push(max_class_fraction(b, &colors));
    }
    report.total_colors = palette;

    // validity: classes end at size ≤ max(λ^i·d, floor) with
    // λ^i ≤ 1/(2·log n), so any constraint of degree ≥ 2·log n · floor
    // sees ≥ min(2·log n, d/floor) = 2·log n distinct colors
    let _ = target_fraction;
    let out: Vec<MultiColor> = compress_palette(&colors);
    let required = weak_multicolor_required_colors(n);
    let degree_needed = required * floor;
    let violations = checks::weak_multicolor_violations(b, &out, degree_needed, required);
    if !violations.is_empty() {
        return Err(SplitError::Precondition {
            requirement: format!("{required} distinct colors at high-degree constraints"),
            actual: format!("{} constraints below target", violations.len()),
        });
    }
    Ok((out, report, ledger))
}

/// Largest per-class neighborhood fraction over all constraints.
fn max_class_fraction(b: &BipartiteGraph, colors: &[u64]) -> f64 {
    let mut worst: f64 = 0.0;
    for u in 0..b.left_count() {
        let d = b.left_degree(u);
        if d == 0 {
            continue;
        }
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for &v in b.left_neighbors(u) {
            *counts.entry(colors[v]).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        worst = worst.max(max as f64 / d as f64);
    }
    worst
}

/// Renames the (sparse, possibly large) refined colors into a dense
/// `0..k` palette — distinctness is all Definition 1.3 cares about.
fn compress_palette(colors: &[u64]) -> Vec<MultiColor> {
    let mut map: std::collections::HashMap<u64, MultiColor> = std::collections::HashMap::new();
    colors
        .iter()
        .map(|&c| {
            let next = map.len() as MultiColor;
            *map.entry(c).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn theorem32_reduction_end_to_end() {
        let mut rng = StdRng::seed_from_u64(1);
        // n = 2176, degrees deep in the Def 1.3 regime (c > 1 headroom)
        let b = generators::random_left_regular(128, 2048, 1024, &mut rng).unwrap();
        let out = weak_splitting_via_weak_multicolor(&b).unwrap();
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        assert!(out.ledger.measured_total() > 0.0);
    }

    #[test]
    fn theorem32_rejects_low_degree() {
        let b = generators::complete_bipartite(100, 6);
        assert!(weak_splitting_via_weak_multicolor(&b).is_err());
    }

    #[test]
    fn theorem33_reduction_refines_classes() {
        let mut rng = StdRng::seed_from_u64(2);
        // dense instance: degrees 1536 ≥ β·ln² n (the paper's regime)
        let b = generators::random_left_regular(128, 3072, 1536, &mut rng).unwrap();
        let cfg = Theorem33Config {
            c: 16,
            lambda: 0.5,
            alpha: 16.0,
        };
        let (colors, report, _ledger) = weak_multicolor_via_multicolor_splitting(&b, &cfg).unwrap();
        assert_eq!(colors.len(), 3072);
        assert!(report.iterations >= 3);
        // fractions must decay roughly like λ^i until hitting the floor
        for w in report.class_fractions.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "fractions must not increase: {w:?}");
        }
        let n = b.node_count();
        let required = weak_multicolor_required_colors(n);
        // high-degree constraints see many colors
        let distinct_min = (0..b.left_count())
            .map(|u| {
                let mut s = std::collections::HashSet::new();
                for &v in b.left_neighbors(u) {
                    s.insert(colors[v]);
                }
                s.len()
            })
            .min()
            .unwrap();
        assert!(
            distinct_min >= required,
            "min distinct colors {distinct_min} < required {required}"
        );
    }

    #[test]
    fn theorem33_rejects_bad_lambda() {
        let b = generators::complete_bipartite(4, 4);
        let cfg = Theorem33Config {
            c: 8,
            lambda: 1.0,
            alpha: 1.0,
        };
        assert!(weak_multicolor_via_multicolor_splitting(&b, &cfg).is_err());
    }

    #[test]
    fn compress_palette_preserves_distinctness() {
        let colors = vec![100, 7, 100, 3, 7];
        let out = compress_palette(&colors);
        assert_eq!(out[0], out[2]);
        assert_eq!(out[1], out[4]);
        assert_ne!(out[0], out[1]);
        assert_ne!(out[3], out[0]);
    }
}
