//! The trivial zero-round randomized algorithm (Section 2.1).
//!
//! Each variable colors itself red or blue uniformly at random without any
//! communication. A union bound shows that for `δ ≥ 2·log n` every
//! constraint sees both colors with probability at least `1 − 2/n` — the
//! starting point of every derandomization in the paper.

use crate::outcome::{SplitError, SplitOutcome};
use local_runtime::{NodeRngs, RoundLedger};
use rand::RngExt;
use splitgraph::math::weak_splitting_degree_threshold;
use splitgraph::{checks, BipartiteGraph, Color};

/// Runs the zero-round algorithm once with the given seed. No validity
/// guarantee — callers check, as a LOCAL checker would.
pub fn zero_round_coloring(b: &BipartiteGraph, seed: u64) -> SplitOutcome {
    let rngs = NodeRngs::new(seed);
    let colors: Vec<Color> = (0..b.right_count())
        .map(|v| Color::from_bool(rngs.rng(v, 0).random_bool(0.5)))
        .collect();
    let mut ledger = RoundLedger::new();
    ledger.add_measured("zero-round random coloring", 0.0);
    SplitOutcome { colors, ledger }
}

/// Zero-round algorithm with verification and seed retry (a Las Vegas
/// wrapper): requires the `δ ≥ 2·log n` regime in which the failure
/// probability is below `2/n`.
///
/// # Errors
///
/// Returns [`SplitError::Precondition`] when `δ < 2·log n`, and
/// [`SplitError::RandomizedFailure`] if `attempts` seeds all fail (has
/// probability `≤ (2/n)^attempts` in the valid regime).
pub fn zero_round_whp(
    b: &BipartiteGraph,
    seed: u64,
    attempts: usize,
) -> Result<SplitOutcome, SplitError> {
    let n = b.node_count();
    let threshold = weak_splitting_degree_threshold(n);
    let delta = b.min_left_degree();
    if delta < threshold {
        return Err(SplitError::Precondition {
            requirement: format!("δ ≥ 2·log n = {threshold}"),
            actual: format!("δ = {delta}"),
        });
    }
    for i in 0..attempts {
        let out = zero_round_coloring(b, seed.wrapping_add(i as u64));
        if checks::is_weak_splitting(b, &out.colors, 0) {
            return Ok(out);
        }
    }
    Err(SplitError::RandomizedFailure {
        phase: "zero-round coloring".into(),
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn zero_round_uses_zero_rounds() {
        let b = generators::complete_bipartite(2, 8);
        let out = zero_round_coloring(&b, 1);
        assert_eq!(out.colors.len(), 8);
        assert_eq!(out.ledger.total(), 0.0);
    }

    #[test]
    fn zero_round_is_seed_deterministic() {
        let b = generators::complete_bipartite(3, 20);
        let a = zero_round_coloring(&b, 9).colors;
        let c = zero_round_coloring(&b, 9).colors;
        assert_eq!(a, c);
        let d = zero_round_coloring(&b, 10).colors;
        assert_ne!(a, d);
    }

    #[test]
    fn whp_variant_succeeds_in_regime() {
        let mut rng = StdRng::seed_from_u64(2);
        // n = 160, 2 log n ≈ 14.6 < 20
        let b = generators::random_left_regular(40, 120, 20, &mut rng).unwrap();
        let out = zero_round_whp(&b, 7, 10).unwrap();
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn whp_variant_rejects_low_degree() {
        let b = generators::complete_bipartite(40, 3); // δ = 3 < 2 log 43
        let err = zero_round_whp(&b, 7, 10).unwrap_err();
        assert!(matches!(err, SplitError::Precondition { .. }));
    }

    #[test]
    fn empirical_failure_rate_matches_union_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        // δ = 16 = 2 log(256): failure probability ≤ 2·|U|/2^16 ≈ 0.002
        let b = generators::random_left_regular(64, 192, 16, &mut rng).unwrap();
        let failures = (0..200)
            .filter(|&s| {
                let out = zero_round_coloring(&b, s);
                !checks::is_weak_splitting(&b, &out.colors, 0)
            })
            .count();
        assert!(failures <= 4, "too many failures: {failures}/200");
    }
}
