//! Theorem 2.5 (the precise form of Theorem 1.1): deterministic weak
//! splitting in `O(r/δ·log² n + log³ n·(log log n)^1.1)` rounds for
//! `δ ≥ 2·log n`.
//!
//! Pipeline exactly as in the paper's proof: if `δ ≤ 48·log n`, run
//! Lemma 2.2 directly (`O(r·log n) = O(r/δ·log² n)`). Otherwise run
//! `k = ⌊log(δ/(12·log n))⌋` iterations of Degree–Rank Reduction I with
//! accuracy `ε = min{1/k, 1/3}`, which brings the rank down to
//! `O(r/δ·log n)` while keeping `δ ≥ 2·log n`, then finish with Lemma 2.2.
//!
//! Both branches bottom out in the incremental conditional-expectation
//! engine (`derand::phased_fix` via Lemma 2.1), so the whole pipeline is
//! deterministic down to the bit level: identical inputs yield identical
//! colorings. The `pipeline` benchmark (`exp_pipeline`) tracks both the
//! small-degree and the DRR branch end to end.

use crate::drr1::{degree_rank_reduction_i, DrrIterationStats};
use crate::outcome::{SplitError, SplitOutcome};
use crate::truncate::truncated_deterministic;
use degree_split::{DegreeSplitter, Engine, Flavor};
use local_runtime::RoundLedger;
use splitgraph::math::{log2, weak_splitting_degree_threshold};
use splitgraph::{checks, BipartiteGraph};

/// The paper's predicted round bound `r/δ·log² n + log³ n·(log log n)^1.1`
/// (constants 1), for experiment tables.
pub fn theorem25_round_bound(n: usize, delta: usize, rank: usize) -> f64 {
    let n = n.max(4) as f64;
    let log_n = n.log2();
    rank as f64 / delta.max(1) as f64 * log_n * log_n
        + log_n.powi(3) * log_n.log2().max(1.0).powf(1.1)
}

/// Diagnostics of a Theorem 2.5 run.
#[derive(Debug, Clone)]
pub struct Theorem25Report {
    /// Iterations of DRR-I executed (`0` when Lemma 2.2 ran directly).
    pub drr_iterations: usize,
    /// Accuracy used for the degree splitting.
    pub eps: f64,
    /// DRR-I trace (empty when Lemma 2.2 ran directly).
    pub trace: Vec<DrrIterationStats>,
    /// Rank of the reduced instance handed to Lemma 2.2.
    pub reduced_rank: usize,
    /// Minimum constraint degree of the reduced instance.
    pub reduced_delta: usize,
}

/// Runs Theorem 2.5 and returns the splitting plus diagnostics.
///
/// # Errors
///
/// Returns [`SplitError::Precondition`] if `δ < 2·log n`.
///
/// # Examples
///
/// ```
/// use splitting_core::theorem25;
/// use splitgraph::{checks, generators};
/// use degree_split::Flavor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let b = generators::random_biregular(100, 100, 20, &mut rng)?;
/// let (out, report) = theorem25(&b, Flavor::Deterministic)?;
/// assert!(checks::is_weak_splitting(&b, &out.colors, 0));
/// assert_eq!(report.drr_iterations, 0); // δ ≤ 48·log n: Lemma 2.2 path
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn theorem25(
    b: &BipartiteGraph,
    flavor: Flavor,
) -> Result<(SplitOutcome, Theorem25Report), SplitError> {
    let n = b.node_count();
    let threshold = weak_splitting_degree_threshold(n);
    let delta = b.min_left_degree();
    if delta < threshold {
        return Err(SplitError::Precondition {
            requirement: format!("δ ≥ 2·log n = {threshold}"),
            actual: format!("δ = {delta}"),
        });
    }
    let log_n = log2(n.max(2));

    // small-degree regime: Lemma 2.2 is already within budget
    if (delta as f64) <= 48.0 * log_n {
        let out = truncated_deterministic(b, n)?;
        let report = Theorem25Report {
            drr_iterations: 0,
            eps: 0.0,
            trace: Vec::new(),
            reduced_rank: b.rank(),
            reduced_delta: delta,
        };
        return Ok((out, report));
    }

    let k = (delta as f64 / (12.0 * log_n)).log2().floor() as usize;
    debug_assert!(k >= 1, "δ > 48·log n implies at least one iteration");
    let eps = (1.0 / k as f64).min(1.0 / 3.0);
    let splitter = DegreeSplitter::new(eps, Engine::EulerianOracle, flavor);
    let reduction = degree_rank_reduction_i(b, &splitter, k);
    let reduced = reduction.graph;
    let reduced_delta = reduced.min_left_degree();
    let reduced_rank = reduced.rank();
    debug_assert!(
        reduced_delta >= threshold,
        "Lemma 2.4 guarantees δ̄ ≥ 2·log n (got {reduced_delta} < {threshold})"
    );

    let mut ledger = RoundLedger::new();
    ledger.merge(reduction.ledger);
    let inner = truncated_deterministic(&reduced, n)?;
    ledger.merge_prefixed("Lemma 2.2 on reduced instance", inner.ledger);

    // a weak splitting of the reduced (edge-subset) instance is one of B
    debug_assert!(checks::is_weak_splitting(b, &inner.colors, threshold));
    let report = Theorem25Report {
        drr_iterations: k,
        eps,
        trace: reduction.trace,
        reduced_rank,
        reduced_delta,
    };
    Ok((
        SplitOutcome {
            colors: inner.colors,
            ledger,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;

    #[test]
    fn small_degree_regime_uses_lemma22() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_biregular(120, 100, 20, &mut rng).unwrap();
        let (out, report) = theorem25(&b, Flavor::Deterministic).unwrap();
        assert_eq!(report.drr_iterations, 0);
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn large_degree_regime_runs_drr() {
        // K_{64,512}: n = 576, δ = 512 > 48·log n ≈ 440, rank 64
        let b = generators::complete_bipartite(64, 512);
        let (out, report) = theorem25(&b, Flavor::Deterministic).unwrap();
        assert!(report.drr_iterations >= 1, "expected DRR iterations");
        assert!(report.reduced_rank < b.rank());
        assert!(is_weak_splitting(&b, &out.colors, 0));
        assert!(
            out.ledger.charged_total() > 0.0,
            "oracle splitting must be charged"
        );
    }

    #[test]
    fn pipeline_is_bit_deterministic() {
        // the incremental fixer engine underneath must not introduce any
        // run-to-run nondeterminism in either regime
        let mut rng = StdRng::seed_from_u64(21);
        let small = generators::random_biregular(120, 100, 20, &mut rng).unwrap();
        let dense = generators::complete_bipartite(64, 512);
        for b in [&small, &dense] {
            let (a, _) = theorem25(b, Flavor::Deterministic).unwrap();
            let (c, _) = theorem25(b, Flavor::Deterministic).unwrap();
            assert_eq!(a.colors, c.colors);
            assert_eq!(a.ledger.total(), c.ledger.total());
        }
    }

    #[test]
    fn rejects_below_threshold() {
        let b = generators::complete_bipartite(300, 10);
        assert!(matches!(
            theorem25(&b, Flavor::Deterministic),
            Err(SplitError::Precondition { .. })
        ));
    }

    #[test]
    fn round_bound_formula_shape() {
        // doubling r doubles the first term
        let a = theorem25_round_bound(1 << 12, 64, 64);
        let b2 = theorem25_round_bound(1 << 12, 64, 128);
        assert!(b2 > a);
        // the additive polylog term dominates for tiny r/δ
        let c = theorem25_round_bound(1 << 12, 4096, 2);
        assert!(c > 0.0);
    }

    #[test]
    fn randomized_flavor_charges_fewer_rounds() {
        let b = generators::complete_bipartite(64, 512);
        let (det, _) = theorem25(&b, Flavor::Deterministic).unwrap();
        let (ran, _) = theorem25(&b, Flavor::Randomized).unwrap();
        assert!(ran.ledger.charged_total() < det.ledger.charged_total());
    }
}
