//! Degree–Rank Reduction II (Section 2.3) and Lemma 2.6.
//!
//! Unlike DRR-I, this reduction never lets a variable lose all its edges:
//! each variable pairs its neighbors `(u₁,u₂), (u₃,u₄), …`, every pair
//! becomes an edge of a multigraph `G` on the constraint side with the
//! variable as its *corresponding node*, and a directed degree splitting of
//! `G` decides which half of each pair survives — if the pair-edge is
//! directed `u → ū`, the variable keeps its edge to the tail `u` and drops
//! the edge to the head `ū`. A variable of degree `d` therefore keeps
//! exactly `⌈d/2⌉` edges, so after `⌈log r⌉` iterations the rank is exactly
//! 1 (Lemma 2.6), while constraint degrees shrink by at most half plus the
//! splitting discrepancy per iteration.

use degree_split::DegreeSplitter;
use local_runtime::RoundLedger;
use splitgraph::{BipartiteGraph, MultiGraph};

/// Per-iteration measurements for Lemma 2.6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drr2IterationStats {
    /// Iteration index (1-based).
    pub iteration: usize,
    /// Rank after the iteration.
    pub rank: usize,
    /// Minimum constraint degree after the iteration.
    pub min_left_degree: usize,
}

/// Result of running DRR-II.
#[derive(Debug, Clone)]
pub struct Drr2Reduction {
    /// The residual bipartite graph.
    pub graph: BipartiteGraph,
    /// Per-iteration trace.
    pub trace: Vec<Drr2IterationStats>,
    /// Accumulated splitting rounds.
    pub ledger: RoundLedger,
}

/// One iteration of DRR-II: pair, split, delete.
///
/// Exposed separately for the `lem26` experiment.
pub fn drr2_iteration(
    b: &BipartiteGraph,
    splitter: &DegreeSplitter,
    n_for_charge: usize,
) -> (BipartiteGraph, RoundLedger) {
    // build the pairing multigraph on U; remember each edge's variable and
    // its (tail-endpoint, head-endpoint) bipartite edges
    let mut g = MultiGraph::new(b.left_count());
    let mut corresponding: Vec<(usize, usize, usize)> = Vec::new(); // (v, u_i, u_j)
    for v in 0..b.right_count() {
        let nbrs = b.right_neighbors(v);
        for pair in nbrs.chunks_exact(2) {
            g.add_edge(pair[0], pair[1]);
            corresponding.push((v, pair[0], pair[1]));
        }
    }
    let result = splitter.split(&g, n_for_charge);
    // delete the bipartite edge toward each pair-edge's head
    let mut next = b.clone();
    for (e, &(v, _, _)) in corresponding.iter().enumerate() {
        let head = result.orientation.head(&g, e);
        let removed = next.remove_edge(head, v);
        debug_assert!(removed, "pair edge endpoints must be neighbors of v");
    }
    (next, result.ledger)
}

/// Runs `k` iterations of DRR-II.
pub fn degree_rank_reduction_ii(
    b: &BipartiteGraph,
    splitter: &DegreeSplitter,
    k: usize,
) -> Drr2Reduction {
    let n = b.node_count();
    let mut current = b.clone();
    let mut trace = Vec::with_capacity(k);
    let mut ledger = RoundLedger::new();
    for it in 1..=k {
        let (next, inner) = drr2_iteration(&current, splitter, n);
        ledger.merge_prefixed(&format!("DRR-II iteration {it}"), inner);
        current = next;
        trace.push(Drr2IterationStats {
            iteration: it,
            rank: current.rank(),
            min_left_degree: current.min_left_degree(),
        });
    }
    Drr2Reduction {
        graph: current,
        trace,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degree_split::{Engine, Flavor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;
    use splitgraph::math::ceil_log2;

    fn splitter_for(b: &BipartiteGraph) -> DegreeSplitter {
        // the Theorem 2.7 choice ε = 1/(10Δ): ε·deg < 1 at every node
        let eps = 1.0 / (10.0 * b.max_left_degree().max(1) as f64);
        DegreeSplitter::new(eps, Engine::EulerianOracle, Flavor::Deterministic)
    }

    #[test]
    fn ranks_halve_with_ceiling() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_biregular(60, 40, 18, &mut rng).unwrap(); // rank 27
        let s = splitter_for(&b);
        let red = degree_rank_reduction_ii(&b, &s, 1);
        assert_eq!(red.trace[0].rank, 14, "⌈27/2⌉ = 14");
    }

    #[test]
    fn lemma_2_6_rank_reaches_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for (l, r, d) in [(60usize, 40usize, 18usize), (48, 36, 12), (80, 16, 10)] {
            let b = generators::random_biregular(l, r, d, &mut rng).unwrap();
            let k = ceil_log2(b.rank().max(1)) as usize;
            let s = splitter_for(&b);
            let red = degree_rank_reduction_ii(&b, &s, k);
            assert_eq!(
                red.graph.rank(),
                1,
                "rank after ⌈log r⌉ = {k} iterations on rank {}",
                b.rank()
            );
        }
    }

    #[test]
    fn no_variable_ever_orphaned() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_biregular(64, 48, 12, &mut rng).unwrap();
        let s = splitter_for(&b);
        let red = degree_rank_reduction_ii(&b, &s, 8);
        for v in 0..red.graph.right_count() {
            assert!(
                red.graph.right_degree(v) >= 1,
                "variable {v} lost every edge"
            );
        }
    }

    #[test]
    fn constraint_degrees_shrink_at_most_half_plus_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = generators::random_biregular(50, 40, 16, &mut rng).unwrap();
        let s = splitter_for(&b);
        let (next, _) = drr2_iteration(&b, &s, b.node_count());
        for u in 0..b.left_count() {
            let before = b.left_degree(u);
            let after = next.left_degree(u);
            // with ε·deg < 1 the splitting discrepancy is ≤ 2, so a node
            // keeps at least (before − 2)/2 ≈ before/2 − 1 edges
            assert!(
                after as f64 >= before as f64 / 2.0 - 1.0,
                "constraint {u}: {before} → {after}"
            );
            assert!(after <= before);
        }
    }

    #[test]
    fn theorem27_regime_keeps_degree_two() {
        // δ ≥ 6r: after rank reaches 1, every constraint keeps ≥ 2 edges
        let mut rng = StdRng::seed_from_u64(5);
        let b = generators::random_biregular(24, 36, 12, &mut rng).unwrap(); // rank 8, δ = 12...
                                                                             // rank = 24·12/36 = 8 > δ/6 = 2: not the regime; build one that is:
        let b2 = generators::random_biregular(12, 72, 12, &mut rng).unwrap(); // rank 2, δ = 12 ≥ 6·2
        assert!(b2.min_left_degree() >= 6 * b2.rank());
        let s = splitter_for(&b2);
        let k = ceil_log2(b2.rank()) as usize;
        let red = degree_rank_reduction_ii(&b2, &s, k);
        assert_eq!(red.graph.rank(), 1);
        for u in 0..red.graph.left_count() {
            assert!(
                red.graph.left_degree(u) >= 2,
                "constraint {u} kept {} < 2 edges",
                red.graph.left_degree(u)
            );
        }
        let _ = b;
    }

    #[test]
    fn zero_iterations_identity() {
        let b = generators::complete_bipartite(3, 4);
        let s = splitter_for(&b);
        let red = degree_rank_reduction_ii(&b, &s, 0);
        assert_eq!(red.graph, b);
    }
}
