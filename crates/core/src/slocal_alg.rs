//! Lemma 3.1: weak splitting has a deterministic SLOCAL(2) algorithm.
//!
//! The conditional-expectation fixer reads, when processing a variable, the
//! states of its constraints (distance 1) and of their already-decided
//! variables (distance 2) — nothing else. Running it through
//! [`local_runtime::run_slocal`], whose views *panic* on any read outside
//! the declared radius, certifies the radius claim operationally: if this
//! function completes, the algorithm provably touched only 2-hop state.
//! The output is cross-validated (bit-identical) against
//! [`derand::sequential_fix`].

use crate::outcome::{SplitError, SplitOutcome};
use local_runtime::{run_slocal, RoundLedger};
use splitgraph::{BipartiteGraph, Color};

/// Per-node SLOCAL state: variables commit a color, constraints stay inert
/// (their "state" is derivable from their variables, as in the SLOCAL
/// formalism where reads inspect the neighborhood's memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum State {
    /// Not yet processed (or a constraint node).
    #[default]
    Undecided,
    /// A committed variable color.
    Decided(Color),
}

/// Runs the Lemma 3.1 SLOCAL(2) weak-splitting algorithm over the variables
/// in index order, with the executor enforcing the radius-2 read bound.
///
/// # Errors
///
/// Returns [`SplitError::EstimatorTooLarge`] if the union bound does not
/// certify the instance (`Φ = Σ_u 2·2^{-deg(u)} ≥ 1`); Lemma 3.1's
/// precondition `deg(u) ≥ 2·log n` always certifies it.
pub fn slocal_weak_splitting(b: &BipartiteGraph) -> Result<SplitOutcome, SplitError> {
    let initial_phi: f64 = (0..b.left_count())
        .map(|u| 2.0 * 0.5f64.powi(b.left_degree(u) as i32))
        .sum();
    if initial_phi >= 1.0 {
        return Err(SplitError::EstimatorTooLarge { phi: initial_phi });
    }

    let g = b.to_graph();
    let left = b.left_count();
    // process variables in index order; constraints are processed trivially
    // first so the permutation covers every node of the host graph
    let order: Vec<usize> = (0..left).chain(left..g.node_count()).collect();
    let states = run_slocal(
        &g,
        &order,
        2,
        vec![State::Undecided; g.node_count()],
        |v, view| {
            if v < left {
                return State::Undecided; // constraints hold no output
            }
            // greedy choice: for each candidate color, sum φ'_u over the
            // adjacent constraints, reading only radius-2 state
            let mut best = Color::Red;
            let mut best_score = f64::INFINITY;
            for cand in Color::both() {
                let mut score = 0.0;
                for &u in view.graph().neighbors(v) {
                    // u is a constraint (distance 1); its variables are at
                    // distance 2 from v
                    let mut fixed_red = 0i32;
                    let mut fixed_blue = 0i32;
                    let mut unfixed = 0i32;
                    for &w in view.graph().neighbors(u) {
                        match view.state(w) {
                            State::Decided(Color::Red) => fixed_red += 1,
                            State::Decided(Color::Blue) => fixed_blue += 1,
                            State::Undecided => unfixed += 1,
                        }
                    }
                    // hypothetically commit the candidate
                    let (fr, fb) = match cand {
                        Color::Red => (fixed_red + 1, fixed_blue),
                        Color::Blue => (fixed_red, fixed_blue + 1),
                    };
                    let m = unfixed - 1;
                    let missing = f64::from(u8::from(fr == 0)) + f64::from(u8::from(fb == 0));
                    score += 0.5f64.powi(m) * missing;
                }
                if score < best_score {
                    best_score = score;
                    best = cand;
                }
            }
            State::Decided(best)
        },
    );

    let colors: Vec<Color> = states[left..]
        .iter()
        .map(|s| match s {
            State::Decided(c) => *c,
            State::Undecided => Color::Red, // isolated variables
        })
        .collect();
    let mut ledger = RoundLedger::new();
    ledger.add_measured(
        "SLOCAL(2) pass (sequential; radius enforced by executor)",
        0.0,
    );
    Ok(SplitOutcome { colors, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use derand::{sequential_fix, ColoringEstimator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;

    #[test]
    fn radius_two_suffices_and_output_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_left_regular(80, 160, 14, &mut rng).unwrap();
        // completing at all certifies the SLOCAL(2) claim (the executor
        // panics on radius violations)
        let out = slocal_weak_splitting(&b).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn matches_the_incremental_fixer_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = generators::random_left_regular(50, 100, 12, &mut rng).unwrap();
        let slocal = slocal_weak_splitting(&b).unwrap();
        let order: Vec<usize> = (0..b.right_count()).collect();
        let fix = sequential_fix(&b, ColoringEstimator::monochromatic(&b), &order);
        assert_eq!(slocal.colors, crate::outcome::to_two_coloring(&fix.colors));
    }

    #[test]
    fn rejects_uncertified_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_left_regular(100, 60, 3, &mut rng).unwrap();
        assert!(matches!(
            slocal_weak_splitting(&b),
            Err(SplitError::EstimatorTooLarge { .. })
        ));
    }

    #[test]
    fn handles_isolated_variables() {
        // one constraint over 12 of 14 variables: two variables isolated
        let edges: Vec<(usize, usize)> = (0..12).map(|v| (0, v)).collect();
        let b = BipartiteGraph::from_edges(1, 14, &edges).unwrap();
        let out = slocal_weak_splitting(&b).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
        assert_eq!(out.colors.len(), 14);
    }
}
