//! Section 2.5 / Figure 1: the reduction from sinkless orientation to weak
//! splitting, and the Theorem 2.10 lower-bound family.
//!
//! Given `G` with `δ_G ≥ 5` and unique IDs, the construction of
//! [`splitgraph::generators::sinkless_instance`] yields a rank-2 instance
//! `B` with `δ_B ≥ ⌈δ_G/2⌉ ≥ 3`. Any weak splitting of `B` orients `G`
//! sinklessly: a red edge points from the smaller toward the larger ID, a
//! blue edge the other way, so every node — which sees both colors on its
//! majority side — obtains an outgoing edge.
//!
//! Because Theorem 2.10 proves `Ω(log_Δ log n)` randomized /
//! `Ω(log_Δ n)` deterministic hardness for exactly these instances, no fast
//! LOCAL solver can exist for them in general. The reproduction therefore
//! solves the instance with (a) Theorem 2.7 whenever `δ_B ≥ 6·r_B = 12`
//! (i.e. `δ_G ≥ 23`), and (b) a centralized repair reference otherwise
//! (clearly labelled: the lower bound concerns LOCAL rounds, not
//! centralized feasibility — solutions always exist here).

use crate::outcome::{SplitError, SplitOutcome};
use crate::thm27::{theorem27, Variant};
use local_runtime::{NodeRngs, RoundLedger};
use rand::RngExt;
use splitgraph::checks::GraphOrientation;
use splitgraph::generators::{sinkless_instance, SinklessInstance};
use splitgraph::{checks, BipartiteGraph, Color, Graph};

/// Result of the full Figure 1 pipeline.
#[derive(Debug, Clone)]
pub struct SinklessReduction {
    /// The weak-splitting instance built from `G`.
    pub instance: SinklessInstance,
    /// The weak splitting of the instance.
    pub splitting: Vec<Color>,
    /// The derived orientation of `G` (aligned with [`Graph::edges`]).
    pub orientation: GraphOrientation,
    /// Round accounting of the solving step.
    pub ledger: RoundLedger,
}

/// Runs the Figure 1 pipeline: build `B`, solve weak splitting, derive the
/// sinkless orientation.
///
/// # Errors
///
/// Returns [`SplitError::Precondition`] if `δ_G < 5` (the reduction's
/// requirement) and [`SplitError::RandomizedFailure`] if the reference
/// solver exhausts its repair budget (not observed on valid inputs).
///
/// # Examples
///
/// ```
/// use splitting_core::sinkless_via_weak_splitting;
/// use splitgraph::{checks, generators};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = generators::random_regular(60, 6, &mut rng)?;
/// let ids: Vec<u64> = (0..60).collect();
/// let reduction = sinkless_via_weak_splitting(&g, &ids, 7)?;
/// assert!(reduction.instance.bipartite.rank() <= 2);
/// assert!(checks::is_sinkless(&g, &reduction.orientation, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sinkless_via_weak_splitting(
    g: &Graph,
    ids: &[u64],
    seed: u64,
) -> Result<SinklessReduction, SplitError> {
    sinkless_from_instance(g, sinkless_instance(g, ids), ids, seed)
}

/// Runs Figure 1 steps 2–3 on a **prebuilt** sinkless instance (callers
/// that already constructed one — e.g. to inspect `δ_B`/`r_B` before
/// committing — avoid building it twice). `instance` must come from
/// [`sinkless_instance`] over the same `(g, ids)`.
///
/// # Errors
///
/// Exactly like [`sinkless_via_weak_splitting`].
pub fn sinkless_from_instance(
    g: &Graph,
    instance: SinklessInstance,
    ids: &[u64],
    seed: u64,
) -> Result<SinklessReduction, SplitError> {
    if g.min_degree() < 5 {
        return Err(SplitError::Precondition {
            requirement: "δ_G ≥ 5".into(),
            actual: format!("δ_G = {}", g.min_degree()),
        });
    }
    let b = &instance.bipartite;
    debug_assert!(b.rank() <= 2);
    debug_assert!(b.min_left_degree() >= 3);

    // δ_B ≥ 6·r_B puts us in the Theorem 2.7 regime; otherwise fall back to
    // the centralized reference (the lower bound forbids a fast LOCAL
    // algorithm here — that is the point of the construction)
    let solved = if b.min_left_degree() >= 6 * b.rank() {
        theorem27(b, Variant::Deterministic)?
    } else {
        solve_rank2_reference(b, seed)?
    };

    let orientation = orientation_from_splitting(&instance, ids, &solved.colors);
    debug_assert!(checks::is_sinkless(g, &orientation, 1));
    Ok(SinklessReduction {
        instance,
        splitting: solved.colors,
        orientation,
        ledger: solved.ledger,
    })
}

/// Derives the orientation from a weak splitting of a sinkless instance:
/// red edges run small-ID → large-ID, blue edges the other way.
pub fn orientation_from_splitting(
    instance: &SinklessInstance,
    ids: &[u64],
    colors: &[Color],
) -> GraphOrientation {
    let forward = instance
        .edges
        .iter()
        .zip(colors)
        .map(|(&(a, b), &c)| match c {
            // `forward` means directed a → b where (a, b) is the stored
            // edge with a < b by index; red directs from the smaller ID
            Color::Red => ids[a] < ids[b],
            Color::Blue => ids[a] > ids[b],
        })
        .collect();
    GraphOrientation { forward }
}

/// Centralized reference solver for rank-≤2 instances: randomized repair
/// (flip a variable of a violated constraint, preferring flips that do not
/// break the variable's other constraint), retried over seeds.
///
/// This is **not** a LOCAL algorithm — Theorem 2.10 rules those out — and
/// its ledger records a single charged entry labelled accordingly.
///
/// # Errors
///
/// Returns [`SplitError::RandomizedFailure`] if the repair budget is
/// exhausted on every seed.
pub fn solve_rank2_reference(b: &BipartiteGraph, seed: u64) -> Result<SplitOutcome, SplitError> {
    let rngs = NodeRngs::new(seed);
    const SEEDS: usize = 20;
    for attempt in 0..SEEDS {
        let mut rng = rngs.derive(attempt as u64).rng(0, 0);
        let mut colors: Vec<Color> = (0..b.right_count())
            .map(|_| Color::from_bool(rng.random_bool(0.5)))
            .collect();
        let budget = 50 * (b.left_count() + b.right_count()).max(16);
        let mut steps = 0usize;
        loop {
            let violated: Vec<usize> = checks::weak_splitting_violations(b, &colors, 1);
            if violated.is_empty() {
                let mut ledger = RoundLedger::new();
                ledger.add_charged(
                    "centralized rank-2 reference solver (no fast LOCAL algorithm exists: Thm 2.10)",
                    0.0,
                );
                return Ok(SplitOutcome { colors, ledger });
            }
            if steps >= budget {
                break;
            }
            let u = violated[rng.random_range(0..violated.len())];
            let nbrs = b.left_neighbors(u);
            // flip a neighbor toward the missing color, preferring one whose
            // other constraint keeps both colors afterwards
            let flip = nbrs
                .iter()
                .copied()
                .find(|&v| {
                    let mut trial = colors[v].flipped();
                    std::mem::swap(&mut colors[v], &mut trial);
                    let ok = b
                        .right_neighbors(v)
                        .iter()
                        .all(|&w| constraint_ok(b, &colors, w));
                    std::mem::swap(&mut colors[v], &mut trial);
                    ok
                })
                .unwrap_or_else(|| nbrs[rng.random_range(0..nbrs.len())]);
            colors[flip] = colors[flip].flipped();
            steps += 1;
        }
    }
    Err(SplitError::RandomizedFailure {
        phase: "rank-2 repair".into(),
        attempts: SEEDS,
    })
}

/// Whether constraint `u` sees both colors under a full coloring.
fn constraint_ok(b: &BipartiteGraph, colors: &[Color], u: usize) -> bool {
    let mut red = false;
    let mut blue = false;
    for &v in b.left_neighbors(u) {
        match colors[v] {
            Color::Red => red = true,
            Color::Blue => blue = true,
        }
    }
    red && blue
}

/// The Theorem 2.10 randomized lower bound `log_Δ log n` (constants 1), for
/// experiment tables.
pub fn theorem210_randomized_bound(n: usize, max_degree: usize) -> f64 {
    let logn = (n.max(4) as f64).log2().max(2.0);
    logn.log2() / (max_degree.max(2) as f64).log2()
}

/// The Corollary 2.11 deterministic lower bound `log_Δ n` (constants 1).
pub fn corollary211_deterministic_bound(n: usize, max_degree: usize) -> f64 {
    (n.max(4) as f64).log2() / (max_degree.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    /// The 8-node, δ ≥ 5 example in the spirit of Figure 1.
    fn figure1_graph() -> Graph {
        // complete graph on 8 nodes minus a perfect matching: 6-regular
        let mut g = generators::complete(8);
        for i in 0..4 {
            g.remove_edge(2 * i, 2 * i + 1);
        }
        g
    }

    #[test]
    fn figure1_example_pipeline() {
        let g = figure1_graph();
        let ids: Vec<u64> = (0..8).map(|v| v * v + 7).collect();
        let red = sinkless_via_weak_splitting(&g, &ids, 1).unwrap();
        assert!(red.instance.bipartite.rank() <= 2);
        assert!(red.instance.bipartite.min_left_degree() >= 3);
        assert!(checks::is_weak_splitting(
            &red.instance.bipartite,
            &red.splitting,
            0
        ));
        assert!(checks::is_sinkless(&g, &red.orientation, 1));
    }

    #[test]
    fn high_degree_family_uses_theorem27() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::random_regular(120, 24, &mut rng).unwrap();
        let ids: Vec<u64> = (0..120).collect();
        let red = sinkless_via_weak_splitting(&g, &ids, 3).unwrap();
        assert!(red.instance.bipartite.min_left_degree() >= 12);
        assert!(checks::is_sinkless(&g, &red.orientation, 1));
        // Theorem 2.7 path: no centralized entry in the ledger
        assert!(red
            .ledger
            .entries()
            .iter()
            .all(|e| !e.label.contains("centralized")));
    }

    #[test]
    fn low_degree_family_uses_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_regular(60, 6, &mut rng).unwrap();
        let ids: Vec<u64> = (0..60).collect();
        let red = sinkless_via_weak_splitting(&g, &ids, 5).unwrap();
        assert!(checks::is_sinkless(&g, &red.orientation, 1));
        assert!(red
            .ledger
            .entries()
            .iter()
            .any(|e| e.label.contains("centralized")));
    }

    #[test]
    fn rejects_small_degrees() {
        let g = generators::cycle(10).unwrap();
        let ids: Vec<u64> = (0..10).collect();
        assert!(matches!(
            sinkless_via_weak_splitting(&g, &ids, 0),
            Err(SplitError::Precondition { .. })
        ));
    }

    #[test]
    fn bounds_grow_and_shrink_correctly() {
        // deterministic bound grows with n, shrinks with Δ
        assert!(
            corollary211_deterministic_bound(1 << 20, 4)
                > corollary211_deterministic_bound(1 << 10, 4)
        );
        assert!(
            corollary211_deterministic_bound(1 << 20, 4)
                > corollary211_deterministic_bound(1 << 20, 16)
        );
        // randomized bound is exponentially smaller
        assert!(
            theorem210_randomized_bound(1 << 20, 4)
                < corollary211_deterministic_bound(1 << 20, 4) / 2.0
        );
    }
}
