//! Lemma 2.2: deterministic weak splitting in `O(r·log n)` rounds.
//!
//! If `δ > 2·log n`, every constraint locally discards incident edges until
//! exactly `δ' = ⌈2·log n⌉` remain; Lemma 2.1 on the truncated instance `H`
//! then costs `O(Δ_H · r_H) = O(r·log n)` rounds, and a weak splitting of
//! `H` remains one of `B` because the property is preserved under adding
//! edges back.

use crate::basic::basic_deterministic;
use crate::outcome::{SplitError, SplitOutcome};
use local_runtime::RoundLedger;
use splitgraph::math::weak_splitting_degree_threshold;
use splitgraph::{checks, BipartiteGraph};

/// Truncates every constraint of `b` to its first `keep` incident edges (a
/// 0-round local rule) — exposed for the experiments that sweep `keep`.
pub fn truncate_left_degrees(b: &BipartiteGraph, keep: usize) -> BipartiteGraph {
    let edges: Vec<(usize, usize)> = (0..b.left_count())
        .flat_map(|u| b.left_neighbors(u).iter().take(keep).map(move |&v| (u, v)))
        .collect();
    BipartiteGraph::from_edges_bulk(b.left_count(), b.right_count(), &edges)
        .expect("subset of simple edges stays simple")
}

/// Runs the Lemma 2.2 pipeline with threshold derived from
/// `n_for_threshold` (see [`crate::basic::basic_deterministic`] for why the
/// size is a parameter).
///
/// # Errors
///
/// Returns [`SplitError::Precondition`] if `δ < 2·log n`.
pub fn truncated_deterministic(
    b: &BipartiteGraph,
    n_for_threshold: usize,
) -> Result<SplitOutcome, SplitError> {
    let threshold = weak_splitting_degree_threshold(n_for_threshold);
    let delta = b.min_left_degree();
    if delta < threshold {
        return Err(SplitError::Precondition {
            requirement: format!("δ ≥ 2·log n = {threshold}"),
            actual: format!("δ = {delta}"),
        });
    }
    let mut ledger = RoundLedger::new();
    ledger.add_measured("degree truncation to ⌈2·log n⌉ (local)", 0.0);
    // when every constraint already sits at or below the threshold the
    // truncation is the identity — run Lemma 2.1 on `b` directly instead of
    // rebuilding an equal graph (δ ≈ 2·log n is the common regime here, via
    // Theorem 2.5's small-degree branch and Theorem 1.2's residual
    // components)
    let inner = if b.max_left_degree() <= threshold {
        basic_deterministic(b, n_for_threshold)?
    } else {
        let h = truncate_left_degrees(b, threshold);
        basic_deterministic(&h, n_for_threshold)?
    };
    ledger.merge_prefixed("Lemma 2.1 on truncated instance", inner.ledger);
    debug_assert!(
        checks::is_weak_splitting(b, &inner.colors, threshold),
        "weak splitting must be preserved under adding edges back"
    );
    Ok(SplitOutcome {
        colors: inner.colors,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;

    #[test]
    fn truncation_caps_left_degrees() {
        let b = generators::complete_bipartite(4, 10);
        let h = truncate_left_degrees(&b, 3);
        for u in 0..4 {
            assert_eq!(h.left_degree(u), 3);
        }
        assert!(h.rank() <= b.rank());
    }

    #[test]
    fn truncation_keeps_small_degrees() {
        let b = generators::complete_bipartite(2, 3);
        let h = truncate_left_degrees(&b, 10);
        assert_eq!(h.edge_count(), b.edge_count());
    }

    #[test]
    fn solves_high_degree_instances() {
        let mut rng = StdRng::seed_from_u64(2);
        // δ = 64 far above 2 log 288 ≈ 16.3; truncation shrinks the work
        let b = generators::random_left_regular(96, 192, 64, &mut rng).unwrap();
        let out = truncated_deterministic(&b, b.node_count()).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
    }

    #[test]
    fn cheaper_than_untruncated_on_high_degrees() {
        let mut rng = StdRng::seed_from_u64(6);
        let b = generators::random_left_regular(96, 192, 64, &mut rng).unwrap();
        let trunc = truncated_deterministic(&b, b.node_count()).unwrap();
        let full = crate::basic::basic_deterministic(&b, b.node_count()).unwrap();
        assert!(
            trunc.ledger.measured_total() < full.ledger.measured_total(),
            "truncated {} vs full {}",
            trunc.ledger.measured_total(),
            full.ledger.measured_total()
        );
    }

    #[test]
    fn noop_truncation_fast_path_is_exact() {
        let mut rng = StdRng::seed_from_u64(9);
        // δ = Δ = 18 = threshold for n = 440: truncation is the identity,
        // so the fast path (no rebuild) must match Lemma 2.1 on b directly
        let b = generators::random_biregular(220, 220, 18, &mut rng).unwrap();
        assert_eq!(truncate_left_degrees(&b, 18), b);
        let via_truncate = truncated_deterministic(&b, b.node_count()).unwrap();
        let direct = crate::basic::basic_deterministic(&b, b.node_count()).unwrap();
        assert_eq!(via_truncate.colors, direct.colors);
        assert!(is_weak_splitting(&b, &via_truncate.colors, 0));
    }

    #[test]
    fn propagates_precondition_error() {
        let b = generators::complete_bipartite(64, 8);
        assert!(matches!(
            truncated_deterministic(&b, b.node_count()),
            Err(SplitError::Precondition { .. })
        ));
    }
}
