//! The shattering algorithm (Section 2.4) as a genuine LOCAL node program.
//!
//! Coloring phase: every variable colors itself red with probability 1/4,
//! blue with probability 1/4, and stays uncolored otherwise. Uncoloring
//! phase: every constraint with more than `3/4` of its neighbors colored
//! uncolors **all** of its neighbors. A constraint is *satisfied* if it then
//! sees both colors; Lemma 2.9 shows unsatisfied constraints are
//! exponentially rare in `Δ`, and Theorem 2.8 ([GHK16]) bounds the residual
//! components by `poly(Δ, r)·log n`.
//!
//! The three message rounds (announce color, command uncoloring, announce
//! final color) run through [`local_runtime::run_local`] on the flattened
//! bipartite host graph.

use local_runtime::{run_local, NodeContext, NodeProgram, NodeRngs, BROADCAST};
use rand::RngExt;
use splitgraph::{BipartiteGraph, Color};

/// Outcome of one shattering run.
#[derive(Debug, Clone)]
pub struct ShatterOutcome {
    /// Partial coloring of the variable side after the uncoloring phase.
    pub colors: Vec<Option<Color>>,
    /// Which constraints see both colors.
    pub satisfied: Vec<bool>,
    /// The residual instance: unsatisfied constraints × uncolored variables
    /// (indices preserved from the input instance; satisfied/colored nodes
    /// are isolated in it).
    pub residual: BipartiteGraph,
    /// Measured LOCAL rounds (always 3).
    pub rounds: usize,
    /// Messages delivered by the simulator.
    pub messages: usize,
}

/// Messages of the shattering program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    /// A variable announces its (tentative or final) color.
    Announce(Option<Color>),
    /// A constraint commands its neighborhood to uncolor.
    Uncolor,
}

/// Per-node state: constraints and variables run the same program with a
/// role flag (nodes `0..left_count` are constraints).
struct Shatter {
    is_constraint: bool,
    probability: f64,
    rngs: NodeRngs,
    step: u8,
    /// variable: my color; constraint: unused
    color: Option<Color>,
    /// constraint: satisfied flag
    satisfied: bool,
}

impl NodeProgram for Shatter {
    type Msg = Msg;
    type Output = (Option<Color>, bool);

    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, Msg)> {
        if self.is_constraint {
            return vec![];
        }
        let mut rng = self.rngs.rng(ctx.node, 0);
        let roll: f64 = rng.random();
        self.color = if roll < self.probability {
            Some(Color::Red)
        } else if roll < 2.0 * self.probability {
            Some(Color::Blue)
        } else {
            None
        };
        vec![(BROADCAST, Msg::Announce(self.color))]
    }

    fn round(&mut self, ctx: &NodeContext, inbox: &[(usize, Msg)]) -> Vec<(usize, Msg)> {
        self.step += 1;
        match (self.is_constraint, self.step) {
            (true, 1) => {
                // uncoloring decision: more than 3/4 colored neighbors?
                let colored = inbox
                    .iter()
                    .filter(|(_, m)| matches!(m, Msg::Announce(Some(_))))
                    .count();
                if 4 * colored > 3 * ctx.degree {
                    vec![(BROADCAST, Msg::Uncolor)]
                } else {
                    vec![]
                }
            }
            (false, 2) => {
                // apply uncoloring, announce the final color
                if inbox.iter().any(|(_, m)| matches!(m, Msg::Uncolor)) {
                    self.color = None;
                }
                vec![(BROADCAST, Msg::Announce(self.color))]
            }
            (true, 3) => {
                // satisfaction: both colors present among final announcements
                let mut red = false;
                let mut blue = false;
                for (_, m) in inbox {
                    match m {
                        Msg::Announce(Some(Color::Red)) => red = true,
                        Msg::Announce(Some(Color::Blue)) => blue = true,
                        _ => {}
                    }
                }
                self.satisfied = red && blue;
                vec![]
            }
            _ => vec![],
        }
    }

    fn is_done(&self) -> bool {
        self.step >= 3
    }

    fn output(&self) -> (Option<Color>, bool) {
        (self.color, self.satisfied)
    }
}

/// Runs the shattering algorithm with per-color probability 1/4 (the
/// paper's choice).
///
/// # Examples
///
/// ```
/// use splitting_core::shatter;
/// use splitgraph::generators;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let b = generators::random_biregular(50, 100, 16, &mut rng)?;
/// let out = shatter(&b, 42);
/// assert_eq!(out.rounds, 3); // coloring, uncoloring, final announcement
/// // every constraint keeps at least a quarter of its neighbors uncolored
/// for u in 0..50 {
///     let uncolored = b.left_neighbors(u).iter().filter(|&&v| out.colors[v].is_none()).count();
///     assert!(4 * uncolored >= b.left_degree(u));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn shatter(b: &BipartiteGraph, seed: u64) -> ShatterOutcome {
    shatter_with_probability(b, seed, 0.25)
}

/// Runs the shattering algorithm with a custom per-color probability — the
/// `abl_shatter` ablation sweeps this parameter.
///
/// # Panics
///
/// Panics if `probability` is not in `(0, 0.5]`.
pub fn shatter_with_probability(b: &BipartiteGraph, seed: u64, probability: f64) -> ShatterOutcome {
    assert!(
        probability > 0.0 && probability <= 0.5,
        "per-color probability must lie in (0, 0.5]"
    );
    let g = b.to_graph();
    let ids: Vec<u64> = (0..g.node_count() as u64).collect();
    let rngs = NodeRngs::new(seed);
    let left = b.left_count();
    let run = run_local(&g, &ids, 4, |ctx| Shatter {
        is_constraint: ctx.node < left,
        probability,
        rngs,
        step: 0,
        color: None,
        satisfied: false,
    });
    debug_assert!(run.completed);

    let satisfied: Vec<bool> = run.outputs[..left].iter().map(|&(_, s)| s).collect();
    let colors: Vec<Option<Color>> = run.outputs[left..].iter().map(|&(c, _)| c).collect();
    let keep_left: Vec<bool> = satisfied.iter().map(|&s| !s).collect();
    let keep_right: Vec<bool> = colors.iter().map(Option::is_none).collect();
    let residual = b.induced_subgraph(&keep_left, &keep_right);
    ShatterOutcome {
        colors,
        satisfied,
        residual,
        rounds: run.rounds,
        messages: run.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn shattering_takes_three_rounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_biregular(50, 100, 16, &mut rng).unwrap();
        let out = shatter(&b, 42);
        assert_eq!(out.rounds, 3);
        assert_eq!(out.colors.len(), 100);
        assert_eq!(out.satisfied.len(), 50);
    }

    #[test]
    fn satisfied_constraints_see_both_colors() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = generators::random_biregular(60, 120, 20, &mut rng).unwrap();
        let out = shatter(&b, 7);
        for u in 0..60 {
            let sees_both = splitgraph::checks::sees_both_colors(&b, u, &out.colors);
            assert_eq!(out.satisfied[u], sees_both, "constraint {u}");
        }
    }

    #[test]
    fn every_constraint_keeps_quarter_uncolored() {
        // the δ_H ≥ δ/4 property from the proof of Theorem 1.2
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_biregular(80, 160, 24, &mut rng).unwrap();
        for seed in 0..5 {
            let out = shatter(&b, seed);
            for u in 0..80 {
                let uncolored = b
                    .left_neighbors(u)
                    .iter()
                    .filter(|&&v| out.colors[v].is_none())
                    .count();
                assert!(
                    4 * uncolored >= b.left_degree(u),
                    "constraint {u} kept only {uncolored}/{} uncolored (seed {seed})",
                    b.left_degree(u)
                );
            }
        }
    }

    #[test]
    fn residual_contains_exactly_unsatisfied_and_uncolored() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = generators::random_biregular(40, 80, 12, &mut rng).unwrap();
        let out = shatter(&b, 11);
        for u in 0..40 {
            if out.satisfied[u] {
                assert_eq!(out.residual.left_degree(u), 0);
            } else {
                let uncolored = b
                    .left_neighbors(u)
                    .iter()
                    .filter(|&&v| out.colors[v].is_none())
                    .count();
                assert_eq!(out.residual.left_degree(u), uncolored);
            }
        }
        for v in 0..80 {
            if out.colors[v].is_some() {
                assert_eq!(out.residual.right_degree(v), 0);
            }
        }
    }

    #[test]
    fn unsatisfied_fraction_drops_with_degree() {
        // Lemma 2.9 shape: exponential decay in Δ
        let mut rng = StdRng::seed_from_u64(5);
        let mut rates = Vec::new();
        for &d in &[4usize, 16, 48] {
            let b = generators::random_biregular(64, 128, d, &mut rng).unwrap();
            let mut unsat = 0usize;
            let trials = 40;
            for seed in 0..trials {
                let out = shatter(&b, seed);
                unsat += out.satisfied.iter().filter(|&&s| !s).count();
            }
            rates.push(unsat as f64 / (64.0 * trials as f64));
        }
        assert!(rates[0] > rates[2], "rates {rates:?} must decay in Δ");
        assert!(
            rates[2] < 0.01,
            "high-degree unsatisfied rate {} too large",
            rates[2]
        );
    }

    #[test]
    fn seed_determinism() {
        let mut rng = StdRng::seed_from_u64(6);
        let b = generators::random_biregular(30, 60, 8, &mut rng).unwrap();
        let a = shatter(&b, 5);
        let c = shatter(&b, 5);
        assert_eq!(a.colors, c.colors);
        assert_eq!(a.satisfied, c.satisfied);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let b = generators::complete_bipartite(1, 2);
        let _ = shatter_with_probability(&b, 0, 0.75);
    }
}
