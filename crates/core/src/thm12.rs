//! Theorem 1.2: randomized weak splitting in
//! `O(r/δ · poly log(r·log n))` rounds for `δ ≥ c·log(r·log n)`.
//!
//! Graph shattering: if `δ > 2·log n` the zero-round algorithm already
//! succeeds w.h.p.; otherwise the shattering algorithm satisfies most
//! constraints outright (Lemma 2.9) and Theorem 2.8 confines the leftovers
//! to connected components of size `poly(r, log n)`, where the
//! deterministic algorithm of Theorem 2.5 — parameterized by the *component*
//! size `n_H` — finishes in `poly log(r·log n)` rounds. Since the uncoloring
//! phase leaves every constraint at least a quarter of its neighbors
//! uncolored, the residual minimum degree `δ_H ≥ δ/4` meets Theorem 2.5's
//! requirement `δ_H ≥ 2·log n_H` once `c` is large enough.
//!
//! The residual components all funnel into the incremental
//! conditional-expectation engine (through Theorem 2.5 / Lemma 2.1), and
//! their truncation step reuses the component graph in place when it is a
//! no-op — given a fixed seed the whole randomized pipeline is replayable
//! bit for bit.

use crate::basic::{basic_deterministic_unchecked, SchedulingMode};
use crate::outcome::{SplitError, SplitOutcome};
use crate::shatter::shatter;
use crate::thm25::theorem25;
use crate::virtual_split::uniformize_left_degrees;
use crate::zero_round::zero_round_whp;
use degree_split::Flavor;
use local_runtime::RoundLedger;
use splitgraph::math::{log2, weak_splitting_degree_threshold};
use splitgraph::{bipartite_components, checks, BipartiteGraph, Color};

/// Tunables of the Theorem 1.2 pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem12Config {
    /// Master seed for the shattering randomness.
    pub seed: u64,
    /// The constant `c` in the precondition `δ ≥ c·log(r·log n)`.
    pub c_constant: f64,
    /// Shattering retries before reporting failure (each retry is an
    /// independent seed; w.h.p. one suffices).
    pub attempts: usize,
}

impl Default for Theorem12Config {
    fn default() -> Self {
        Theorem12Config {
            seed: 0x5eed,
            c_constant: 3.0,
            attempts: 16,
        }
    }
}

/// Statistics of a successful Theorem 1.2 run (for the `thm12` experiment).
#[derive(Debug, Clone, Default)]
pub struct Theorem12Report {
    /// Number of unsatisfied constraints after shattering.
    pub unsatisfied: usize,
    /// Size (nodes) of the largest residual component.
    pub max_component: usize,
    /// Number of residual components containing constraints to solve.
    pub solved_components: usize,
    /// Shattering seeds consumed.
    pub attempts_used: usize,
}

/// Runs Theorem 1.2; see [`theorem12_with_report`] for diagnostics.
///
/// # Errors
///
/// [`SplitError::Precondition`] if `δ < c·log(r·log n)`, or
/// [`SplitError::RandomizedFailure`] if every shattering attempt left a
/// component outside Theorem 2.5's regime.
pub fn theorem12(b: &BipartiteGraph, cfg: &Theorem12Config) -> Result<SplitOutcome, SplitError> {
    theorem12_with_report(b, cfg).map(|(out, _)| out)
}

/// Runs Theorem 1.2, returning diagnostics alongside the splitting.
///
/// # Errors
///
/// As for [`theorem12`].
pub fn theorem12_with_report(
    b: &BipartiteGraph,
    cfg: &Theorem12Config,
) -> Result<(SplitOutcome, Theorem12Report), SplitError> {
    let n = b.node_count();
    let rank = b.rank().max(1);
    let delta = b.min_left_degree();
    let requirement = cfg.c_constant * log2((rank as f64 * log2(n.max(2))).ceil() as usize + 1);
    if (delta as f64) < requirement {
        return Err(SplitError::Precondition {
            requirement: format!("δ ≥ c·log(r·log n) = {requirement:.1}"),
            actual: format!("δ = {delta}"),
        });
    }

    // high-degree regime: the zero-round algorithm succeeds w.h.p.
    if delta > weak_splitting_degree_threshold(n) {
        let out = zero_round_whp(b, cfg.seed, cfg.attempts)?;
        return Ok((out, Theorem12Report::default()));
    }

    // degree uniformization (δ > Δ/2 assumption of Section 2.4)
    let vs = uniformize_left_degrees(b, delta);
    let work = &vs.graph;

    'attempt: for attempt in 0..cfg.attempts {
        let mut ledger = RoundLedger::new();
        ledger.add_measured("virtual-node degree uniformization (local)", 0.0);
        let sh = shatter(work, cfg.seed.wrapping_add(attempt as u64));
        ledger.add_measured("shattering (coloring + uncoloring)", sh.rounds as f64);

        let mut colors: Vec<Option<Color>> = sh.colors.clone();
        let comps = bipartite_components(&sh.residual);
        let mut report = Theorem12Report {
            unsatisfied: sh.satisfied.iter().filter(|&&s| !s).count(),
            max_component: 0,
            solved_components: 0,
            attempts_used: attempt + 1,
        };
        // components run in parallel: the ledger takes the per-kind maximum
        let mut comp_measured = 0.0f64;
        let mut comp_charged = 0.0f64;
        for comp in &comps {
            let has_constraints =
                (0..comp.graph.left_count()).any(|u| comp.graph.left_degree(u) > 0);
            if !has_constraints {
                // stray *uncolored* variables: any color works. Colored
                // variables also land in constraint-less singleton
                // components (they are isolated in the residual) and must
                // keep their shattering color.
                for &orig in &comp.original_right {
                    if colors[orig].is_none() {
                        colors[orig] = Some(Color::Red);
                    }
                }
                continue;
            }
            report.max_component = report.max_component.max(comp.node_count());
            // Theorem 2.5 parameterized by the component size n_H; when its
            // (conservative) δ_H ≥ 2·log n_H check fails, fall back to the
            // underlying union-bound engine directly — Lemma 2.1's
            // derandomization is valid whenever Φ_H < 1
            let solved = theorem25(&comp.graph, Flavor::Deterministic)
                .map(|(out, _)| out)
                .or_else(|_| basic_deterministic_unchecked(&comp.graph, SchedulingMode::Reference));
            match solved {
                Ok(out) => {
                    report.solved_components += 1;
                    for (j, &orig) in comp.original_right.iter().enumerate() {
                        colors[orig] = Some(out.colors[j]);
                    }
                    comp_measured = comp_measured.max(out.ledger.measured_total());
                    comp_charged = comp_charged.max(out.ledger.charged_total());
                }
                Err(_) => continue 'attempt, // Φ_H ≥ 1: reshatter with a fresh seed
            }
        }
        ledger.add_measured(
            "residual components (Thm 2.5, parallel, max)",
            comp_measured,
        );
        ledger.add_charged("residual components (Thm 2.5, parallel, max)", comp_charged);

        let colors: Vec<Color> = colors
            .into_iter()
            .map(|c| c.unwrap_or(Color::Red))
            .collect();
        if checks::is_weak_splitting(work, &colors, 0) {
            debug_assert!(checks::is_weak_splitting(b, &colors, 0));
            return Ok((SplitOutcome { colors, ledger }, report));
        }
    }
    Err(SplitError::RandomizedFailure {
        phase: "shattering + residual solving".into(),
        attempts: cfg.attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::generators;

    #[test]
    fn high_degree_regime_zero_round() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_biregular(60, 120, 24, &mut rng).unwrap();
        let (out, report) = theorem12_with_report(&b, &Theorem12Config::default()).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
        assert_eq!(
            report.attempts_used, 0,
            "zero-round path has no shattering attempts"
        );
    }

    #[test]
    fn shattering_regime_solves() {
        let mut rng = StdRng::seed_from_u64(2);
        // n = 18432, 2·log n ≈ 28.3 (threshold 29); δ = 28 sits just below
        // the zero-round regime, rank 8, c·log(r·log n) ≈ 10.3 ≤ 28
        let b = generators::random_biregular(4096, 14336, 28, &mut rng).unwrap();
        let cfg = Theorem12Config {
            c_constant: 1.5,
            ..Theorem12Config::default()
        };
        let (out, report) = theorem12_with_report(&b, &cfg).unwrap();
        assert!(is_weak_splitting(&b, &out.colors, 0));
        assert!(report.attempts_used >= 1);
        // shattering must satisfy the overwhelming majority outright
        assert!(
            report.unsatisfied < 205,
            "unsatisfied = {} out of 4096",
            report.unsatisfied
        );
    }

    #[test]
    fn shattering_pipeline_is_replayable() {
        // same seed → same shattering, same residual components, and the
        // engine-backed component solving must reproduce colors bit for bit
        let mut rng = StdRng::seed_from_u64(5);
        let b = generators::random_biregular(2048, 6656, 26, &mut rng).unwrap();
        let cfg = Theorem12Config {
            c_constant: 1.5,
            ..Theorem12Config::default()
        };
        let (a, ra) = theorem12_with_report(&b, &cfg).unwrap();
        let (c, rc) = theorem12_with_report(&b, &cfg).unwrap();
        assert_eq!(a.colors, c.colors);
        assert_eq!(ra.unsatisfied, rc.unsatisfied);
        assert_eq!(ra.attempts_used, rc.attempts_used);
        assert!(is_weak_splitting(&b, &a.colors, 0));
    }

    #[test]
    fn precondition_rejects_tiny_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_biregular(128, 256, 4, &mut rng).unwrap();
        assert!(matches!(
            theorem12(&b, &Theorem12Config::default()),
            Err(SplitError::Precondition { .. })
        ));
    }

    #[test]
    fn ledger_separates_parallel_component_costs() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = generators::random_biregular(4096, 14336, 28, &mut rng).unwrap();
        let cfg = Theorem12Config {
            c_constant: 1.5,
            ..Theorem12Config::default()
        };
        let (out, _) = theorem12_with_report(&b, &cfg).unwrap();
        // shattering is measured; component work may include charged entries
        assert!(out.ledger.measured_total() >= 3.0);
    }
}
