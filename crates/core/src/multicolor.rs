//! Multicolor splitting variants (Definitions 1.2 and 1.3) and their
//! membership algorithms (the "in P-RLOCAL" halves of Theorems 3.2/3.3).
//!
//! * **C-weak multicolor splitting** (Def. 1.3): color the variables with
//!   `C ≥ 2·log n` colors so every constraint of degree at least
//!   `2(log n + 1)·ln n` sees at least `2·log n` distinct colors. The
//!   membership algorithm picks uniformly from the first `⌈2·log n⌉`
//!   colors; the expected number of (constraint, missing-color) pairs is
//!   below 1, so the conditional-expectation fixer derandomizes it.
//! * **(C, λ)-multicolor splitting** (Def. 1.2): color with `C` colors so
//!   every constraint has at most `⌈λ·deg(u)⌉` neighbors of each color.
//!   The membership algorithm picks uniformly from `C' = 3` (if `λ ≥ 2/3`)
//!   or `C' = ⌈3/λ⌉` colors; the per-color Chernoff tail is `n^{-Θ(α)}`
//!   for degrees `≥ (α/λ)·ln n`, derandomized via the MGF estimator.

use crate::outcome::SplitError;
use derand::{chernoff_t, sequential_fix_identity, ColoringEstimator, FixOutcome};
use local_runtime::{NodeRngs, RoundLedger};
use rand::RngExt;
use splitgraph::math::{weak_multicolor_degree_threshold, weak_multicolor_required_colors};
use splitgraph::{checks, BipartiteGraph, MultiColor};

/// A multicolor splitting result.
#[derive(Debug, Clone)]
pub struct MulticolorOutcome {
    /// Color per variable, in `0..palette`.
    pub colors: Vec<MultiColor>,
    /// Palette size actually used.
    pub palette: u32,
    /// Round accounting.
    pub ledger: RoundLedger,
}

/// Randomized zero-round C-weak multicolor splitting: each variable picks
/// uniformly among the first `⌈2·log n⌉` colors. Validity holds in
/// expectation for the Definition 1.3 degree threshold; callers verify.
pub fn weak_multicolor_random(b: &BipartiteGraph, seed: u64) -> MulticolorOutcome {
    let n = b.node_count();
    let palette = weak_multicolor_required_colors(n) as u32;
    let rngs = NodeRngs::new(seed);
    let colors: Vec<MultiColor> = (0..b.right_count())
        .map(|v| rngs.rng(v, 0).random_range(0..palette))
        .collect();
    let mut ledger = RoundLedger::new();
    ledger.add_measured("zero-round multicolor choice", 0.0);
    MulticolorOutcome {
        colors,
        palette,
        ledger,
    }
}

/// Deterministic C-weak multicolor splitting via the missing-color
/// estimator, scheduled by a coloring of the variable square
/// (SLOCAL(2) → LOCAL compilation, as in the Theorem 3.2 membership proof).
///
/// # Errors
///
/// Returns [`SplitError::EstimatorTooLarge`] if the union bound does not
/// certify success (the instance violates the Definition 1.3 degree
/// regime badly).
pub fn weak_multicolor_deterministic(b: &BipartiteGraph) -> Result<MulticolorOutcome, SplitError> {
    let n = b.node_count();
    let palette = weak_multicolor_required_colors(n) as u32;
    let est = ColoringEstimator::missing_color(b, palette);
    let (fix, rounds_entry) = scheduled_fix(b, est);
    if fix.initial_phi >= 1.0 {
        return Err(SplitError::EstimatorTooLarge {
            phi: fix.initial_phi,
        });
    }
    let mut ledger = RoundLedger::new();
    ledger.add_charged("B² scheduling coloring (BEK14a)", rounds_entry.0);
    ledger.add_charged("conditional-expectation phases (compiled)", rounds_entry.1);
    debug_assert!(checks::is_weak_multicolor_splitting(
        b,
        &fix.colors,
        weak_multicolor_degree_threshold(n),
        weak_multicolor_required_colors(n),
    ));
    Ok(MulticolorOutcome {
        colors: fix.colors,
        palette,
        ledger,
    })
}

/// Randomized zero-round (C, λ)-multicolor splitting with the Theorem 3.3
/// palette choice `C' = 3` (if `λ ≥ 2/3`) or `C' = ⌈3/λ⌉`.
///
/// # Panics
///
/// Panics if `lambda` is not in `(0, 1]` or `c < 2`.
pub fn multicolor_splitting_random(
    b: &BipartiteGraph,
    c: u32,
    lambda: f64,
    seed: u64,
) -> MulticolorOutcome {
    let c_prime = theorem33_palette(c, lambda);
    let rngs = NodeRngs::new(seed);
    let colors: Vec<MultiColor> = (0..b.right_count())
        .map(|v| rngs.rng(v, 0).random_range(0..c_prime))
        .collect();
    let mut ledger = RoundLedger::new();
    ledger.add_measured("zero-round multicolor choice", 0.0);
    MulticolorOutcome {
        colors,
        palette: c_prime,
        ledger,
    }
}

/// Deterministic (C, λ)-multicolor splitting via the Chernoff/MGF overload
/// estimator (the derandomized Theorem 3.3 membership algorithm).
///
/// # Errors
///
/// Returns [`SplitError::EstimatorTooLarge`] if the Chernoff union bound
/// does not certify success for this instance.
///
/// # Panics
///
/// Panics if `lambda` is not in `(0, 1]` or `c < 2`.
pub fn multicolor_splitting_deterministic(
    b: &BipartiteGraph,
    c: u32,
    lambda: f64,
) -> Result<MulticolorOutcome, SplitError> {
    let c_prime = theorem33_palette(c, lambda);
    let caps: Vec<usize> = (0..b.left_count())
        .map(|u| (lambda * b.left_degree(u) as f64).ceil() as usize)
        .collect();
    let avg_deg = if b.left_count() == 0 {
        1.0
    } else {
        b.edge_count() as f64 / b.left_count() as f64
    };
    let t = chernoff_t(lambda * avg_deg, c_prime, avg_deg);
    let est = ColoringEstimator::overload(b, c_prime, &caps, t);
    let (fix, rounds_entry) = scheduled_fix(b, est);
    if fix.initial_phi >= 1.0 {
        return Err(SplitError::EstimatorTooLarge {
            phi: fix.initial_phi,
        });
    }
    let mut ledger = RoundLedger::new();
    ledger.add_charged("B² scheduling coloring (BEK14a)", rounds_entry.0);
    ledger.add_charged("conditional-expectation phases (compiled)", rounds_entry.1);
    debug_assert!(checks::is_multicolor_splitting(
        b,
        &fix.colors,
        c_prime,
        lambda,
        0
    ));
    Ok(MulticolorOutcome {
        colors: fix.colors,
        palette: c_prime,
        ledger,
    })
}

/// The Theorem 3.3 palette: `3` when `λ ≥ 2/3`, else `⌈3/λ⌉` (both `≤ C`
/// under the theorem's assumption `λ ≥ min{0.95, 3/(C−1)}`).
///
/// # Panics
///
/// Panics if `lambda` is not in `(0, 1]` or `c < 2`.
pub fn theorem33_palette(c: u32, lambda: f64) -> u32 {
    assert!(lambda > 0.0 && lambda <= 1.0, "lambda must lie in (0, 1]");
    assert!(c >= 2, "palette bound must be at least 2");
    if c == 2 {
        return 2;
    }
    let c_prime = if lambda >= 2.0 / 3.0 {
        3
    } else {
        (3.0 / lambda).ceil() as u32
    };
    c_prime.min(c)
}

/// Shared fixing step: the greedy pass runs sequentially (it *is* the
/// SLOCAL(2) algorithm — materializing the variable square of the dense
/// Definition 1.3 instances would cost `Σ_u deg(u)²` memory for no output
/// difference), while the LOCAL compilation costs are charged from the
/// [GHK17a] formulas: a `O(Δ·r)`-coloring of the square (`Δ·r + log* n`
/// rounds per [BEK14a]) plus two rounds per color class. Returns the fix
/// plus `(coloring_charge, phases_charge)`.
fn scheduled_fix(b: &BipartiteGraph, est: ColoringEstimator) -> (FixOutcome, (f64, f64)) {
    // Δ(B²|V) < Δ·r, and the palette cannot exceed the variable count
    let sched_palette = (b.max_left_degree() * b.rank().max(1)).min(b.right_count().max(1));
    let coloring_charge =
        sched_palette as f64 + splitgraph::math::log_star(b.node_count().max(2)) as f64;
    let phases_charge = 2.0 * (sched_palette as f64 + 1.0);
    let fix = sequential_fix_identity(b, est);
    (fix, (coloring_charge, phases_charge))
}

/// Sequential (SLOCAL) variant of [`weak_multicolor_deterministic`],
/// exposed for cross-validation in tests and experiments.
///
/// # Errors
///
/// Returns [`SplitError::EstimatorTooLarge`] when `Φ ≥ 1` initially.
pub fn weak_multicolor_slocal(b: &BipartiteGraph) -> Result<MulticolorOutcome, SplitError> {
    let n = b.node_count();
    let palette = weak_multicolor_required_colors(n) as u32;
    let est = ColoringEstimator::missing_color(b, palette);
    let fix = sequential_fix_identity(b, est);
    if fix.initial_phi >= 1.0 {
        return Err(SplitError::EstimatorTooLarge {
            phi: fix.initial_phi,
        });
    }
    let mut ledger = RoundLedger::new();
    ledger.add_measured("SLOCAL sequential pass", 0.0);
    Ok(MulticolorOutcome {
        colors: fix.colors,
        palette,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    /// An instance inside the Definition 1.3 regime with `c > 1` headroom:
    /// the randomized membership argument needs `deg ≫ (2·log n + 1)·ln n`,
    /// so degrees sit near `(2·log n + 1)·ln² n` as in the theorem's
    /// statement for `c = 2`.
    fn def13_instance(seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        // n = 2176: (2·log n + 1)·ln n ≈ 176, with ln² headroom → 1024
        generators::random_left_regular(128, 2048, 1024, &mut rng).unwrap()
    }

    #[test]
    fn weak_multicolor_random_mostly_valid() {
        let b = def13_instance(1);
        let n = b.node_count();
        let out = weak_multicolor_random(&b, 3);
        let violations = checks::weak_multicolor_violations(
            &b,
            &out.colors,
            weak_multicolor_degree_threshold(n),
            weak_multicolor_required_colors(n),
        );
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn weak_multicolor_deterministic_always_valid() {
        let b = def13_instance(2);
        let n = b.node_count();
        let out = weak_multicolor_deterministic(&b).unwrap();
        assert!(checks::is_weak_multicolor_splitting(
            &b,
            &out.colors,
            weak_multicolor_degree_threshold(n),
            weak_multicolor_required_colors(n),
        ));
        assert!(out.colors.iter().all(|&x| x < out.palette));
    }

    #[test]
    fn weak_multicolor_slocal_matches() {
        let b = def13_instance(3);
        let n = b.node_count();
        let out = weak_multicolor_slocal(&b).unwrap();
        assert!(checks::is_weak_multicolor_splitting(
            &b,
            &out.colors,
            weak_multicolor_degree_threshold(n),
            weak_multicolor_required_colors(n),
        ));
    }

    #[test]
    fn theorem33_palette_cases() {
        assert_eq!(theorem33_palette(16, 0.7), 3);
        assert_eq!(theorem33_palette(16, 0.5), 6);
        assert_eq!(theorem33_palette(16, 0.25), 12);
        assert_eq!(theorem33_palette(4, 0.25), 4, "clamped to C");
        assert_eq!(theorem33_palette(2, 0.95), 2);
    }

    #[test]
    fn multicolor_splitting_deterministic_respects_caps() {
        let mut rng = StdRng::seed_from_u64(4);
        // λ = 1/2, degrees 64: caps 32, Chernoff certifies easily
        let b = generators::random_biregular(128, 256, 64, &mut rng).unwrap();
        let out = multicolor_splitting_deterministic(&b, 8, 0.5).unwrap();
        assert!(checks::is_multicolor_splitting(
            &b,
            &out.colors,
            out.palette,
            0.5,
            0
        ));
    }

    #[test]
    fn multicolor_splitting_random_usually_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = generators::random_biregular(128, 256, 64, &mut rng).unwrap();
        let mut successes = 0;
        for seed in 0..10 {
            let out = multicolor_splitting_random(&b, 8, 0.5, seed);
            if checks::is_multicolor_splitting(&b, &out.colors, out.palette, 0.5, 0) {
                successes += 1;
            }
        }
        assert!(successes >= 8, "only {successes}/10 random runs valid");
    }

    #[test]
    fn estimator_failure_reported_for_bad_regime() {
        // degree-2 constraints cannot see 2·log n ≫ 2 colors
        let b = generators::complete_bipartite(200, 2);
        assert!(matches!(
            weak_multicolor_deterministic(&b),
            Err(SplitError::EstimatorTooLarge { .. })
        ));
    }
}
