//! # derand — derandomization substrate (\[GHK16\])
//!
//! The splitting paper's deterministic algorithms all arise by
//! derandomizing trivial zero-round randomized algorithms through the
//! method of conditional expectations, phrased in the SLOCAL model and
//! compiled to LOCAL via distance-2 colorings. This crate packages that
//! machinery:
//!
//! * [`ColoringEstimator`] — product-form pessimistic estimators for all
//!   three failure events used in the paper (monochromatic neighborhood,
//!   missing colors, per-color overload);
//! * [`FixerState`] — incremental state with O(1) per-candidate
//!   re-evaluation: flat per-constraint × per-color count arrays over a
//!   flat CSR incidence, precomputed `factor^k`/`step^k` power tables (no
//!   `powi`/`powf` in the inner loop), and an incrementally maintained `Φ`
//!   ([`FixerState::tracked_total`]) whose floating-point drift is bounded
//!   by a periodic full-recompute guard — the tracked value is rebased
//!   onto an exact `Σ_u φ_u` every `max(64, |U|)` commits, so whole-run
//!   overhead stays `O(m)` while step-wise error stays below `1e-9`;
//! * [`sequential_fix`] / [`sequential_fix_identity`] — the SLOCAL(2)
//!   greedy fixer (explicit order / identity order);
//! * [`phased_fix`] — the LOCAL compilation by color classes of the
//!   variable square ([GHK17a, Prop. 3.2]), with measured rounds `2·C`;
//! * [`distributed_phased_fix`] — the same compilation executed as real
//!   message passing through [`local_runtime::run_local`], bit-identical
//!   to [`phased_fix`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod estimator;
mod fixer;
mod local_fixer;

pub use estimator::{chernoff_t, ColoringEstimator, FixerState};
pub use fixer::{phased_fix, sequential_fix, sequential_fix_identity, FixOutcome};
pub use local_fixer::distributed_phased_fix;
