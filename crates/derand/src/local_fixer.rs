//! The conditional-expectation fixer as a genuine message-passing LOCAL
//! program.
//!
//! [`crate::phased_fix`] computes the compiled schedule centrally (the
//! loop structure mirrors the phases exactly). This module runs the *same*
//! algorithm through [`local_runtime::run_local`] as real node programs:
//! in phase `p`, constraints broadcast their estimator state (per-color
//! base values and unfixed counts — one LOCAL message), and the variables
//! of square-color class `p` pick the `Φ`-minimizing color and announce it.
//! Because same-class variables share no constraint, their greedy choices
//! commute, and the outputs are *bit-identical* to [`crate::phased_fix`] —
//! the cross-validation test below asserts exactly that.

use crate::estimator::ColoringEstimator;
use crate::fixer::FixOutcome;
use local_runtime::{run_local, NodeContext, NodeProgram, BROADCAST};
use splitgraph::{BipartiteGraph, MultiColor};
use std::rc::Rc;

/// Messages exchanged by the distributed fixer.
#[derive(Debug, Clone)]
enum Msg {
    /// Constraint → variables: per-color base values and the unfixed count.
    State { bases: Rc<[f64]>, unfixed: usize },
    /// Variable → constraints: the chosen color.
    Decide(MultiColor),
}

/// Node roles share one program struct.
struct Fixer {
    est: Rc<ColoringEstimator>,
    is_constraint: bool,
    /// variable: its square-coloring class; constraint: unused
    class: u32,
    palette_classes: u32,
    phase: u32,
    step: u8,
    /// constraint state: per-color fixed counts + unfixed neighbors
    counts: Vec<u32>,
    unfixed: usize,
    /// constraint id (for base lookups)
    cid: usize,
    /// variable state: received constraint states this phase
    inbox_states: Vec<(Rc<[f64]>, usize)>,
    /// variable output
    color: MultiColor,
    decided: bool,
}

impl Fixer {
    fn constraint_bases(&self) -> Rc<[f64]> {
        (0..self.est.palette())
            .map(|x| self.est.base(self.cid, self.counts[x as usize]))
            .collect::<Vec<f64>>()
            .into()
    }
}

impl NodeProgram for Fixer {
    type Msg = Msg;
    type Output = (MultiColor, bool);

    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, Msg)> {
        if self.is_constraint {
            self.unfixed = ctx.degree;
            vec![(
                BROADCAST,
                Msg::State {
                    bases: self.constraint_bases(),
                    unfixed: self.unfixed,
                },
            )]
        } else {
            vec![]
        }
    }

    fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, Msg)]) -> Vec<(usize, Msg)> {
        self.step += 1;
        let odd = self.step % 2 == 1; // odd steps: variables act on states
        if self.is_constraint {
            if odd {
                // nothing to do: wait for decisions
                return vec![];
            }
            // apply decisions, then publish the refreshed state
            for (_, m) in inbox {
                if let Msg::Decide(x) = m {
                    self.counts[*x as usize] += 1;
                    self.unfixed -= 1;
                }
            }
            self.phase += 1;
            if self.phase >= self.palette_classes {
                return vec![];
            }
            vec![(
                BROADCAST,
                Msg::State {
                    bases: self.constraint_bases(),
                    unfixed: self.unfixed,
                },
            )]
        } else {
            if !odd {
                return vec![];
            }
            // collect constraint states; decide if this is our class
            self.inbox_states = inbox
                .iter()
                .filter_map(|(_, m)| match m {
                    Msg::State { bases, unfixed } => Some((bases.clone(), *unfixed)),
                    Msg::Decide(_) => None,
                })
                .collect();
            if self.decided || self.phase != self.class {
                self.phase += 1;
                return vec![];
            }
            // greedy choice: minimize Σ_u φ'_u over the candidates
            let factor = self.est.factor();
            let step_f = self.est.step();
            let mut best = 0u32;
            let mut best_score = f64::INFINITY;
            for x in 0..self.est.palette() {
                let score: f64 = self
                    .inbox_states
                    .iter()
                    .map(|(bases, unfixed)| {
                        let sum: f64 = bases.iter().sum();
                        let old = bases[x as usize];
                        let new = if step_f == 0.0 { 0.0 } else { old * step_f };
                        factor.powi(*unfixed as i32 - 1) * (sum - old + new)
                    })
                    .sum();
                if score < best_score {
                    best_score = score;
                    best = x;
                }
            }
            self.color = best;
            self.decided = true;
            self.phase += 1;
            vec![(BROADCAST, Msg::Decide(best))]
        }
    }

    fn is_done(&self) -> bool {
        self.phase >= self.palette_classes
    }

    fn output(&self) -> (MultiColor, bool) {
        (self.color, self.decided)
    }
}

/// Runs the compiled fixer as real message passing on the flattened host
/// graph of `b`. Outputs match [`crate::phased_fix`] exactly; measured
/// rounds are `2 × palette` (plus nothing — init is round 0).
///
/// # Panics
///
/// Panics if the square coloring violates the scheduling precondition or
/// lengths mismatch.
pub fn distributed_phased_fix(
    b: &BipartiteGraph,
    est: ColoringEstimator,
    square_coloring: &[u32],
    palette: u32,
) -> FixOutcome {
    assert_eq!(
        square_coloring.len(),
        b.right_count(),
        "square coloring length mismatch"
    );
    // same scheduling precondition (and stamp-pass check) as the central fixer
    crate::fixer::verify_schedule(b, square_coloring);
    let est = Rc::new(est);
    let g = b.to_graph();
    let ids: Vec<u64> = (0..g.node_count() as u64).collect();
    let left = b.left_count();

    // initial Φ for the certificate (same quantity the central fixer uses)
    let initial_phi: f64 = (0..b.left_count())
        .map(|u| est.factor().powi(b.left_degree(u) as i32) * est.palette() as f64 * est.base(u, 0))
        .sum();

    let est2 = est.clone();
    let run = run_local(&g, &ids, 2 * palette as usize + 2, move |ctx| Fixer {
        est: est2.clone(),
        is_constraint: ctx.node < left,
        class: if ctx.node < left {
            0
        } else {
            square_coloring[ctx.node - left]
        },
        palette_classes: palette,
        phase: 0,
        step: 0,
        counts: vec![0; est2.palette() as usize],
        unfixed: 0,
        cid: if ctx.node < left { ctx.node } else { 0 },
        inbox_states: Vec::new(),
        color: 0,
        decided: false,
    });
    assert!(run.completed, "fixer must finish within 2·palette rounds");
    let colors: Vec<MultiColor> = run.outputs[left..].iter().map(|&(c, _)| c).collect();
    debug_assert!(
        run.outputs[left..]
            .iter()
            .all(|&(_, d)| d || b.right_count() == 0),
        "every variable must decide"
    );

    // final Φ re-evaluated centrally (for the FixOutcome contract)
    let mut state = crate::estimator::FixerState::new(b, (*est).clone());
    for (v, &x) in colors.iter().enumerate() {
        state.fix(v, x);
    }
    FixOutcome {
        colors,
        initial_phi,
        final_phi: state.total(),
        rounds: run.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixer::phased_fix;
    use local_coloring::greedy_sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::{generators, right_square, Color};

    fn schedule(b: &BipartiteGraph) -> (Vec<u32>, u32) {
        let sq = right_square(b);
        let order: Vec<usize> = (0..sq.node_count()).collect();
        let colors = greedy_sequential(&sq, &order);
        let palette = colors.iter().copied().max().map_or(1, |c| c + 1);
        (colors, palette)
    }

    #[test]
    fn matches_central_phased_fix_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = generators::random_left_regular(40, 80, 14, &mut rng).unwrap();
        let (sched, palette) = schedule(&b);
        let central = phased_fix(&b, ColoringEstimator::monochromatic(&b), &sched, palette);
        let distributed =
            distributed_phased_fix(&b, ColoringEstimator::monochromatic(&b), &sched, palette);
        assert_eq!(
            central.colors, distributed.colors,
            "identical greedy choices"
        );
        assert_eq!(distributed.rounds, 2 * palette as usize);
        assert!((central.initial_phi - distributed.initial_phi).abs() < 1e-9);
    }

    #[test]
    fn solves_weak_splitting_distributedly() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = generators::random_left_regular(60, 120, 16, &mut rng).unwrap();
        let (sched, palette) = schedule(&b);
        let out = distributed_phased_fix(&b, ColoringEstimator::monochromatic(&b), &sched, palette);
        assert!(out.initial_phi < 1.0);
        assert!(out.final_phi < 1.0);
        let colors: Vec<Color> = out
            .colors
            .iter()
            .map(|&x| if x == 0 { Color::Red } else { Color::Blue })
            .collect();
        assert!(is_weak_splitting(&b, &colors, 0));
    }

    #[test]
    fn multicolor_estimator_also_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_left_regular(24, 96, 48, &mut rng).unwrap();
        let (sched, palette) = schedule(&b);
        let est = ColoringEstimator::missing_color(&b, 5);
        let central = phased_fix(&b, est.clone(), &sched, palette);
        let distributed = distributed_phased_fix(&b, est, &sched, palette);
        assert_eq!(central.colors, distributed.colors);
    }
}
