//! Pessimistic estimators in product form.
//!
//! All derandomizations in the paper ([GHK16]-style, used by Lemma 2.1,
//! Lemma 3.1, Theorems 3.2/3.3 and Section 4) share one shape: variables
//! (right-side nodes) pick colors uniformly from a palette of size `C`, and
//! each constraint `u` fails with small probability. The failure estimators
//! used here all decompose as
//!
//! ```text
//! φ_u = factor^{m_u} · Σ_x base_u · step^{F_{u,x}}
//! ```
//!
//! where `m_u` counts `u`'s unfixed neighbors and `F_{u,x}` its fixed
//! neighbors of color `x`. Crucially, the uniform average over the next
//! fixed color satisfies `(1/C)·Σ_x φ'_u(x) = φ_u` exactly (because
//! `(C − 1 + step)/C = factor`), so greedily picking the minimizing color
//! never increases `Φ = Σ_u φ_u` — the method of conditional expectations.
//! At a full assignment every violated constraint contributes at least 1 to
//! `Φ`, so `Φ_initial < 1` certifies success.
//!
//! Instantiations:
//!
//! * [`ColoringEstimator::monochromatic`] — weak splitting (Lemma 2.1):
//!   `C = 2`, `φ_u` = number of colors absent from `u`'s neighborhood,
//!   damped by `2^{-m}`;
//! * [`ColoringEstimator::missing_color`] — C-weak multicolor splitting
//!   (Theorem 3.2): expected number of missing colors;
//! * [`ColoringEstimator::overload`] — (C, λ)-multicolor splitting and
//!   uniform splitting (Theorem 3.3, Section 4): per-color Chernoff/MGF
//!   upper-tail bound `e^{t(F − cap − 1)}·E[e^{t·future}]`.
//!
//! # Incremental engine
//!
//! [`FixerState`] is the hot path of every deterministic pipeline, so it is
//! organized around flat, cache-friendly state: the per-constraint ×
//! per-color fixed counts live in one flat `|U| × C` array, the variable →
//! constraint incidence is a flat [`splitgraph::csr::Csr`] built once at
//! construction, and all `factor^k` / `step^k` powers are precomputed into
//! tables (entry `k` is exactly `x.powi(k)`, so lookups are bit-identical
//! to the naive evaluation they replace). The total `Φ` is additionally
//! maintained incrementally under [`FixerState::commit`] — only the
//! touched constraint's `φ_u` is re-evaluated — with a periodic
//! full-recompute guard against floating-point drift (see
//! [`FixerState::tracked_total`]).

use splitgraph::csr::Csr;
use splitgraph::BipartiteGraph;

/// A product-form pessimistic estimator over a bipartite instance.
#[derive(Debug, Clone)]
pub struct ColoringEstimator {
    palette: u32,
    factor: f64,
    step: f64,
    base_zero: Vec<f64>,
    /// Constraints explicitly marked by [`ColoringEstimator::exempt`].
    /// Tracked as flags rather than by testing `base_zero == 0`: an
    /// extreme MGF parameter can *underflow* `base_zero` to `0.0` without
    /// any exemption, and those constraints must keep flowing through the
    /// full evaluation (where a saturated `step^F = ∞` turns their terms
    /// into `NaN`, exactly as the naive evaluation always behaved) instead
    /// of being skipped.
    exempt: Vec<bool>,
}

impl ColoringEstimator {
    /// Estimator for weak splitting: fails when a constraint sees only one
    /// color (Definition 1.1). `Φ_initial = Σ_u 2·2^{-deg(u)} < 1` whenever
    /// `deg(u) ≥ 2·log n` — exactly the Lemma 2.1 regime.
    pub fn monochromatic(b: &BipartiteGraph) -> Self {
        ColoringEstimator {
            palette: 2,
            factor: 0.5,
            step: 0.0,
            base_zero: vec![1.0; b.left_count()],
            exempt: vec![false; b.left_count()],
        }
    }

    /// Estimator for C-weak multicolor splitting: `φ_u` is the expected
    /// number of palette colors absent from `u`'s neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if `palette < 2`.
    pub fn missing_color(b: &BipartiteGraph, palette: u32) -> Self {
        assert!(palette >= 2, "palette must have at least two colors");
        ColoringEstimator {
            palette,
            factor: 1.0 - 1.0 / palette as f64,
            step: 0.0,
            base_zero: vec![1.0; b.left_count()],
            exempt: vec![false; b.left_count()],
        }
    }

    /// Estimator for per-color overload: constraint `u` fails if any color
    /// occurs more than `caps[u]` times among its neighbors. `t > 0` is the
    /// MGF parameter (see [`chernoff_t`] for the standard choice).
    ///
    /// # Panics
    ///
    /// Panics if `palette < 2`, `t ≤ 0`, or `caps.len() != b.left_count()`.
    pub fn overload(b: &BipartiteGraph, palette: u32, caps: &[usize], t: f64) -> Self {
        assert!(palette >= 2, "palette must have at least two colors");
        assert!(t > 0.0, "MGF parameter must be positive");
        assert_eq!(caps.len(), b.left_count(), "cap vector length mismatch");
        let et = t.exp();
        ColoringEstimator {
            palette,
            factor: 1.0 + (et - 1.0) / palette as f64,
            step: et,
            base_zero: caps
                .iter()
                .map(|&cap| (-t * (cap as f64 + 1.0)).exp())
                .collect(),
            exempt: vec![false; b.left_count()],
        }
    }

    /// Exempts constraint `u`: its `φ_u` becomes identically 0, so it never
    /// influences greedy choices (used for constraints that cannot be
    /// violated, e.g. uniform-splitting nodes below the degree floor whose
    /// cap equals their degree). [`FixerState`] skips exempt constraints
    /// entirely in its hot path.
    pub fn exempt(&mut self, u: usize) {
        self.base_zero[u] = 0.0;
        self.exempt[u] = true;
    }

    /// Whether constraint `u` was explicitly exempted (contributes
    /// identically 0).
    pub fn is_exempt(&self, u: usize) -> bool {
        self.exempt[u]
    }

    /// Palette size `C`.
    pub fn palette(&self) -> u32 {
        self.palette
    }

    /// The per-unfixed-variable damping factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The per-fixed-occurrence multiplicative step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// `base_u · step^F` — the contribution of one color with `F` fixed
    /// occurrences at constraint `u`.
    pub fn base(&self, u: usize, fixed: u32) -> f64 {
        if self.step == 0.0 {
            if fixed == 0 {
                self.base_zero[u]
            } else {
                0.0
            }
        } else {
            self.base_zero[u] * self.step.powi(fixed as i32)
        }
    }

    /// `φ_u` from the per-color fixed counts and the unfixed count.
    pub fn phi(&self, u: usize, fixed_counts: &[u32], unfixed: usize) -> f64 {
        debug_assert_eq!(fixed_counts.len(), self.palette as usize);
        let s: f64 = fixed_counts.iter().map(|&f| self.base(u, f)).sum();
        self.factor.powi(unfixed as i32) * s
    }
}

/// The standard Chernoff MGF parameter `t = ln(cap·C/d)` for bounding
/// `Pr[Bin(d, 1/C) > cap]`, clamped to be positive.
pub fn chernoff_t(cap: f64, palette: u32, degree: f64) -> f64 {
    ((cap * palette as f64 / degree.max(1.0)).ln()).max(0.05)
}

/// Recompute the tracked `Φ` from scratch after this many commits — the
/// guard bounding incremental floating-point drift. Commits total `m`
/// (one per edge), so the guard adds `O(m/interval · |U|)` work; with the
/// interval tied to `|U|` the whole-run overhead stays `O(m)`.
const REBASE_MIN_INTERVAL: usize = 64;

/// Incremental fixer state over a bipartite instance.
///
/// Per-constraint fixed counts (flat `|U| × C`), unfixed counts, running
/// base sums and `φ_u` values, backed by a flat CSR copy of the variable →
/// constraint incidence and precomputed `factor^k` / `step^k` power tables,
/// supporting O(1) re-evaluation of `φ_u` per candidate color with no
/// `powi`/`powf` in the inner loop. All arithmetic matches the naive
/// term-by-term evaluation bit for bit (power-table entries are built with
/// the same `powi` calls the naive path would make, and summation order is
/// preserved).
#[derive(Debug, Clone)]
pub struct FixerState {
    est: ColoringEstimator,
    /// Flat incidence: row `v` lists `v`'s constraints, ascending.
    var_rows: Csr,
    /// `F_{u,x}` — fixed neighbors of `u` with color `x`, at `u·C + x`.
    counts: Vec<u32>,
    /// `m_u` — unfixed neighbors of `u`.
    unfixed: Vec<u32>,
    /// `S_u = Σ_x base(u, F_{u,x})`.
    sums: Vec<f64>,
    /// `factor^k` for `k ≤ Δ + 1` (entry `k` is exactly `factor.powi(k)`).
    factor_pow: Vec<f64>,
    /// `step^k` for `k ≤ Δ + 1`; empty when `step == 0`.
    step_pow: Vec<f64>,
    /// Incrementally maintained `Φ` (see [`FixerState::tracked_total`]).
    tracked: f64,
    /// Commits since the last full recompute of `tracked`.
    commits_since_rebase: usize,
    /// Drift-guard interval (`max(REBASE_MIN_INTERVAL, |U|)`).
    rebase_interval: usize,
    /// Per-color score scratch for [`FixerState::best_color`].
    scores: Vec<f64>,
}

impl FixerState {
    /// Initializes the state for an instance where every variable is
    /// unfixed.
    pub fn new(b: &BipartiteGraph, est: ColoringEstimator) -> Self {
        let nu = b.left_count();
        let c = est.palette as usize;
        let max_deg = b.max_left_degree();
        // entry k is exactly x.powi(k): table lookups reproduce the naive
        // per-term powi evaluation bit for bit
        let factor_pow: Vec<f64> = (0..=max_deg as i32 + 1)
            .map(|k| est.factor.powi(k))
            .collect();
        let step_pow: Vec<f64> = if est.step == 0.0 {
            Vec::new()
        } else {
            (0..=max_deg as i32 + 1).map(|k| est.step.powi(k)).collect()
        };
        let unfixed: Vec<u32> = (0..nu).map(|u| b.left_degree(u) as u32).collect();
        let sums: Vec<f64> = (0..nu).map(|u| c as f64 * est.base(u, 0)).collect();
        let pairs: Vec<(usize, usize)> = b.edges().map(|(u, v)| (v, u)).collect();
        let var_rows = Csr::from_directed_pairs(b.right_count(), &pairs);
        let mut st = FixerState {
            est,
            var_rows,
            counts: vec![0u32; nu * c],
            unfixed,
            sums,
            factor_pow,
            step_pow,
            tracked: 0.0,
            commits_since_rebase: 0,
            rebase_interval: nu.max(REBASE_MIN_INTERVAL),
            scores: vec![0.0; c],
        };
        st.tracked = st.total();
        st
    }

    /// The estimator.
    pub fn estimator(&self) -> &ColoringEstimator {
        &self.est
    }

    /// `base_u · step^F` via the power tables (bit-identical to
    /// [`ColoringEstimator::base`]).
    #[inline]
    fn base_fast(&self, u: usize, fixed: u32) -> f64 {
        if self.est.step == 0.0 {
            if fixed == 0 {
                self.est.base_zero[u]
            } else {
                0.0
            }
        } else {
            self.est.base_zero[u] * self.step_pow[fixed as usize]
        }
    }

    /// Current `φ_u`.
    pub fn phi(&self, u: usize) -> f64 {
        self.factor_pow[self.unfixed[u] as usize] * self.sums[u]
    }

    /// Current total `Φ = Σ_u φ_u`, recomputed exactly from the
    /// per-constraint state.
    pub fn total(&self) -> f64 {
        (0..self.sums.len()).map(|u| self.phi(u)).sum()
    }

    /// The incrementally maintained `Φ`: updated in O(deg(v)) per
    /// [`FixerState::fix`] (only the affected constraints contribute
    /// deltas) instead of the O(|U|) full scan of [`FixerState::total`].
    /// A drift guard rebases it onto a full recompute every
    /// `max(64, |U|)` commits, keeping the accumulated floating-point
    /// error negligible (the parity suite checks agreement within 1e-9
    /// against a from-scratch reference at every step).
    ///
    /// This is the O(1) way to monitor the `Φ` trajectory mid-run (per
    /// step, where calling [`FixerState::total`] each time would cost
    /// O(|U|·nv) over a pass). The two certificate values in
    /// [`crate::FixOutcome`] intentionally do *not* use it: `initial_phi`
    /// and `final_phi` stay exact endpoint recomputes so they remain
    /// bit-compatible with the pre-incremental engine.
    pub fn tracked_total(&self) -> f64 {
        self.tracked
    }

    /// `φ_u` if one more neighbor were fixed to color `x`.
    pub fn phi_after(&self, u: usize, x: u32) -> f64 {
        let c = self.est.palette as usize;
        let f = self.counts[u * c + x as usize];
        let old = self.base_fast(u, f);
        let new = self.base_fast(u, f + 1);
        let factor = if self.unfixed[u] == 0 {
            // fully fixed constraint: keep the naive factor^{-1} semantics
            self.est.factor.powi(-1)
        } else {
            self.factor_pow[self.unfixed[u] as usize - 1]
        };
        factor * (self.sums[u] - old + new)
    }

    /// Commits color `x` for one neighbor of constraint `u`, updating the
    /// tracked `Φ` incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `u` has no unfixed neighbors left.
    pub fn commit(&mut self, u: usize, x: u32) {
        assert!(
            self.unfixed[u] > 0,
            "constraint {u} has no unfixed neighbors"
        );
        let phi_old = self.phi(u);
        let c = self.est.palette as usize;
        let idx = u * c + x as usize;
        let old = self.base_fast(u, self.counts[idx]);
        self.counts[idx] += 1;
        let new = self.base_fast(u, self.counts[idx]);
        self.sums[u] += new - old;
        self.unfixed[u] -= 1;
        self.tracked += self.phi(u) - phi_old;
        self.commits_since_rebase += 1;
        if self.commits_since_rebase >= self.rebase_interval {
            // drift guard: rebase the incremental Φ onto an exact recompute
            self.tracked = self.total();
            self.commits_since_rebase = 0;
        }
    }

    /// For variable `v`, the color minimizing the summed `φ'` over `v`'s
    /// constraints (ties break toward the smaller color).
    ///
    /// Iterates constraints in the outer loop so each constraint's flat
    /// count row is read once, contiguously; exempt constraints are skipped
    /// entirely (they contribute exactly 0 to every candidate).
    pub fn best_color(&mut self, v: usize) -> u32 {
        let FixerState {
            est,
            var_rows,
            counts,
            unfixed,
            sums,
            factor_pow,
            step_pow,
            scores,
            ..
        } = self;
        let c = est.palette as usize;
        scores.iter_mut().for_each(|s| *s = 0.0);
        for &u in var_rows.row(v) {
            if est.exempt[u] {
                continue; // exempt: adds exactly 0.0 to every candidate
            }
            let b0 = est.base_zero[u];
            let m = unfixed[u] as usize;
            let f = if m == 0 {
                est.factor.powi(-1)
            } else {
                factor_pow[m - 1]
            };
            let s = sums[u];
            let crow = &counts[u * c..(u + 1) * c];
            if est.step == 0.0 {
                // base(u, F) is b0 at F = 0 and 0 beyond, so the candidate
                // term is f·(S − [F = 0]·b0 + 0)
                for (score, &cnt) in scores.iter_mut().zip(crow) {
                    let old = if cnt == 0 { b0 } else { 0.0 };
                    *score += f * (s - old + 0.0);
                }
            } else {
                for (score, &cnt) in scores.iter_mut().zip(crow) {
                    let old = b0 * step_pow[cnt as usize];
                    let new = b0 * step_pow[cnt as usize + 1];
                    *score += f * (s - old + new);
                }
            }
        }
        let mut best = 0u32;
        let mut best_score = f64::INFINITY;
        for (x, &score) in scores.iter().enumerate() {
            if score < best_score {
                best_score = score;
                best = x as u32;
            }
        }
        best
    }

    /// Fixes variable `v` to color `x`, updating all its constraints.
    pub fn fix(&mut self, v: usize, x: u32) {
        let row_len = self.var_rows.row_len(v);
        for i in 0..row_len {
            let u = self.var_rows.row(v)[i];
            self.commit(u, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitgraph::BipartiteGraph;

    fn one_constraint(degree: usize) -> BipartiteGraph {
        let edges: Vec<(usize, usize)> = (0..degree).map(|v| (0, v)).collect();
        BipartiteGraph::from_edges(1, degree, &edges).unwrap()
    }

    #[test]
    fn monochromatic_initial_value() {
        let b = one_constraint(4);
        let est = ColoringEstimator::monochromatic(&b);
        let st = FixerState::new(&b, est);
        // Φ = 2 · 2^{-4} = 0.125
        assert!((st.total() - 0.125).abs() < 1e-12);
        assert!((st.tracked_total() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn monochromatic_phi_reaches_one_on_failure() {
        let b = one_constraint(3);
        let mut st = FixerState::new(&b, ColoringEstimator::monochromatic(&b));
        for v in 0..3 {
            st.fix(v, 0); // all red
        }
        assert!(
            (st.phi(0) - 1.0).abs() < 1e-12,
            "violated constraint must contribute 1"
        );
    }

    #[test]
    fn monochromatic_phi_vanishes_on_success() {
        let b = one_constraint(3);
        let mut st = FixerState::new(&b, ColoringEstimator::monochromatic(&b));
        st.fix(0, 0);
        st.fix(1, 1);
        st.fix(2, 0);
        assert_eq!(st.phi(0), 0.0);
    }

    #[test]
    fn greedy_average_equals_phi() {
        // the conditional-expectation identity: mean over colors of φ' = φ
        let b = one_constraint(5);
        for est in [
            ColoringEstimator::monochromatic(&b),
            ColoringEstimator::missing_color(&b, 7),
            ColoringEstimator::overload(&b, 3, &[2], 0.9),
        ] {
            let c = est.palette();
            let mut st = FixerState::new(&b, est);
            st.fix(0, 0); // make the state non-trivial
            let phi = st.phi(0);
            let mean: f64 = (0..c).map(|x| st.phi_after(0, x)).sum::<f64>() / c as f64;
            assert!(
                (mean - phi).abs() < 1e-9 * phi.max(1.0),
                "mean {mean} vs φ {phi}"
            );
        }
    }

    #[test]
    fn greedy_choice_never_increases_phi() {
        let b = one_constraint(6);
        let mut st = FixerState::new(&b, ColoringEstimator::missing_color(&b, 3));
        let mut last = st.total();
        for v in 0..6 {
            let x = st.best_color(v);
            st.fix(v, x);
            let now = st.total();
            assert!(now <= last + 1e-12, "Φ increased: {last} → {now}");
            last = now;
        }
    }

    #[test]
    fn tracked_total_follows_exact_total() {
        let b = one_constraint(8);
        let mut st = FixerState::new(&b, ColoringEstimator::overload(&b, 3, &[4], 0.7));
        for v in 0..8 {
            let x = st.best_color(v);
            st.fix(v, x);
            assert!(
                (st.tracked_total() - st.total()).abs() <= 1e-9 * st.total().max(1.0),
                "tracked {} vs exact {}",
                st.tracked_total(),
                st.total()
            );
        }
    }

    #[test]
    fn overload_counts_violations_at_completion() {
        let b = one_constraint(4);
        // cap 2, so three of one color violate
        let est = ColoringEstimator::overload(&b, 2, &[2], 1.0);
        let mut st = FixerState::new(&b, est);
        for v in 0..3 {
            st.fix(v, 0);
        }
        st.fix(3, 1);
        assert!(
            st.phi(0) >= 1.0,
            "violation must contribute at least 1, got {}",
            st.phi(0)
        );
    }

    #[test]
    fn overload_small_when_satisfied() {
        let b = one_constraint(4);
        let est = ColoringEstimator::overload(&b, 2, &[3], 1.0);
        let mut st = FixerState::new(&b, est);
        st.fix(0, 0);
        st.fix(1, 0);
        st.fix(2, 1);
        st.fix(3, 1);
        assert!(st.phi(0) < 1.0);
    }

    #[test]
    fn exempt_constraints_contribute_zero() {
        let b = one_constraint(3);
        let mut est = ColoringEstimator::overload(&b, 2, &[0], 1.0);
        est.exempt(0);
        assert!(est.is_exempt(0));
        let mut st = FixerState::new(&b, est);
        assert_eq!(st.total(), 0.0);
        st.fix(0, 0);
        st.fix(1, 0);
        assert_eq!(st.phi(0), 0.0, "exempt constraint stays at zero");
        assert_eq!(st.tracked_total(), 0.0);
    }

    #[test]
    fn chernoff_t_positive() {
        assert!(chernoff_t(10.0, 4, 100.0) > 0.0);
        assert!(chernoff_t(1.0, 2, 1000.0) >= 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn missing_color_rejects_tiny_palette() {
        let b = one_constraint(2);
        let _ = ColoringEstimator::missing_color(&b, 1);
    }
}
