//! Pessimistic estimators in product form.
//!
//! All derandomizations in the paper ([GHK16]-style, used by Lemma 2.1,
//! Lemma 3.1, Theorems 3.2/3.3 and Section 4) share one shape: variables
//! (right-side nodes) pick colors uniformly from a palette of size `C`, and
//! each constraint `u` fails with small probability. The failure estimators
//! used here all decompose as
//!
//! ```text
//! φ_u = factor^{m_u} · Σ_x base_u · step^{F_{u,x}}
//! ```
//!
//! where `m_u` counts `u`'s unfixed neighbors and `F_{u,x}` its fixed
//! neighbors of color `x`. Crucially, the uniform average over the next
//! fixed color satisfies `(1/C)·Σ_x φ'_u(x) = φ_u` exactly (because
//! `(C − 1 + step)/C = factor`), so greedily picking the minimizing color
//! never increases `Φ = Σ_u φ_u` — the method of conditional expectations.
//! At a full assignment every violated constraint contributes at least 1 to
//! `Φ`, so `Φ_initial < 1` certifies success.
//!
//! Instantiations:
//!
//! * [`ColoringEstimator::monochromatic`] — weak splitting (Lemma 2.1):
//!   `C = 2`, `φ_u` = number of colors absent from `u`'s neighborhood,
//!   damped by `2^{-m}`;
//! * [`ColoringEstimator::missing_color`] — C-weak multicolor splitting
//!   (Theorem 3.2): expected number of missing colors;
//! * [`ColoringEstimator::overload`] — (C, λ)-multicolor splitting and
//!   uniform splitting (Theorem 3.3, Section 4): per-color Chernoff/MGF
//!   upper-tail bound `e^{t(F − cap − 1)}·E[e^{t·future}]`.

use splitgraph::BipartiteGraph;

/// A product-form pessimistic estimator over a bipartite instance.
#[derive(Debug, Clone)]
pub struct ColoringEstimator {
    palette: u32,
    factor: f64,
    step: f64,
    base_zero: Vec<f64>,
}

impl ColoringEstimator {
    /// Estimator for weak splitting: fails when a constraint sees only one
    /// color (Definition 1.1). `Φ_initial = Σ_u 2·2^{-deg(u)} < 1` whenever
    /// `deg(u) ≥ 2·log n` — exactly the Lemma 2.1 regime.
    pub fn monochromatic(b: &BipartiteGraph) -> Self {
        ColoringEstimator {
            palette: 2,
            factor: 0.5,
            step: 0.0,
            base_zero: vec![1.0; b.left_count()],
        }
    }

    /// Estimator for C-weak multicolor splitting: `φ_u` is the expected
    /// number of palette colors absent from `u`'s neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if `palette < 2`.
    pub fn missing_color(b: &BipartiteGraph, palette: u32) -> Self {
        assert!(palette >= 2, "palette must have at least two colors");
        ColoringEstimator {
            palette,
            factor: 1.0 - 1.0 / palette as f64,
            step: 0.0,
            base_zero: vec![1.0; b.left_count()],
        }
    }

    /// Estimator for per-color overload: constraint `u` fails if any color
    /// occurs more than `caps[u]` times among its neighbors. `t > 0` is the
    /// MGF parameter (see [`chernoff_t`] for the standard choice).
    ///
    /// # Panics
    ///
    /// Panics if `palette < 2`, `t ≤ 0`, or `caps.len() != b.left_count()`.
    pub fn overload(b: &BipartiteGraph, palette: u32, caps: &[usize], t: f64) -> Self {
        assert!(palette >= 2, "palette must have at least two colors");
        assert!(t > 0.0, "MGF parameter must be positive");
        assert_eq!(caps.len(), b.left_count(), "cap vector length mismatch");
        let et = t.exp();
        ColoringEstimator {
            palette,
            factor: 1.0 + (et - 1.0) / palette as f64,
            step: et,
            base_zero: caps
                .iter()
                .map(|&cap| (-t * (cap as f64 + 1.0)).exp())
                .collect(),
        }
    }

    /// Exempts constraint `u`: its `φ_u` becomes identically 0, so it never
    /// influences greedy choices (used for constraints that cannot be
    /// violated, e.g. uniform-splitting nodes below the degree floor whose
    /// cap equals their degree).
    pub fn exempt(&mut self, u: usize) {
        self.base_zero[u] = 0.0;
    }

    /// Palette size `C`.
    pub fn palette(&self) -> u32 {
        self.palette
    }

    /// The per-unfixed-variable damping factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The per-fixed-occurrence multiplicative step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// `base_u · step^F` — the contribution of one color with `F` fixed
    /// occurrences at constraint `u`.
    pub fn base(&self, u: usize, fixed: u32) -> f64 {
        if self.step == 0.0 {
            if fixed == 0 {
                self.base_zero[u]
            } else {
                0.0
            }
        } else {
            self.base_zero[u] * self.step.powi(fixed as i32)
        }
    }

    /// `φ_u` from the per-color fixed counts and the unfixed count.
    pub fn phi(&self, u: usize, fixed_counts: &[u32], unfixed: usize) -> f64 {
        debug_assert_eq!(fixed_counts.len(), self.palette as usize);
        let s: f64 = fixed_counts.iter().map(|&f| self.base(u, f)).sum();
        self.factor.powi(unfixed as i32) * s
    }
}

/// The standard Chernoff MGF parameter `t = ln(cap·C/d)` for bounding
/// `Pr[Bin(d, 1/C) > cap]`, clamped to be positive.
pub fn chernoff_t(cap: f64, palette: u32, degree: f64) -> f64 {
    ((cap * palette as f64 / degree.max(1.0)).ln()).max(0.05)
}

/// Incremental fixer state: per-constraint fixed counts, unfixed counts and
/// running base sums, supporting O(1) re-evaluation of `φ_u` per candidate.
#[derive(Debug, Clone)]
pub struct FixerState {
    est: ColoringEstimator,
    /// `F_{u,x}` — fixed neighbors of `u` with color `x`.
    counts: Vec<Vec<u32>>,
    /// `m_u` — unfixed neighbors of `u`.
    unfixed: Vec<usize>,
    /// `S_u = Σ_x base(u, F_{u,x})`.
    sums: Vec<f64>,
}

impl FixerState {
    /// Initializes the state for an instance where every variable is
    /// unfixed.
    pub fn new(b: &BipartiteGraph, est: ColoringEstimator) -> Self {
        let c = est.palette as usize;
        let counts = vec![vec![0u32; c]; b.left_count()];
        let unfixed: Vec<usize> = (0..b.left_count()).map(|u| b.left_degree(u)).collect();
        let sums: Vec<f64> = (0..b.left_count())
            .map(|u| c as f64 * est.base(u, 0))
            .collect();
        FixerState {
            est,
            counts,
            unfixed,
            sums,
        }
    }

    /// The estimator.
    pub fn estimator(&self) -> &ColoringEstimator {
        &self.est
    }

    /// Current `φ_u`.
    pub fn phi(&self, u: usize) -> f64 {
        self.est.factor.powi(self.unfixed[u] as i32) * self.sums[u]
    }

    /// Current total `Φ = Σ_u φ_u`.
    pub fn total(&self) -> f64 {
        (0..self.sums.len()).map(|u| self.phi(u)).sum()
    }

    /// `φ_u` if one more neighbor were fixed to color `x`.
    pub fn phi_after(&self, u: usize, x: u32) -> f64 {
        let old = self.est.base(u, self.counts[u][x as usize]);
        let new = self.est.base(u, self.counts[u][x as usize] + 1);
        self.est.factor.powi(self.unfixed[u] as i32 - 1) * (self.sums[u] - old + new)
    }

    /// Commits color `x` for one neighbor of constraint `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` has no unfixed neighbors left.
    pub fn commit(&mut self, u: usize, x: u32) {
        assert!(
            self.unfixed[u] > 0,
            "constraint {u} has no unfixed neighbors"
        );
        let old = self.est.base(u, self.counts[u][x as usize]);
        self.counts[u][x as usize] += 1;
        let new = self.est.base(u, self.counts[u][x as usize]);
        self.sums[u] += new - old;
        self.unfixed[u] -= 1;
    }

    /// For variable `v` of instance `b`, the color minimizing the summed
    /// `φ'` over `v`'s constraints (ties break toward the smaller color).
    pub fn best_color(&self, b: &BipartiteGraph, v: usize) -> u32 {
        let mut best = 0u32;
        let mut best_score = f64::INFINITY;
        for x in 0..self.est.palette {
            let score: f64 = b
                .right_neighbors(v)
                .iter()
                .map(|&u| self.phi_after(u, x))
                .sum();
            if score < best_score {
                best_score = score;
                best = x;
            }
        }
        best
    }

    /// Fixes variable `v` of `b` to color `x`, updating all its constraints.
    pub fn fix(&mut self, b: &BipartiteGraph, v: usize, x: u32) {
        for &u in b.right_neighbors(v) {
            self.commit(u, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitgraph::BipartiteGraph;

    fn one_constraint(degree: usize) -> BipartiteGraph {
        let edges: Vec<(usize, usize)> = (0..degree).map(|v| (0, v)).collect();
        BipartiteGraph::from_edges(1, degree, &edges).unwrap()
    }

    #[test]
    fn monochromatic_initial_value() {
        let b = one_constraint(4);
        let est = ColoringEstimator::monochromatic(&b);
        let st = FixerState::new(&b, est);
        // Φ = 2 · 2^{-4} = 0.125
        assert!((st.total() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn monochromatic_phi_reaches_one_on_failure() {
        let b = one_constraint(3);
        let mut st = FixerState::new(&b, ColoringEstimator::monochromatic(&b));
        for v in 0..3 {
            st.fix(&b, v, 0); // all red
        }
        assert!(
            (st.phi(0) - 1.0).abs() < 1e-12,
            "violated constraint must contribute 1"
        );
    }

    #[test]
    fn monochromatic_phi_vanishes_on_success() {
        let b = one_constraint(3);
        let mut st = FixerState::new(&b, ColoringEstimator::monochromatic(&b));
        st.fix(&b, 0, 0);
        st.fix(&b, 1, 1);
        st.fix(&b, 2, 0);
        assert_eq!(st.phi(0), 0.0);
    }

    #[test]
    fn greedy_average_equals_phi() {
        // the conditional-expectation identity: mean over colors of φ' = φ
        let b = one_constraint(5);
        for est in [
            ColoringEstimator::monochromatic(&b),
            ColoringEstimator::missing_color(&b, 7),
            ColoringEstimator::overload(&b, 3, &[2], 0.9),
        ] {
            let c = est.palette();
            let mut st = FixerState::new(&b, est);
            st.fix(&b, 0, 0); // make the state non-trivial
            let phi = st.phi(0);
            let mean: f64 = (0..c).map(|x| st.phi_after(0, x)).sum::<f64>() / c as f64;
            assert!(
                (mean - phi).abs() < 1e-9 * phi.max(1.0),
                "mean {mean} vs φ {phi}"
            );
        }
    }

    #[test]
    fn greedy_choice_never_increases_phi() {
        let b = one_constraint(6);
        let mut st = FixerState::new(&b, ColoringEstimator::missing_color(&b, 3));
        let mut last = st.total();
        for v in 0..6 {
            let x = st.best_color(&b, v);
            st.fix(&b, v, x);
            let now = st.total();
            assert!(now <= last + 1e-12, "Φ increased: {last} → {now}");
            last = now;
        }
    }

    #[test]
    fn overload_counts_violations_at_completion() {
        let b = one_constraint(4);
        // cap 2, so three of one color violate
        let est = ColoringEstimator::overload(&b, 2, &[2], 1.0);
        let mut st = FixerState::new(&b, est);
        for v in 0..3 {
            st.fix(&b, v, 0);
        }
        st.fix(&b, 3, 1);
        assert!(
            st.phi(0) >= 1.0,
            "violation must contribute at least 1, got {}",
            st.phi(0)
        );
    }

    #[test]
    fn overload_small_when_satisfied() {
        let b = one_constraint(4);
        let est = ColoringEstimator::overload(&b, 2, &[3], 1.0);
        let mut st = FixerState::new(&b, est);
        st.fix(&b, 0, 0);
        st.fix(&b, 1, 0);
        st.fix(&b, 2, 1);
        st.fix(&b, 3, 1);
        assert!(st.phi(0) < 1.0);
    }

    #[test]
    fn exempt_constraints_contribute_zero() {
        let b = one_constraint(3);
        let mut est = ColoringEstimator::overload(&b, 2, &[0], 1.0);
        est.exempt(0);
        let mut st = FixerState::new(&b, est);
        assert_eq!(st.total(), 0.0);
        st.fix(&b, 0, 0);
        st.fix(&b, 1, 0);
        assert_eq!(st.phi(0), 0.0, "exempt constraint stays at zero");
    }

    #[test]
    fn chernoff_t_positive() {
        assert!(chernoff_t(10.0, 4, 100.0) > 0.0);
        assert!(chernoff_t(1.0, 2, 1000.0) >= 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn missing_color_rejects_tiny_palette() {
        let b = one_constraint(2);
        let _ = ColoringEstimator::missing_color(&b, 1);
    }
}
