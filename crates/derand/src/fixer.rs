//! The method of conditional expectations, in SLOCAL and LOCAL form.
//!
//! * [`sequential_fix`] processes the variables in an arbitrary order — this
//!   is the SLOCAL(2) algorithm produced by [GHK16, Theorem III.1]: a
//!   variable's greedy choice reads only the states of its constraints
//!   (distance 1) and their fixed neighbors (distance 2).
//! * [`phased_fix`] is the SLOCAL→LOCAL compilation of
//!   [GHK17a, Prop. 3.2] as used by Lemma 2.1 and Theorem 3.2: given a
//!   proper coloring of the *variable square* (variables sharing a
//!   constraint get distinct colors), all variables of one color class
//!   decide simultaneously — they share no constraint, so their greedy
//!   choices commute and `Φ` still never increases. Each class costs 2
//!   LOCAL rounds (constraints publish their counts; variables announce
//!   their choice), for `2·C` measured rounds total.
//!
//! Both fixers run on the incremental [`FixerState`] engine: scheduling
//! preconditions are verified by a linear stamp pass (not a pairwise scan),
//! class buckets come from one counting sort over the square coloring
//! (`O(nv + palette)`, not `O(nv·palette)`), and the greedy inner loop is
//! table-driven with no `powi` — see the [`crate::estimator`] module docs.

use crate::estimator::{ColoringEstimator, FixerState};
use splitgraph::{BipartiteGraph, MultiColor};

/// Commit-loop stride between cooperative cancellation checkpoints
/// ([`local_runtime::checkpoint`]). Checkpoints never touch fixer
/// state, so results stay bit-identical whether or not a
/// [`local_runtime::CancelToken`] is installed; the stride keeps the
/// thread-local read off the per-variable hot path.
const CANCEL_STRIDE: usize = 4096;

/// Outcome of a derandomized fixing pass.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The chosen color per variable.
    pub colors: Vec<MultiColor>,
    /// `Φ` before any variable was fixed (< 1 certifies success).
    pub initial_phi: f64,
    /// `Φ` after all variables were fixed (number of violated constraints
    /// is at most this).
    pub final_phi: f64,
    /// Measured LOCAL rounds (0 for the sequential SLOCAL form).
    pub rounds: usize,
}

/// Runs the sequential (SLOCAL(2)) conditional-expectation fixer over the
/// variables of `b` in `order`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the variables.
pub fn sequential_fix(b: &BipartiteGraph, est: ColoringEstimator, order: &[usize]) -> FixOutcome {
    let nv = b.right_count();
    assert_eq!(order.len(), nv, "order must cover every variable");
    {
        let mut seen = vec![false; nv];
        for &v in order {
            assert!(
                v < nv && !seen[v],
                "order must be a permutation of the variables"
            );
            seen[v] = true;
        }
    }
    let mut state = FixerState::new(b, est);
    let initial_phi = state.total();
    let mut colors = vec![0 as MultiColor; nv];
    for (i, &v) in order.iter().enumerate() {
        if i % CANCEL_STRIDE == 0 {
            local_runtime::checkpoint();
        }
        let x = state.best_color(v);
        state.fix(v, x);
        colors[v] = x;
    }
    FixOutcome {
        colors,
        initial_phi,
        final_phi: state.total(),
        rounds: 0,
    }
}

/// [`sequential_fix`] over the identity order `0, 1, …, nv − 1` — the
/// common case in the theorem pipelines, without materializing (or
/// re-validating) an explicit permutation.
pub fn sequential_fix_identity(b: &BipartiteGraph, est: ColoringEstimator) -> FixOutcome {
    let nv = b.right_count();
    let mut state = FixerState::new(b, est);
    let initial_phi = state.total();
    let mut colors = vec![0 as MultiColor; nv];
    for (v, slot) in colors.iter_mut().enumerate() {
        if v % CANCEL_STRIDE == 0 {
            local_runtime::checkpoint();
        }
        let x = state.best_color(v);
        state.fix(v, x);
        *slot = x;
    }
    FixOutcome {
        colors,
        initial_phi,
        final_phi: state.total(),
        rounds: 0,
    }
}

/// Verifies the scheduling precondition (same-class variables share no
/// constraint) with one linear stamp pass: per class, remember the last
/// constraint that saw it and which variable carried it — a repeat within
/// the same constraint is a violation. `O(Σ deg(u) + classes)` instead of
/// the pairwise `O(Σ deg(u)²)` scan.
pub(crate) fn verify_schedule(b: &BipartiteGraph, square_coloring: &[u32]) {
    let classes = square_coloring
        .iter()
        .copied()
        .max()
        .map_or(0, |c| c as usize + 1);
    let mut last_seen_constraint = vec![usize::MAX; classes];
    let mut last_seen_var = vec![0usize; classes];
    for u in 0..b.left_count() {
        for &w in b.left_neighbors(u) {
            let class = square_coloring[w] as usize;
            if last_seen_constraint[class] == u {
                let v = last_seen_var[class];
                assert_ne!(
                    square_coloring[v], square_coloring[w],
                    "variables {v} and {w} share constraint {u} but have the same class"
                );
            }
            last_seen_constraint[class] = u;
            last_seen_var[class] = w;
        }
    }
}

/// Runs the LOCAL-compiled fixer: variables decide in phases given by
/// `square_coloring`, a proper coloring (palette size `palette`) of the
/// variable square of `b` (variables sharing a constraint must have
/// different colors — e.g. from [`splitgraph::right_square`] +
/// `local_coloring::color_power`).
///
/// Measured rounds are `2 × palette` (each phase: constraints publish
/// counts, the class announces choices).
///
/// # Panics
///
/// Panics if the coloring length mismatches or two variables sharing a
/// constraint have the same color.
pub fn phased_fix(
    b: &BipartiteGraph,
    est: ColoringEstimator,
    square_coloring: &[u32],
    palette: u32,
) -> FixOutcome {
    let nv = b.right_count();
    assert_eq!(square_coloring.len(), nv, "square coloring length mismatch");
    verify_schedule(b, square_coloring);
    // counting-sort the variables into class buckets once: deciders of
    // class p are the slice bucket[offsets[p]..offsets[p + 1]], ascending
    // (classes ≥ palette fall outside the compiled schedule and never
    // decide, exactly as before)
    let np = palette as usize;
    let mut offsets = vec![0usize; np + 1];
    for &class in square_coloring {
        if (class as usize) < np {
            offsets[class as usize + 1] += 1;
        }
    }
    for p in 0..np {
        offsets[p + 1] += offsets[p];
    }
    let mut bucket = vec![0usize; offsets[np]];
    let mut cursor = offsets.clone();
    for (v, &class) in square_coloring.iter().enumerate() {
        if (class as usize) < np {
            bucket[cursor[class as usize]] = v;
            cursor[class as usize] += 1;
        }
    }

    let mut state = FixerState::new(b, est);
    let initial_phi = state.total();
    let mut colors = vec![0 as MultiColor; nv];
    let mut rounds = 0usize;
    let mut choices: Vec<u32> = Vec::new();
    for class in 0..np {
        local_runtime::checkpoint();
        // one phase: every variable of this class decides from the current
        // counts; commits are order-independent because the class is
        // constraint-disjoint (empty classes still cost their phase in the
        // compiled schedule)
        let deciders = &bucket[offsets[class]..offsets[class + 1]];
        rounds += 2;
        if deciders.is_empty() {
            continue;
        }
        choices.clear();
        for &v in deciders {
            choices.push(state.best_color(v));
        }
        for (&v, &x) in deciders.iter().zip(&choices) {
            state.fix(v, x);
            colors[v] = x;
        }
    }
    FixOutcome {
        colors,
        initial_phi,
        final_phi: state.total(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_coloring::{color_power, greedy_sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_weak_splitting;
    use splitgraph::{generators, right_square, Color};

    fn to_colors(xs: &[MultiColor]) -> Vec<Color> {
        xs.iter()
            .map(|&x| if x == 0 { Color::Red } else { Color::Blue })
            .collect()
    }

    #[test]
    fn sequential_fix_solves_weak_splitting() {
        let mut rng = StdRng::seed_from_u64(1);
        // 60 constraints of degree 16 over 120 variables: 2·2^{-16}·60 < 1
        let b = generators::random_left_regular(60, 120, 16, &mut rng).unwrap();
        let est = ColoringEstimator::monochromatic(&b);
        let order: Vec<usize> = (0..120).collect();
        let out = sequential_fix(&b, est, &order);
        assert!(out.initial_phi < 1.0, "initial Φ = {}", out.initial_phi);
        assert!(out.final_phi < 1.0);
        assert!(is_weak_splitting(&b, &to_colors(&out.colors), 0));
    }

    #[test]
    fn sequential_fix_identity_matches_explicit_order() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = generators::random_left_regular(40, 80, 14, &mut rng).unwrap();
        let order: Vec<usize> = (0..80).collect();
        let explicit = sequential_fix(&b, ColoringEstimator::monochromatic(&b), &order);
        let identity = sequential_fix_identity(&b, ColoringEstimator::monochromatic(&b));
        assert_eq!(explicit.colors, identity.colors);
        assert_eq!(
            explicit.initial_phi.to_bits(),
            identity.initial_phi.to_bits()
        );
        assert_eq!(explicit.final_phi.to_bits(), identity.final_phi.to_bits());
    }

    #[test]
    fn sequential_fix_order_invariance_of_guarantee() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = generators::random_left_regular(40, 80, 14, &mut rng).unwrap();
        for seed in 0..3 {
            let mut order: Vec<usize> = (0..80).collect();
            use rand::seq::SliceRandom;
            let mut r = StdRng::seed_from_u64(seed);
            order.shuffle(&mut r);
            let out = sequential_fix(&b, ColoringEstimator::monochromatic(&b), &order);
            assert!(is_weak_splitting(&b, &to_colors(&out.colors), 0));
        }
    }

    #[test]
    fn phased_fix_matches_guarantee_and_counts_rounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = generators::random_left_regular(50, 100, 16, &mut rng).unwrap();
        let sq = right_square(&b);
        let ids: Vec<u64> = (0..sq.node_count() as u64).collect();
        let coloring = color_power(&sq, 1, &ids, sq.node_count() as u64);
        let out = phased_fix(
            &b,
            ColoringEstimator::monochromatic(&b),
            &coloring.colors,
            coloring.palette,
        );
        assert!(out.final_phi < 1.0);
        assert!(is_weak_splitting(&b, &to_colors(&out.colors), 0));
        assert_eq!(out.rounds, 2 * coloring.palette as usize);
    }

    #[test]
    fn phased_fix_with_sequential_reference_coloring() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = generators::random_left_regular(30, 60, 12, &mut rng).unwrap();
        let sq = right_square(&b);
        let order: Vec<usize> = (0..sq.node_count()).collect();
        let colors = greedy_sequential(&sq, &order);
        let palette = colors.iter().max().unwrap() + 1;
        let out = phased_fix(&b, ColoringEstimator::monochromatic(&b), &colors, palette);
        assert!(is_weak_splitting(&b, &to_colors(&out.colors), 0));
    }

    #[test]
    #[should_panic(expected = "same class")]
    fn phased_fix_rejects_bad_schedule() {
        let b = generators::complete_bipartite(1, 3);
        // all three variables share the constraint but get one class
        let _ = phased_fix(&b, ColoringEstimator::monochromatic(&b), &[0, 0, 0], 1);
    }

    #[test]
    #[should_panic(expected = "same class")]
    fn phased_fix_rejects_nonadjacent_class_repeat() {
        let b = generators::complete_bipartite(1, 4);
        // classes repeat with a different class in between: the stamp pass
        // must still catch the {0, 2} collision under constraint 0
        let _ = phased_fix(&b, ColoringEstimator::monochromatic(&b), &[0, 1, 0, 2], 3);
    }

    #[test]
    fn missing_color_fix_covers_palette() {
        let mut rng = StdRng::seed_from_u64(11);
        // degree 64, palette 6: Φ = 40·6·(5/6)^64 ≈ 0.002
        let b = generators::random_left_regular(40, 160, 64, &mut rng).unwrap();
        let est = ColoringEstimator::missing_color(&b, 6);
        let order: Vec<usize> = (0..160).collect();
        let out = sequential_fix(&b, est, &order);
        assert!(out.initial_phi < 1.0, "initial Φ = {}", out.initial_phi);
        // every constraint sees all 6 colors
        for u in 0..40 {
            let mut seen = std::collections::HashSet::new();
            for &v in b.left_neighbors(u) {
                seen.insert(out.colors[v]);
            }
            assert_eq!(seen.len(), 6, "constraint {u} missing colors");
        }
    }

    #[test]
    fn overload_fix_respects_caps() {
        let mut rng = StdRng::seed_from_u64(13);
        let b = generators::random_left_regular(30, 90, 48, &mut rng).unwrap();
        // palette 4, cap = ⌈0.5·48⌉ = 24 (generous: Chernoff bound is tiny)
        let caps = vec![24usize; 30];
        let t = crate::estimator::chernoff_t(24.0, 4, 48.0);
        let est = ColoringEstimator::overload(&b, 4, &caps, t);
        let order: Vec<usize> = (0..90).collect();
        let out = sequential_fix(&b, est, &order);
        assert!(out.initial_phi < 1.0, "initial Φ = {}", out.initial_phi);
        for u in 0..30 {
            let mut counts = [0usize; 4];
            for &v in b.left_neighbors(u) {
                counts[out.colors[v] as usize] += 1;
            }
            assert!(
                counts.iter().all(|&c| c <= 24),
                "constraint {u}: {counts:?}"
            );
        }
    }
}
