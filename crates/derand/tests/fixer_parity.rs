//! Parity proptests: the incremental fixer engine must be *bit-identical*
//! in its color choices to the naive pre-refactor reference — per-query
//! `powi` evaluation, per-color-outer candidate loops, one `Vec` of counts
//! per constraint, and `Φ` recomputed from scratch at every step (no power
//! tables, no flat arrays, no tracked total) — and its incrementally
//! tracked `Φ` must follow the reference's from-scratch `Φ` within `1e-9`
//! at every step of the trajectory, across left-regular and irregular
//! bipartite instances and all three estimator instantiations.
//!
//! The reference keeps the `S_u ← S_u − old + new` update of the original
//! engine rather than re-summing `S_u = Σ_x base(u, F_{u,x})` per query:
//! re-summing is mathematically identical but visits the addends in a
//! different order, so mathematically tied candidate colors (which both
//! engines must break toward the smaller color) can split by one ULP and
//! flip the argmin — the recurrence is what "the same color choices" is
//! defined against.

use derand::{sequential_fix, ColoringEstimator, FixerState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use splitgraph::{generators, BipartiteGraph};

/// Which estimator to instantiate over an instance.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Monochromatic,
    MissingColor(u32),
    Overload(u32),
}

fn estimator(b: &BipartiteGraph, kind: Kind) -> ColoringEstimator {
    match kind {
        Kind::Monochromatic => ColoringEstimator::monochromatic(b),
        Kind::MissingColor(c) => ColoringEstimator::missing_color(b, c),
        Kind::Overload(c) => {
            // caps around half the degree; degree-0/1 constraints get their
            // degree as cap (never binding) and are exempted — the engine
            // must skip them without changing any choice
            let caps: Vec<usize> = (0..b.left_count())
                .map(|u| {
                    let d = b.left_degree(u);
                    if d >= 2 {
                        d / 2 + 1
                    } else {
                        d
                    }
                })
                .collect();
            let avg = if b.left_count() == 0 {
                1.0
            } else {
                (b.edge_count() as f64 / b.left_count() as f64).max(1.0)
            };
            let t = derand::chernoff_t(avg / 2.0 + 1.0, c, avg);
            let mut est = ColoringEstimator::overload(b, c, &caps, t);
            for u in 0..b.left_count() {
                if b.left_degree(u) < 2 {
                    est.exempt(u);
                }
            }
            est
        }
    }
}

/// Naive reference: the pre-refactor fixer verbatim — one count `Vec` per
/// constraint, per-query `powi`, per-color-outer candidate loops, and `Φ`
/// recomputed from scratch at every step. A sibling copy lives in
/// `crates/bench/src/pipeline_perf.rs` (`SeedFixerState`) as the frozen
/// *before* side of the speedup records; keep the two in lockstep.
struct NaiveRef {
    palette: u32,
    factor: f64,
    step: f64,
    base_zero: Vec<f64>,
    counts: Vec<Vec<u32>>,
    unfixed: Vec<usize>,
    sums: Vec<f64>,
}

impl NaiveRef {
    fn new(b: &BipartiteGraph, est: &ColoringEstimator) -> Self {
        let palette = est.palette();
        NaiveRef {
            palette,
            factor: est.factor(),
            step: est.step(),
            base_zero: (0..b.left_count()).map(|u| est.base(u, 0)).collect(),
            counts: vec![vec![0u32; palette as usize]; b.left_count()],
            unfixed: (0..b.left_count()).map(|u| b.left_degree(u)).collect(),
            sums: (0..b.left_count())
                .map(|u| palette as f64 * est.base(u, 0))
                .collect(),
        }
    }

    fn base(&self, u: usize, fixed: u32) -> f64 {
        if self.step == 0.0 {
            if fixed == 0 {
                self.base_zero[u]
            } else {
                0.0
            }
        } else {
            self.base_zero[u] * self.step.powi(fixed as i32)
        }
    }

    fn phi(&self, u: usize) -> f64 {
        self.factor.powi(self.unfixed[u] as i32) * self.sums[u]
    }

    /// `Φ` recomputed from scratch (per step — no incremental tracking).
    fn total(&self) -> f64 {
        (0..self.counts.len()).map(|u| self.phi(u)).sum()
    }

    fn phi_after(&self, u: usize, x: u32) -> f64 {
        let old = self.base(u, self.counts[u][x as usize]);
        let new = self.base(u, self.counts[u][x as usize] + 1);
        self.factor.powi(self.unfixed[u] as i32 - 1) * (self.sums[u] - old + new)
    }

    fn best_color(&self, b: &BipartiteGraph, v: usize) -> u32 {
        let mut best = 0u32;
        let mut best_score = f64::INFINITY;
        for x in 0..self.palette {
            let score: f64 = b
                .right_neighbors(v)
                .iter()
                .map(|&u| self.phi_after(u, x))
                .sum();
            if score < best_score {
                best_score = score;
                best = x;
            }
        }
        best
    }

    fn fix(&mut self, b: &BipartiteGraph, v: usize, x: u32) {
        for &u in b.right_neighbors(v) {
            let old = self.base(u, self.counts[u][x as usize]);
            self.counts[u][x as usize] += 1;
            let new = self.base(u, self.counts[u][x as usize]);
            self.sums[u] += new - old;
            self.unfixed[u] -= 1;
        }
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * b.abs().max(1.0)
}

/// Runs both engines step by step over a shuffled order and asserts
/// identical choices plus a matching `Φ` trajectory.
fn assert_parity(b: &BipartiteGraph, kind: Kind, order_seed: u64) {
    let est = estimator(b, kind);
    let mut order: Vec<usize> = (0..b.right_count()).collect();
    let mut rng = StdRng::seed_from_u64(order_seed);
    order.shuffle(&mut rng);

    let mut engine = FixerState::new(b, est.clone());
    let mut naive = NaiveRef::new(b, &est);
    assert!(
        close(engine.total(), naive.total()),
        "{kind:?}: initial Φ {} vs naive {}",
        engine.total(),
        naive.total()
    );
    let mut colors = vec![0u32; b.right_count()];
    for &v in &order {
        let fast = engine.best_color(v);
        let slow = naive.best_color(b, v);
        assert_eq!(fast, slow, "{kind:?}: choice for variable {v} diverged");
        engine.fix(v, fast);
        naive.fix(b, v, slow);
        colors[v] = fast;
        // the incrementally tracked Φ must follow the from-scratch Φ at
        // every step (the drift guard keeps the gap below 1e-9)
        assert!(
            close(engine.tracked_total(), naive.total()),
            "{kind:?}: tracked Φ {} vs naive {} after fixing {v}",
            engine.tracked_total(),
            naive.total()
        );
        assert!(close(engine.total(), naive.total()));
    }
    // whole-pass cross-check: sequential_fix over the same order reproduces
    // the step-by-step trajectory exactly
    let out = sequential_fix(b, est, &order);
    assert_eq!(out.colors, colors);
    assert!(close(out.final_phi, naive.total()));
}

const ALL_KINDS: [Kind; 4] = [
    Kind::Monochromatic,
    Kind::MissingColor(3),
    Kind::MissingColor(6),
    Kind::Overload(4),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_matches_naive_on_left_regular(
        (nc, nv_mult, deg, seed) in (2usize..14, 2usize..5, 2usize..9, 0u64..10_000)
    ) {
        let nv = nc * nv_mult;
        let deg = deg.min(nv);
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generators::random_left_regular(nc, nv, deg, &mut rng).unwrap();
        for kind in ALL_KINDS {
            assert_parity(&b, kind, seed ^ 0xA5A5);
        }
    }

    #[test]
    fn incremental_matches_naive_on_irregular(
        (nc, nv, p10, seed) in (2usize..12, 2usize..24, 1usize..7, 0u64..10_000)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generators::erdos_renyi_bipartite(nc, nv, 0.1 * p10 as f64, &mut rng);
        for kind in ALL_KINDS {
            assert_parity(&b, kind, seed ^ 0x5A5A);
        }
    }

    #[test]
    fn incremental_matches_naive_on_overload_tight_caps(
        (nc, deg, seed) in (2usize..10, 4usize..12, 0u64..10_000)
    ) {
        // biregular-ish dense instances where the MGF terms actually move
        let nv = nc * 2;
        let deg = deg.min(nv);
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generators::random_left_regular(nc, nv, deg, &mut rng).unwrap();
        for palette in [2u32, 3, 5] {
            assert_parity(&b, Kind::Overload(palette), seed ^ 0x33);
        }
    }
}
