//! Property-based tests for the graph substrate itself.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::{
    bipartite_components, connected_components, generators, girth, power_graph, right_square,
    BipartiteGraph, Graph,
};

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..3 * n)
}

/// The seed `power_graph` (depth-bounded BFS + per-pair `add_edge`), kept as
/// the reference the bulk CSR implementation must reproduce exactly.
fn reference_power_graph(g: &Graph, k: usize) -> Graph {
    let n = g.node_count();
    let mut out = Graph::new(n);
    if k == 0 {
        return out;
    }
    let mut dist = vec![usize::MAX; n];
    let mut touched = Vec::new();
    for v in 0..n {
        dist[v] = 0;
        touched.push(v);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            if dist[x] == k {
                continue;
            }
            for &y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = dist[x] + 1;
                    touched.push(y);
                    queue.push_back(y);
                }
            }
        }
        for &w in &touched {
            if w > v {
                out.add_edge(v, w).expect("power graph edges are simple");
            }
        }
        for &w in &touched {
            dist[w] = usize::MAX;
        }
        touched.clear();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_remove_edge_roundtrip(edges in arb_edges(20)) {
        let mut g = Graph::new(20);
        let mut inserted = Vec::new();
        for (u, v) in edges {
            if u != v && g.add_edge(u, v).is_ok() {
                inserted.push((u, v));
            }
        }
        prop_assert_eq!(g.edge_count(), inserted.len());
        // degrees sum to twice the edge count (handshake)
        let degree_sum: usize = (0..20).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        // removing everything restores the empty graph
        for &(u, v) in &inserted {
            prop_assert!(g.remove_edge(u, v));
        }
        prop_assert_eq!(g.edge_count(), 0);
        prop_assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn edges_iterator_matches_contains(edges in arb_edges(16)) {
        let mut g = Graph::new(16);
        for (u, v) in edges {
            if u != v {
                let _ = g.add_edge(u, v);
            }
        }
        let listed: Vec<(usize, usize)> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.edge_count());
        for &(u, v) in &listed {
            prop_assert!(u < v);
            prop_assert!(g.contains_edge(u, v));
            prop_assert!(g.contains_edge(v, u));
        }
    }

    #[test]
    fn components_cover_all_nodes(edges in arb_edges(24)) {
        let mut g = Graph::new(24);
        for (u, v) in edges {
            if u != v {
                let _ = g.add_edge(u, v);
            }
        }
        let cc = connected_components(&g);
        let sizes = cc.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), 24);
        // adjacent nodes share a component
        for (u, v) in g.edges() {
            prop_assert_eq!(cc.label(u), cc.label(v));
        }
    }

    #[test]
    fn representations_agree_on_random_edge_lists(edges in arb_edges(24)) {
        // incremental add_edge, deduplicating on the fly
        let mut inc = Graph::new(24);
        let mut kept: Vec<(usize, usize)> = Vec::new();
        for (u, v) in edges {
            if u != v && inc.add_edge(u, v).is_ok() {
                kept.push((u, v));
            }
        }
        let bulk = Graph::from_edges_bulk(24, &kept).unwrap();
        let rows: Vec<Vec<usize>> = (0..24).map(|v| inc.neighbors(v).to_vec()).collect();
        let adj = Graph::from_adjacency(&rows).unwrap();
        prop_assert!(bulk.is_flat() && adj.is_flat());
        prop_assert_eq!(&inc, &bulk);
        prop_assert_eq!(&inc, &adj);
        prop_assert_eq!(inc.edge_count(), bulk.edge_count());
        prop_assert_eq!(inc.edge_count(), adj.edge_count());
        for v in 0..24 {
            prop_assert_eq!(inc.neighbors(v), bulk.neighbors(v));
            prop_assert_eq!(inc.neighbors(v), adj.neighbors(v));
            prop_assert_eq!(inc.degree(v), bulk.degree(v));
            prop_assert_eq!(inc.degree(v), adj.degree(v));
        }
        for u in 0..24 {
            for v in 0..24 {
                prop_assert_eq!(inc.contains_edge(u, v), bulk.contains_edge(u, v));
                prop_assert_eq!(inc.contains_edge(u, v), adj.contains_edge(u, v));
            }
        }
    }

    #[test]
    fn bulk_validation_agrees_with_checked_path(
        edges in prop::collection::vec((0..20usize, 0..20usize), 0..48)
    ) {
        // raw lists may contain self-loops, duplicates, and (on n = 16)
        // out-of-range endpoints; acceptance must agree exactly
        let checked = Graph::from_edges(16, &edges);
        let bulk = Graph::from_edges_bulk(16, &edges);
        prop_assert_eq!(checked.is_ok(), bulk.is_ok());
        if let (Ok(a), Ok(b)) = (checked, bulk) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn power_graph_matches_seed_reference(
        (seed, k, p) in (0u64..200, 2usize..5, 1usize..4)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(28, 0.04 * p as f64, &mut rng);
        let fast = power_graph(&g, k);
        let reference = reference_power_graph(&g, k);
        prop_assert_eq!(&fast, &reference);
        for v in 0..28 {
            prop_assert_eq!(fast.neighbors(v), reference.neighbors(v));
        }
    }

    #[test]
    fn power_graph_is_monotone(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(18, 0.2, &mut rng);
        let p1 = power_graph(&g, 1);
        let p2 = power_graph(&g, 2);
        let p3 = power_graph(&g, 3);
        for (u, v) in p1.edges() {
            prop_assert!(p2.contains_edge(u, v));
        }
        for (u, v) in p2.edges() {
            prop_assert!(p3.contains_edge(u, v));
        }
    }

    #[test]
    fn right_square_symmetric_with_bipartite_power(
        (u, v, d, seed) in (4usize..16, 8usize..24, 2usize..6, 0u64..300)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = d.min(v);
        let b = generators::random_left_regular(u, v, d, &mut rng).unwrap();
        let sq = right_square(&b);
        // two variables adjacent in the square iff they share a constraint
        for x in 0..v {
            for y in x + 1..v {
                let share = (0..u).any(|c| {
                    b.left_neighbors(c).contains(&x) && b.left_neighbors(c).contains(&y)
                });
                prop_assert_eq!(sq.contains_edge(x, y), share, "pair ({}, {})", x, y);
            }
        }
    }

    #[test]
    fn doubling_preserves_degree_profile(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(20, 0.3, &mut rng);
        let b = generators::doubling_instance(&g);
        for w in 0..20 {
            prop_assert_eq!(b.left_degree(w), g.degree(w));
            prop_assert_eq!(b.right_degree(w), g.degree(w));
        }
    }

    #[test]
    fn biregular_generator_is_biregular(
        (u, dl, seed) in (2usize..20, 1usize..8, 0u64..300)
    ) {
        // choose a right side that divides the stubs evenly
        let stubs = u * dl;
        for v in (1..=stubs).rev() {
            if stubs % v == 0 && stubs / v <= u && dl <= v {
                let mut rng = StdRng::seed_from_u64(seed);
                if let Ok(b) = generators::random_biregular(u, v, dl, &mut rng) {
                    for x in 0..u {
                        prop_assert_eq!(b.left_degree(x), dl);
                    }
                    for y in 0..v {
                        prop_assert_eq!(b.right_degree(y), stubs / v);
                    }
                }
                break;
            }
        }
    }

    #[test]
    fn bipartite_component_edges_match_original(
        (u, v, seed) in (3usize..15, 3usize..20, 0u64..300)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = generators::erdos_renyi_bipartite(u, v, 0.15, &mut rng);
        let comps = bipartite_components(&b);
        for comp in &comps {
            for (lu, lv) in comp.graph.edges() {
                let orig_u = comp.original_left[lu];
                let orig_v = comp.original_right[lv];
                prop_assert!(b.contains_edge(orig_u, orig_v));
            }
        }
    }

    #[test]
    fn girth_never_below_three(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(15, 0.3, &mut rng);
        if let Some(girth) = girth(&g) {
            prop_assert!(girth >= 3);
            prop_assert!(girth <= 15);
        }
    }

    #[test]
    fn incidence_instance_always_rank_two(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(15, 0.3, &mut rng);
        let (b, edges) = generators::incidence_instance(&g);
        prop_assert_eq!(edges.len(), g.edge_count());
        if g.edge_count() > 0 {
            prop_assert_eq!(b.rank(), 2);
        }
        for u in 0..15 {
            prop_assert_eq!(b.left_degree(u), g.degree(u));
        }
    }
}

#[test]
fn bipartite_graph_default_is_empty() {
    let b = BipartiteGraph::default();
    assert_eq!(b.node_count(), 0);
    assert_eq!(b.edge_count(), 0);
}
