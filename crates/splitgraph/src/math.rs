//! Small numeric helpers matching the paper's conventions.
//!
//! Throughout the paper `log x` is the base-2 logarithm and `ln x` the
//! natural logarithm; thresholds such as "degree at least `2·log n`" are used
//! verbatim by the algorithms, so they live here in one place.

/// Base-2 logarithm of `x` as a float.
///
/// # Panics
///
/// Panics if `x == 0` (the paper never takes `log 0`).
pub fn log2(x: usize) -> f64 {
    assert!(x > 0, "log2 of zero");
    (x as f64).log2()
}

/// Natural logarithm of `x` as a float.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn ln(x: usize) -> f64 {
    assert!(x > 0, "ln of zero");
    (x as f64).ln()
}

/// `⌈log₂ x⌉` for integers, with `ceil_log2(1) == 0`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn ceil_log2(x: usize) -> u32 {
    assert!(x > 0, "ceil_log2 of zero");
    usize::BITS - (x - 1).leading_zeros()
}

/// `⌊log₂ x⌋` for integers.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn floor_log2(x: usize) -> u32 {
    assert!(x > 0, "floor_log2 of zero");
    usize::BITS - 1 - x.leading_zeros()
}

/// The iterated logarithm `log* x`: how many times `log₂` must be applied to
/// reach a value ≤ 1.
pub fn log_star(x: usize) -> u32 {
    let mut v = x as f64;
    let mut count = 0;
    while v > 1.0 {
        v = v.log2();
        count += 1;
    }
    count
}

/// Minimum constraint degree `2·log₂ n` required by the basic deterministic
/// weak-splitting algorithms (Lemmas 2.1/2.2, Theorem 2.5), rounded up.
pub fn weak_splitting_degree_threshold(n: usize) -> usize {
    (2.0 * log2(n.max(2))).ceil() as usize
}

/// Degree threshold `2·(log n + 1)·ln n` of Definition 1.3 (C-weak multicolor
/// splitting), rounded up.
pub fn weak_multicolor_degree_threshold(n: usize) -> usize {
    let n = n.max(2);
    (2.0 * (log2(n) + 1.0) * ln(n)).ceil() as usize
}

/// Number of distinct colors `2·log₂ n` a satisfied constraint must see in
/// Definition 1.3, rounded up.
pub fn weak_multicolor_required_colors(n: usize) -> usize {
    (2.0 * log2(n.max(2))).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_and_floor_log2() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1024), 10);
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(usize::MAX), 5);
    }

    #[test]
    fn thresholds_match_formulas() {
        assert_eq!(weak_splitting_degree_threshold(1024), 20);
        // 2 (log 1024 + 1) ln 1024 = 2 * 11 * 6.931.. = 152.49..
        assert_eq!(weak_multicolor_degree_threshold(1024), 153);
        assert_eq!(weak_multicolor_required_colors(1024), 20);
    }

    #[test]
    fn small_n_clamped() {
        // n = 1 would make log n = 0; the helpers clamp to n = 2
        assert_eq!(weak_splitting_degree_threshold(1), 2);
        assert!(weak_multicolor_degree_threshold(1) >= 1);
    }

    #[test]
    #[should_panic(expected = "log2 of zero")]
    fn log2_zero_panics() {
        let _ = log2(0);
    }
}
