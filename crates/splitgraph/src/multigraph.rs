//! Multigraphs with edge identities, and edge orientations.
//!
//! Degree–Rank Reduction II (Section 2.3 of the paper) builds a *multigraph*
//! `G` on the constraint side `U`: each variable node pairs up its neighbors
//! and every pair becomes an edge of `G`, so two constraint nodes can be
//! connected by many parallel edges with distinct *corresponding* variable
//! nodes. Directed degree splitting (Definition 2.1) then orients these
//! edges; [`Orientation`] stores the result and computes per-node
//! discrepancies.

use crate::csr::Csr;

/// Identifier of an edge inside a [`MultiGraph`].
pub type EdgeId = usize;

/// An undirected multigraph over nodes `0..n`: parallel edges allowed,
/// self-loops allowed (they never arise in the paper's constructions but are
/// handled consistently: a self-loop contributes 2 to the degree and 0 to any
/// orientation discrepancy).
///
/// # Examples
///
/// ```
/// use splitgraph::MultiGraph;
///
/// let mut g = MultiGraph::new(3);
/// let e0 = g.add_edge(0, 1);
/// let e1 = g.add_edge(0, 1); // parallel edge
/// assert_ne!(e0, e1);
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiGraph {
    node_count: usize,
    endpoints: Vec<(usize, usize)>,
    incident: Vec<Vec<EdgeId>>,
}

impl MultiGraph {
    /// Creates an empty multigraph with `n` nodes.
    pub fn new(n: usize) -> Self {
        MultiGraph {
            node_count: n,
            endpoints: Vec::new(),
            incident: vec![Vec::new(); n],
        }
    }

    /// Builds a multigraph from an endpoint list in bulk; edge `e` gets id
    /// `e` (its index in `endpoints`). The incidence lists are filled by one
    /// counting-sort pass instead of `m` individual appends.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_endpoints(n: usize, endpoints: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &endpoints {
            assert!(a < n, "endpoint {a} out of range");
            assert!(b < n, "endpoint {b} out of range");
        }
        let incident = Csr::from_incidence(n, &endpoints).into_rows();
        MultiGraph {
            node_count: n,
            endpoints,
            incident,
        }
    }

    /// Flat incidence structure: row `v` lists the edge ids incident to `v`
    /// (self-loops twice) in one contiguous buffer, for cache-linear
    /// traversals such as the Eulerian split engines.
    pub fn incidence_csr(&self) -> Csr {
        Csr::from_incidence(self.node_count, &self.endpoints)
    }

    /// Adds an edge between `u` and `v` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> EdgeId {
        assert!(u < self.node_count, "endpoint {u} out of range");
        assert!(v < self.node_count, "endpoint {v} out of range");
        let id = self.endpoints.len();
        self.endpoints.push((u, v));
        self.incident[u].push(id);
        if u != v {
            self.incident[v].push(id);
        } else {
            // a self-loop is incident to its node twice
            self.incident[u].push(id);
        }
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges (parallel edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Endpoints `(u, v)` of edge `e` in insertion orientation.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (usize, usize) {
        self.endpoints[e]
    }

    /// Degree of `v` (self-loops count twice).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.incident[v].len()
    }

    /// Edge ids incident to `v` (self-loops appear twice).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn incident_edges(&self, v: usize) -> &[EdgeId] {
        &self.incident[v]
    }

    /// Maximum degree, or 0 for an empty multigraph.
    pub fn max_degree(&self) -> usize {
        self.incident.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Given edge `e` and one endpoint `v`, returns the other endpoint
    /// (`v` itself for a self-loop).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, v: usize) -> usize {
        let (a, b) = self.endpoints[e];
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("node {v} is not an endpoint of edge {e}");
        }
    }
}

/// An orientation of every edge of a [`MultiGraph`].
///
/// `towards_second[e] == true` means edge `e = (u, v)` is directed `u → v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    towards_second: Vec<bool>,
}

impl Orientation {
    /// Wraps a per-edge direction vector.
    ///
    /// # Panics
    ///
    /// Panics in [`Orientation::head`]/[`Orientation::tail`] if the vector's
    /// length does not match the multigraph it is later used with.
    pub fn new(towards_second: Vec<bool>) -> Self {
        Orientation { towards_second }
    }

    /// Number of oriented edges.
    pub fn edge_count(&self) -> usize {
        self.towards_second.len()
    }

    /// Whether edge `e` is directed from its first to its second endpoint.
    pub fn is_towards_second(&self, e: EdgeId) -> bool {
        self.towards_second[e]
    }

    /// Head (target) of edge `e` in graph `g`.
    pub fn head(&self, g: &MultiGraph, e: EdgeId) -> usize {
        let (u, v) = g.endpoints(e);
        if self.towards_second[e] {
            v
        } else {
            u
        }
    }

    /// Tail (source) of edge `e` in graph `g`.
    pub fn tail(&self, g: &MultiGraph, e: EdgeId) -> usize {
        let (u, v) = g.endpoints(e);
        if self.towards_second[e] {
            u
        } else {
            v
        }
    }

    /// Out-degree of node `v` (self-loops contribute one in and one out).
    pub fn out_degree(&self, g: &MultiGraph, v: usize) -> usize {
        g.incident_edges(v)
            .iter()
            .filter(|&&e| {
                let (a, b) = g.endpoints(e);
                a == b || self.tail(g, e) == v
            })
            .count()
            // each self-loop occurrence pair contributes exactly one "out";
            // incident_edges lists a loop twice and the filter above accepts
            // both copies, so subtract one per loop.
            - g.incident_edges(v)
                .iter()
                .filter(|&&e| {
                    let (a, b) = g.endpoints(e);
                    a == b && a == v
                })
                .count()
                / 2
    }

    /// In-degree of node `v` (self-loops contribute one in and one out).
    pub fn in_degree(&self, g: &MultiGraph, v: usize) -> usize {
        g.degree(v) - self.out_degree(g, v)
    }

    /// Discrepancy `|out(v) − in(v)|` of node `v` (Definition 2.1).
    pub fn discrepancy(&self, g: &MultiGraph, v: usize) -> usize {
        let out = self.out_degree(g, v);
        let inn = self.in_degree(g, v);
        out.abs_diff(inn)
    }

    /// Maximum discrepancy over all nodes, or 0 for an empty graph.
    pub fn max_discrepancy(&self, g: &MultiGraph) -> usize {
        (0..g.node_count())
            .map(|v| self.discrepancy(g, v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_have_distinct_ids() {
        let mut g = MultiGraph::new(2);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 0);
        assert_eq!(e0, 0);
        assert_eq!(e1, 1);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.endpoints(e1), (1, 0));
        assert_eq!(g.other_endpoint(e0, 0), 1);
        assert_eq!(g.other_endpoint(e1, 0), 1);
    }

    #[test]
    fn self_loop_counts_twice_in_degree() {
        let mut g = MultiGraph::new(1);
        g.add_edge(0, 0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.incident_edges(0), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_out_of_range() {
        let mut g = MultiGraph::new(1);
        g.add_edge(0, 1);
    }

    #[test]
    fn bulk_endpoints_match_incremental() {
        let pairs = vec![(0, 1), (1, 0), (2, 2), (0, 2)];
        let mut inc = MultiGraph::new(3);
        for &(a, b) in &pairs {
            inc.add_edge(a, b);
        }
        let bulk = MultiGraph::from_endpoints(3, pairs);
        assert_eq!(inc, bulk);
        let csr = bulk.incidence_csr();
        for v in 0..3 {
            assert_eq!(csr.row(v), bulk.incident_edges(v));
        }
    }

    #[test]
    fn orientation_head_tail_and_degrees() {
        let mut g = MultiGraph::new(3);
        g.add_edge(0, 1); // e0
        g.add_edge(1, 2); // e1
        g.add_edge(2, 0); // e2
                          // orient the triangle as a directed cycle 0→1→2→0
        let o = Orientation::new(vec![true, true, true]);
        for v in 0..3 {
            assert_eq!(o.out_degree(&g, v), 1);
            assert_eq!(o.in_degree(&g, v), 1);
            assert_eq!(o.discrepancy(&g, v), 0);
        }
        assert_eq!(o.head(&g, 0), 1);
        assert_eq!(o.tail(&g, 0), 0);
        assert_eq!(o.max_discrepancy(&g), 0);
    }

    #[test]
    fn orientation_discrepancy_on_star() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        // all edges out of the center
        let o = Orientation::new(vec![true, true, true]);
        assert_eq!(o.out_degree(&g, 0), 3);
        assert_eq!(o.in_degree(&g, 0), 0);
        assert_eq!(o.discrepancy(&g, 0), 3);
        assert_eq!(o.max_discrepancy(&g), 3);
        // flip one edge
        let o = Orientation::new(vec![false, true, true]);
        assert_eq!(o.discrepancy(&g, 0), 1);
    }

    #[test]
    fn self_loop_is_balanced() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        let o = Orientation::new(vec![true, true]);
        assert_eq!(o.out_degree(&g, 0), 2);
        assert_eq!(o.in_degree(&g, 0), 1);
        assert_eq!(o.discrepancy(&g, 0), 1);
    }
}
