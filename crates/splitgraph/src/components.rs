//! Connected components of simple and bipartite graphs.
//!
//! The shattering analyses (Theorems 1.2, 2.8 and 5.3 of the paper) bound the
//! size of connected components of *residual* graphs; these helpers extract
//! them so experiments can measure the bound.

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;

/// Connected components of a simple graph: `labels[v]` is the component index
/// of node `v`, components are numbered `0..count` in order of first visit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    labels: Vec<usize>,
    count: usize,
}

impl Components {
    /// Component label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: usize) -> usize {
        self.labels[v]
    }

    /// Number of components (isolated nodes form singleton components).
    pub fn count(&self) -> usize {
        self.count
    }

    /// All labels, indexed by node.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sizes of all components, indexed by component label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn max_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Node lists per component.
    ///
    /// Convenience wrapper over [`Components::members_grouped`]; prefer the
    /// grouped form on hot paths — this one allocates one `Vec` per
    /// component.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let grouped = self.members_grouped();
        (0..self.count).map(|c| grouped.group(c).to_vec()).collect()
    }

    /// Node lists per component in CSR form: one counting sort, two
    /// allocations total (offsets + node storage), no per-node pushes.
    /// Nodes within a group are in ascending order.
    pub fn members_grouped(&self) -> GroupedMembers {
        let mut starts = vec![0usize; self.count + 1];
        for &l in &self.labels {
            starts[l + 1] += 1;
        }
        for c in 0..self.count {
            starts[c + 1] += starts[c];
        }
        let mut nodes = vec![0usize; self.labels.len()];
        let mut cursor = starts.clone();
        for (v, &l) in self.labels.iter().enumerate() {
            nodes[cursor[l]] = v;
            cursor[l] += 1;
        }
        GroupedMembers { starts, nodes }
    }
}

/// Component membership in CSR form: component `c`'s nodes are the slice
/// `nodes[starts[c]..starts[c + 1]]`, ascending. Built by one counting sort
/// in [`Components::members_grouped`] — the allocation-free-per-node
/// alternative to [`Components::members`] used by the churn dirty-region
/// walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedMembers {
    starts: Vec<usize>,
    nodes: Vec<usize>,
}

impl GroupedMembers {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// The nodes of component `c`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn group(&self, c: usize) -> &[usize] {
        &self.nodes[self.starts[c]..self.starts[c + 1]]
    }

    /// Iterates over all component node slices in label order.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> + '_ {
        (0..self.count()).map(move |c| self.group(c))
    }
}

/// Computes connected components of `g` by BFS.
///
/// # Examples
///
/// ```
/// use splitgraph::{Graph, connected_components};
///
/// let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
/// let cc = connected_components(&g);
/// assert_eq!(cc.count(), 3);
/// assert_eq!(cc.max_size(), 2);
/// ```
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if labels[w] == usize::MAX {
                    labels[w] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

/// A connected component of a bipartite graph, re-indexed as its own
/// [`BipartiteGraph`] with mappings back to the original node indices.
#[derive(Debug, Clone)]
pub struct BipartiteComponent {
    /// The component as a standalone bipartite graph.
    pub graph: BipartiteGraph,
    /// `original_left[i]` is the original left index of the component's left node `i`.
    pub original_left: Vec<usize>,
    /// `original_right[j]` is the original right index of the component's right node `j`.
    pub original_right: Vec<usize>,
}

impl BipartiteComponent {
    /// Total node count of the component (`|U_c| + |V_c|`).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

/// Splits a bipartite graph into its connected components.
///
/// Isolated nodes (degree 0 on either side) form singleton components; they
/// are included so that callers can account for every node.
pub fn bipartite_components(b: &BipartiteGraph) -> Vec<BipartiteComponent> {
    let g = b.to_graph();
    let cc = connected_components(&g);
    let shift = b.left_count();
    let mut comps: Vec<BipartiteComponent> = (0..cc.count())
        .map(|_| BipartiteComponent {
            graph: BipartiteGraph::default(),
            original_left: Vec::new(),
            original_right: Vec::new(),
        })
        .collect();
    // first pass: assign local indices
    let mut local = vec![usize::MAX; g.node_count()];
    for (v, slot) in local.iter_mut().enumerate() {
        let c = cc.label(v);
        if v < shift {
            *slot = comps[c].original_left.len();
            comps[c].original_left.push(v);
        } else {
            *slot = comps[c].original_right.len();
            comps[c].original_right.push(v - shift);
        }
    }
    // second pass: build graphs in bulk (one edge list per component)
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (c, comp) in comps.iter_mut().enumerate() {
        edges.clear();
        for (i, &orig_u) in comp.original_left.iter().enumerate() {
            for &orig_v in b.left_neighbors(orig_u) {
                debug_assert_eq!(cc.label(shift + orig_v), c);
                edges.push((i, local[shift + orig_v]));
            }
        }
        comp.graph = BipartiteGraph::from_edges_bulk(
            comp.original_left.len(),
            comp.original_right.len(),
            &edges,
        )
        .expect("component edges are simple");
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_components_for_isolated_nodes() {
        let g = Graph::new(3);
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert_eq!(cc.sizes(), vec![1, 1, 1]);
        assert_eq!(cc.max_size(), 1);
    }

    #[test]
    fn two_components_with_members() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        let members = cc.members();
        assert_eq!(members[cc.label(0)], vec![0, 1, 2]);
        assert_eq!(members[cc.label(3)], vec![3, 4]);
        assert_eq!(members[cc.label(5)], vec![5]);
        assert_eq!(cc.labels().len(), 6);
    }

    #[test]
    fn bipartite_components_reindex_correctly() {
        // two components: (u0; v0, v1) and (u1, u2; v2)
        let b = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 2), (2, 2)]).unwrap();
        let comps = bipartite_components(&b);
        assert_eq!(comps.len(), 2);
        let c0 = comps.iter().find(|c| c.original_left.contains(&0)).unwrap();
        assert_eq!(c0.graph.left_count(), 1);
        assert_eq!(c0.graph.right_count(), 2);
        assert_eq!(c0.graph.edge_count(), 2);
        assert_eq!(c0.node_count(), 3);
        let c1 = comps.iter().find(|c| c.original_left.contains(&1)).unwrap();
        assert_eq!(c1.graph.left_count(), 2);
        assert_eq!(c1.graph.right_count(), 1);
        assert_eq!(c1.graph.rank(), 2);
    }

    #[test]
    fn grouped_members_match_per_component_lists() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        let cc = connected_components(&g);
        let grouped = cc.members_grouped();
        assert_eq!(grouped.count(), cc.count());
        let lists = cc.members();
        for (c, list) in lists.iter().enumerate() {
            assert_eq!(grouped.group(c), list.as_slice());
        }
        let total: usize = grouped.iter().map(<[usize]>::len).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn grouped_members_empty_graph() {
        let cc = connected_components(&Graph::new(0));
        let grouped = cc.members_grouped();
        assert_eq!(grouped.count(), 0);
        assert_eq!(grouped.iter().count(), 0);
    }

    #[test]
    fn bipartite_isolated_nodes_kept() {
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0)]).unwrap();
        let comps = bipartite_components(&b);
        assert_eq!(comps.len(), 3);
        let total_nodes: usize = comps.iter().map(|c| c.node_count()).sum();
        assert_eq!(total_nodes, 4);
    }
}
