//! Validity checkers for every output object produced in the reproduction.
//!
//! All splitting problems in the paper are *locally checkable*: a solution's
//! validity can be verified by inspecting constant-radius neighborhoods.
//! These functions are the ground truth every algorithm and experiment is
//! validated against; they return the full list of violating nodes so that
//! failures are debuggable.

use crate::bipartite::BipartiteGraph;
use crate::color::{Color, MultiColor};
use crate::graph::Graph;
use std::collections::HashSet;

/// Whether constraint `u` sees at least one neighbor of each color under a
/// partial coloring of the variable side (`None` = uncolored).
///
/// # Panics
///
/// Panics if `colors.len() != b.right_count()` or `u` is out of range.
pub fn sees_both_colors(b: &BipartiteGraph, u: usize, colors: &[Option<Color>]) -> bool {
    assert_eq!(
        colors.len(),
        b.right_count(),
        "color vector length mismatch"
    );
    let mut red = false;
    let mut blue = false;
    for &v in b.left_neighbors(u) {
        match colors[v] {
            Some(Color::Red) => red = true,
            Some(Color::Blue) => blue = true,
            None => {}
        }
        if red && blue {
            return true;
        }
    }
    false
}

/// Constraints of degree at least `min_degree` that do **not** see both
/// colors (Definition 1.1, restricted to sufficiently large degrees as in
/// the weak-splitting variants of the introduction).
///
/// # Panics
///
/// Panics if `colors.len() != b.right_count()`.
pub fn weak_splitting_violations(
    b: &BipartiteGraph,
    colors: &[Color],
    min_degree: usize,
) -> Vec<usize> {
    assert_eq!(
        colors.len(),
        b.right_count(),
        "color vector length mismatch"
    );
    let partial: Vec<Option<Color>> = colors.iter().map(|&c| Some(c)).collect();
    (0..b.left_count())
        .filter(|&u| b.left_degree(u) >= min_degree && !sees_both_colors(b, u, &partial))
        .collect()
}

/// Whether `colors` is a weak splitting of `b` for all constraints of degree
/// at least `min_degree` (use `min_degree = 0` for Definition 1.1 verbatim).
pub fn is_weak_splitting(b: &BipartiteGraph, colors: &[Color], min_degree: usize) -> bool {
    weak_splitting_violations(b, colors, min_degree).is_empty()
}

/// Violations of a `(C, λ)`-multicolor splitting (Definition 1.2):
/// constraints of degree ≥ `min_degree` with more than `⌈λ·deg(u)⌉`
/// neighbors of some color. Returns `(u, color, count)` triples.
///
/// # Panics
///
/// Panics if `colors.len() != b.right_count()`, if some color is ≥ `c`, or
/// if `lambda` is not in `(0, 1]`.
pub fn multicolor_splitting_violations(
    b: &BipartiteGraph,
    colors: &[MultiColor],
    c: u32,
    lambda: f64,
    min_degree: usize,
) -> Vec<(usize, MultiColor, usize)> {
    assert_eq!(
        colors.len(),
        b.right_count(),
        "color vector length mismatch"
    );
    assert!(lambda > 0.0 && lambda <= 1.0, "lambda must lie in (0, 1]");
    assert!(colors.iter().all(|&x| x < c), "color out of palette range");
    let mut violations = Vec::new();
    let mut counts = vec![0usize; c as usize];
    for u in 0..b.left_count() {
        let d = b.left_degree(u);
        if d < min_degree {
            continue;
        }
        let cap = (lambda * d as f64).ceil() as usize;
        for x in counts.iter_mut() {
            *x = 0;
        }
        for &v in b.left_neighbors(u) {
            counts[colors[v] as usize] += 1;
        }
        for (x, &cnt) in counts.iter().enumerate() {
            if cnt > cap {
                violations.push((u, x as MultiColor, cnt));
            }
        }
    }
    violations
}

/// Whether `colors` is a valid `(C, λ)`-multicolor splitting for constraints
/// of degree at least `min_degree`.
pub fn is_multicolor_splitting(
    b: &BipartiteGraph,
    colors: &[MultiColor],
    c: u32,
    lambda: f64,
    min_degree: usize,
) -> bool {
    multicolor_splitting_violations(b, colors, c, lambda, min_degree).is_empty()
}

/// Violations of a C-weak multicolor splitting (Definition 1.3): constraints
/// of degree at least `degree_threshold` that see fewer than
/// `required_colors` distinct colors. Returns `(u, distinct_seen)` pairs.
///
/// # Panics
///
/// Panics if `colors.len() != b.right_count()`.
pub fn weak_multicolor_violations(
    b: &BipartiteGraph,
    colors: &[MultiColor],
    degree_threshold: usize,
    required_colors: usize,
) -> Vec<(usize, usize)> {
    assert_eq!(
        colors.len(),
        b.right_count(),
        "color vector length mismatch"
    );
    let mut violations = Vec::new();
    let mut seen = HashSet::new();
    for u in 0..b.left_count() {
        if b.left_degree(u) < degree_threshold {
            continue;
        }
        seen.clear();
        for &v in b.left_neighbors(u) {
            seen.insert(colors[v]);
        }
        if seen.len() < required_colors {
            violations.push((u, seen.len()));
        }
    }
    violations
}

/// Whether `colors` is a valid C-weak multicolor splitting with the given
/// thresholds (use [`crate::math::weak_multicolor_degree_threshold`] and
/// [`crate::math::weak_multicolor_required_colors`] for the paper's values).
pub fn is_weak_multicolor_splitting(
    b: &BipartiteGraph,
    colors: &[MultiColor],
    degree_threshold: usize,
    required_colors: usize,
) -> bool {
    weak_multicolor_violations(b, colors, degree_threshold, required_colors).is_empty()
}

/// Monochromatic edges under a vertex coloring of a simple graph.
///
/// # Panics
///
/// Panics if `colors.len() != g.node_count()`.
pub fn proper_coloring_violations(g: &Graph, colors: &[MultiColor]) -> Vec<(usize, usize)> {
    assert_eq!(colors.len(), g.node_count(), "color vector length mismatch");
    g.edges().filter(|&(u, v)| colors[u] == colors[v]).collect()
}

/// Whether `colors` is a proper vertex coloring of `g`.
pub fn is_proper_coloring(g: &Graph, colors: &[MultiColor]) -> bool {
    proper_coloring_violations(g, colors).is_empty()
}

/// Monochromatic *adjacent edge pairs* under an edge coloring aligned with
/// [`Graph::edges`] order — empty iff the coloring is a proper edge
/// coloring.
///
/// # Panics
///
/// Panics if `colors.len() != g.edge_count()`.
pub fn edge_coloring_violations(g: &Graph, colors: &[MultiColor]) -> Vec<(usize, usize)> {
    assert_eq!(
        colors.len(),
        g.edge_count(),
        "edge color vector length mismatch"
    );
    // per node, detect repeated colors among incident edges
    let mut incident: Vec<Vec<(MultiColor, usize)>> = vec![Vec::new(); g.node_count()];
    for (i, (u, v)) in g.edges().enumerate() {
        incident[u].push((colors[i], i));
        incident[v].push((colors[i], i));
    }
    let mut violations = Vec::new();
    for list in incident.iter_mut() {
        list.sort_unstable();
        for w in list.windows(2) {
            if w[0].0 == w[1].0 {
                violations.push((w[0].1, w[1].1));
            }
        }
    }
    violations.sort_unstable();
    violations.dedup();
    violations
}

/// Whether `colors` is a proper edge coloring of `g`.
pub fn is_proper_edge_coloring(g: &Graph, colors: &[MultiColor]) -> bool {
    edge_coloring_violations(g, colors).is_empty()
}

/// Violations of maximal-independent-set validity: returns
/// `(independence_violations, maximality_violations)` — edges inside the set,
/// and nodes neither in the set nor adjacent to it.
///
/// # Panics
///
/// Panics if `in_set.len() != g.node_count()`.
pub fn mis_violations(g: &Graph, in_set: &[bool]) -> (Vec<(usize, usize)>, Vec<usize>) {
    assert_eq!(in_set.len(), g.node_count(), "set mask length mismatch");
    let independence: Vec<(usize, usize)> =
        g.edges().filter(|&(u, v)| in_set[u] && in_set[v]).collect();
    let maximality: Vec<usize> = (0..g.node_count())
        .filter(|&v| !in_set[v] && !g.neighbors(v).iter().any(|&w| in_set[w]))
        .collect();
    (independence, maximality)
}

/// Whether `in_set` is a maximal independent set of `g`.
pub fn is_mis(g: &Graph, in_set: &[bool]) -> bool {
    let (ind, max) = mis_violations(g, in_set);
    ind.is_empty() && max.is_empty()
}

/// An orientation of a simple graph, aligned with [`Graph::edges`] order:
/// `forward[i] == true` directs the `i`-th edge `(u, v)` (with `u < v`)
/// from `u` to `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphOrientation {
    /// Direction flags in [`Graph::edges`] order.
    pub forward: Vec<bool>,
}

impl GraphOrientation {
    /// Out-degree of `v` in `g` under this orientation.
    ///
    /// # Panics
    ///
    /// Panics if the flag vector length does not match `g.edge_count()`.
    pub fn out_degree(&self, g: &Graph, v: usize) -> usize {
        assert_eq!(
            self.forward.len(),
            g.edge_count(),
            "orientation length mismatch"
        );
        g.edges()
            .zip(&self.forward)
            .filter(|&((a, b), &f)| if f { a == v } else { b == v })
            .count()
    }
}

/// Nodes of degree at least `min_degree` with **no outgoing edge** (sinks).
/// A sinkless orientation (Section 2.5 of the paper) has none.
pub fn sink_violations(g: &Graph, orientation: &GraphOrientation, min_degree: usize) -> Vec<usize> {
    assert_eq!(
        orientation.forward.len(),
        g.edge_count(),
        "orientation length mismatch"
    );
    let mut has_out = vec![false; g.node_count()];
    for ((a, b), &f) in g.edges().zip(&orientation.forward) {
        let tail = if f { a } else { b };
        has_out[tail] = true;
    }
    (0..g.node_count())
        .filter(|&v| g.degree(v) >= min_degree && !has_out[v])
        .collect()
}

/// Whether `orientation` is sinkless on all nodes of degree ≥ `min_degree`.
pub fn is_sinkless(g: &Graph, orientation: &GraphOrientation, min_degree: usize) -> bool {
    sink_violations(g, orientation, min_degree).is_empty()
}

/// Violations of a uniform (strong) splitting with accuracy `eps`
/// (Section 4.1): nodes of degree ≥ `min_degree` whose same-side or
/// other-side neighbor count leaves `[(1/2 − eps)·d(v), (1/2 + eps)·d(v)]`.
/// Returns `(v, red_neighbors, blue_neighbors)`.
///
/// # Panics
///
/// Panics if `sides.len() != g.node_count()`.
pub fn uniform_splitting_violations(
    g: &Graph,
    sides: &[Color],
    eps: f64,
    min_degree: usize,
) -> Vec<(usize, usize, usize)> {
    assert_eq!(sides.len(), g.node_count(), "side vector length mismatch");
    let mut violations = Vec::new();
    for v in 0..g.node_count() {
        let d = g.degree(v);
        if d < min_degree {
            continue;
        }
        let red = g
            .neighbors(v)
            .iter()
            .filter(|&&w| sides[w] == Color::Red)
            .count();
        let blue = d - red;
        let lo = (0.5 - eps) * d as f64;
        let hi = (0.5 + eps) * d as f64;
        if (red as f64) < lo || (red as f64) > hi || (blue as f64) < lo || (blue as f64) > hi {
            violations.push((v, red, blue));
        }
    }
    violations
}

/// Whether `sides` is a uniform splitting of accuracy `eps` on nodes of
/// degree at least `min_degree`.
pub fn is_uniform_splitting(g: &Graph, sides: &[Color], eps: f64, min_degree: usize) -> bool {
    uniform_splitting_violations(g, sides, eps, min_degree).is_empty()
}

/// Checker-check property tests: the certifiers themselves are validated
/// against permutation equivariance (relabeling nodes relabels the reported
/// violations and nothing else) and planted-violation completeness (a
/// deliberately broken solution is always reported). Everything downstream
/// — unit tests, the conformance harness, the experiments — trusts these
/// functions as ground truth, so they get their own adversarial tests.
#[cfg(test)]
mod checker_checks {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{RngExt, SeedableRng};

    /// A random instance, a random (mostly broken) coloring, and relabeling
    /// permutations for both sides, all derived from one seed.
    fn setup(seed: u64) -> (BipartiteGraph, Vec<Color>, Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = rng.random_range(2usize..12);
        let nr = rng.random_range(2usize..20);
        let b = generators::erdos_renyi_bipartite(nl, nr, 0.4, &mut rng);
        let colors: Vec<Color> = (0..nr)
            .map(|_| Color::from_bool(rng.random_bool(0.5)))
            .collect();
        let mut left_perm: Vec<usize> = (0..nl).collect();
        let mut right_perm: Vec<usize> = (0..nr).collect();
        left_perm.shuffle(&mut rng);
        right_perm.shuffle(&mut rng);
        (b, colors, left_perm, right_perm)
    }

    /// Applies `(left_perm, right_perm)` to a bipartite graph: node `u`
    /// becomes `left_perm[u]`, node `v` becomes `right_perm[v]`.
    fn permuted(b: &BipartiteGraph, left_perm: &[usize], right_perm: &[usize]) -> BipartiteGraph {
        let edges: Vec<(usize, usize)> = b
            .edges()
            .map(|(u, v)| (left_perm[u], right_perm[v]))
            .collect();
        BipartiteGraph::from_edges_bulk(b.left_count(), b.right_count(), &edges)
            .expect("permutation preserves simplicity")
    }

    fn permuted_colors<T: Copy>(colors: &[T], perm: &[usize]) -> Vec<T> {
        let mut out = colors.to_vec();
        for (v, &c) in colors.iter().enumerate() {
            out[perm[v]] = c;
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn weak_splitting_checker_is_permutation_equivariant(seed in 0u64..10_000) {
            let (b, colors, left_perm, right_perm) = setup(seed);
            let bp = permuted(&b, &left_perm, &right_perm);
            let cp = permuted_colors(&colors, &right_perm);
            for min_degree in [0, 2] {
                let mut expected: Vec<usize> = weak_splitting_violations(&b, &colors, min_degree)
                    .into_iter()
                    .map(|u| left_perm[u])
                    .collect();
                expected.sort_unstable();
                let mut got = weak_splitting_violations(&bp, &cp, min_degree);
                got.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }

        #[test]
        fn multicolor_checker_is_permutation_equivariant(seed in 0u64..10_000) {
            let (b, _, left_perm, right_perm) = setup(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC01);
            let palette = 3u32;
            let colors: Vec<MultiColor> = (0..b.right_count())
                .map(|_| rng.random_range(0..palette))
                .collect();
            let bp = permuted(&b, &left_perm, &right_perm);
            let cp = permuted_colors(&colors, &right_perm);
            let mut expected: Vec<(usize, MultiColor, usize)> =
                multicolor_splitting_violations(&b, &colors, palette, 0.4, 0)
                    .into_iter()
                    .map(|(u, x, c)| (left_perm[u], x, c))
                    .collect();
            expected.sort_unstable();
            let mut got = multicolor_splitting_violations(&bp, &cp, palette, 0.4, 0);
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn uniform_checker_is_permutation_equivariant(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(3usize..24);
            let g = generators::erdos_renyi(n, 0.35, &mut rng);
            let sides: Vec<Color> = (0..n)
                .map(|_| Color::from_bool(rng.random_bool(0.5)))
                .collect();
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let edges: Vec<(usize, usize)> =
                g.edges().map(|(u, v)| (perm[u], perm[v])).collect();
            let gp = Graph::from_edges_bulk(n, &edges).expect("permuted simple graph");
            let sp = permuted_colors(&sides, &perm);
            let mut expected: Vec<(usize, usize, usize)> =
                uniform_splitting_violations(&g, &sides, 0.2, 1)
                    .into_iter()
                    .map(|(v, r, bl)| (perm[v], r, bl))
                    .collect();
            expected.sort_unstable();
            let mut got = uniform_splitting_violations(&gp, &sp, 0.2, 1);
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn planted_weak_violation_is_always_reported(seed in 0u64..10_000) {
            let (b, mut colors, _, _) = setup(seed);
            let Some(u) = (0..b.left_count()).find(|&u| b.left_degree(u) >= 1) else {
                return;
            };
            // blind constraint u: all its variables red
            for &v in b.left_neighbors(u) {
                colors[v] = Color::Red;
            }
            prop_assert!(weak_splitting_violations(&b, &colors, 0).contains(&u));
            prop_assert!(!is_weak_splitting(&b, &colors, 0));
        }

        #[test]
        fn planted_multicolor_overload_is_always_reported(seed in 0u64..10_000) {
            let (b, _, _, _) = setup(seed);
            let Some(u) = (0..b.left_count()).find(|&u| b.left_degree(u) >= 3) else {
                return;
            };
            let mut colors: Vec<MultiColor> = vec![1; b.right_count()];
            // overload color 0 at u: all deg(u) neighbors, cap is ⌈0.4·deg⌉ < deg
            for &v in b.left_neighbors(u) {
                colors[v] = 0;
            }
            let d = b.left_degree(u);
            let violations = multicolor_splitting_violations(&b, &colors, 2, 0.4, 0);
            prop_assert!(violations.contains(&(u, 0, d)), "missing ({}, 0, {}) in {:?}", u, d, violations);
        }

        #[test]
        fn planted_uniform_violation_is_always_reported(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(3usize..24);
            let g = generators::erdos_renyi(n, 0.4, &mut rng);
            let Some(v) = (0..n).find(|&v| g.degree(v) >= 1) else {
                return;
            };
            let mut sides: Vec<Color> = (0..n)
                .map(|_| Color::from_bool(rng.random_bool(0.5)))
                .collect();
            // starve v of blue neighbors entirely
            for &w in g.neighbors(v) {
                sides[w] = Color::Red;
            }
            let violations = uniform_splitting_violations(&g, &sides, 0.25, 1);
            prop_assert!(violations.iter().any(|&(x, _, blue)| x == v && blue == 0));
        }

        #[test]
        fn planted_sink_is_always_reported(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(3usize..24);
            let g = generators::erdos_renyi(n, 0.4, &mut rng);
            let Some(v) = (0..n).find(|&v| g.degree(v) >= 1) else {
                return;
            };
            // orient every incident edge into v, the rest arbitrarily
            let forward: Vec<bool> = g
                .edges()
                .map(|(a, b2)| {
                    if b2 == v {
                        true
                    } else if a == v {
                        false
                    } else {
                        rng.random_bool(0.5)
                    }
                })
                .collect();
            let o = GraphOrientation { forward };
            prop_assert!(sink_violations(&g, &o, 0).contains(&v));
            prop_assert!(!is_sinkless(&g, &o, 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_constraints() -> BipartiteGraph {
        // u0 ~ {v0, v1}, u1 ~ {v1, v2}
        BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn weak_splitting_valid_and_invalid() {
        let b = two_constraints();
        let good = vec![Color::Red, Color::Blue, Color::Red];
        assert!(is_weak_splitting(&b, &good, 0));
        let bad = vec![Color::Red, Color::Red, Color::Blue];
        assert_eq!(weak_splitting_violations(&b, &bad, 0), vec![0]);
        // with a degree threshold above deg(u0) the violation disappears
        assert!(is_weak_splitting(&b, &bad, 3));
    }

    #[test]
    fn sees_both_colors_partial() {
        let b = two_constraints();
        let partial = vec![Some(Color::Red), Some(Color::Blue), None];
        assert!(sees_both_colors(&b, 0, &partial));
        assert!(!sees_both_colors(&b, 1, &partial));
    }

    #[test]
    fn multicolor_splitting_cap() {
        let b = BipartiteGraph::from_edges(1, 4, &[(0, 0), (0, 1), (0, 2), (0, 3)]).unwrap();
        // λ = 1/2, deg = 4 → cap = 2 per color
        let ok = vec![0, 0, 1, 1];
        assert!(is_multicolor_splitting(&b, &ok, 2, 0.5, 0));
        let bad = vec![0, 0, 0, 1];
        let v = multicolor_splitting_violations(&b, &bad, 2, 0.5, 0);
        assert_eq!(v, vec![(0, 0, 3)]);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn multicolor_rejects_bad_lambda() {
        let b = two_constraints();
        let _ = multicolor_splitting_violations(&b, &[0, 0, 0], 1, 0.0, 0);
    }

    #[test]
    fn weak_multicolor_counts_distinct() {
        let b = BipartiteGraph::from_edges(1, 4, &[(0, 0), (0, 1), (0, 2), (0, 3)]).unwrap();
        let colors = vec![0, 1, 1, 2];
        assert!(is_weak_multicolor_splitting(&b, &colors, 0, 3));
        let v = weak_multicolor_violations(&b, &colors, 0, 4);
        assert_eq!(v, vec![(0, 3)]);
        // threshold above the degree silences the constraint
        assert!(is_weak_multicolor_splitting(&b, &colors, 5, 4));
    }

    #[test]
    fn proper_coloring_detects_monochromatic_edge() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(is_proper_coloring(&g, &[0, 1, 0]));
        assert_eq!(proper_coloring_violations(&g, &[0, 0, 1]), vec![(0, 1)]);
    }

    #[test]
    fn edge_coloring_checker() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        // path edges alternate: proper with 2 colors
        assert!(is_proper_edge_coloring(&g, &[0, 1, 0]));
        // both edges at node 1 share color 0
        let v = edge_coloring_violations(&g, &[0, 0, 1]);
        assert_eq!(v, vec![(0, 1)]);
        // a star needs distinct colors on every edge
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(is_proper_edge_coloring(&star, &[0, 1, 2]));
        assert!(!is_proper_edge_coloring(&star, &[0, 1, 1]));
    }

    #[test]
    fn mis_checks_independence_and_maximality() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(is_mis(&g, &[true, false, true, false]));
        // not independent
        let (ind, _) = mis_violations(&g, &[true, true, false, false]);
        assert_eq!(ind, vec![(0, 1)]);
        // not maximal: node 3 uncovered
        let (ind, max) = mis_violations(&g, &[true, false, false, false]);
        assert!(ind.is_empty());
        assert_eq!(max, vec![2, 3]);
    }

    #[test]
    fn sinkless_orientation_on_cycle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        // edges() order: (0,1), (0,2), (1,2); orient 0→1, 2→0, 1→2 : a cycle
        let o = GraphOrientation {
            forward: vec![true, false, true],
        };
        assert!(is_sinkless(&g, &o, 0));
        assert_eq!(o.out_degree(&g, 0), 1);
        // orient everything into node 2's direction making node... make 0 a sink:
        let o = GraphOrientation {
            forward: vec![false, false, true],
        };
        assert_eq!(sink_violations(&g, &o, 0), vec![0]);
        // min_degree above deg silences it
        assert!(is_sinkless(&g, &o, 3));
    }

    #[test]
    fn uniform_splitting_tolerance() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let sides = vec![Color::Red, Color::Red, Color::Red, Color::Blue, Color::Blue];
        // node 0 has 2 red / 2 blue neighbors: perfectly balanced
        assert!(is_uniform_splitting(&g, &sides, 0.0, 2));
        let lopsided = vec![Color::Red, Color::Red, Color::Red, Color::Red, Color::Blue];
        // node 0 has 3 red / 1 blue; with eps = 0.1 bounds are [1.6, 2.4]
        let v = uniform_splitting_violations(&g, &lopsided, 0.1, 2);
        assert_eq!(v, vec![(0, 3, 1)]);
        // generous eps accepts it
        assert!(is_uniform_splitting(&g, &lopsided, 0.3, 2));
    }
}
