//! Output label types shared across the reproduction.

use std::fmt;

/// The two colors of a (weak) splitting (Definition 1.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Color {
    /// The "red" class.
    Red,
    /// The "blue" class.
    Blue,
}

impl Color {
    /// The opposite color.
    ///
    /// # Examples
    ///
    /// ```
    /// use splitgraph::Color;
    /// assert_eq!(Color::Red.flipped(), Color::Blue);
    /// ```
    pub fn flipped(self) -> Color {
        match self {
            Color::Red => Color::Blue,
            Color::Blue => Color::Red,
        }
    }

    /// Both colors, in a fixed order (`Red`, `Blue`).
    pub fn both() -> [Color; 2] {
        [Color::Red, Color::Blue]
    }

    /// Maps a boolean coin to a color (`true` → `Red`).
    pub fn from_bool(red: bool) -> Color {
        if red {
            Color::Red
        } else {
            Color::Blue
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Color::Red => write!(f, "red"),
            Color::Blue => write!(f, "blue"),
        }
    }
}

/// A color from a palette of configurable size (multicolor splitting,
/// Definitions 1.2 and 1.3). Colors are dense indices `0..C`.
pub type MultiColor = u32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        for c in Color::both() {
            assert_eq!(c.flipped().flipped(), c);
            assert_ne!(c.flipped(), c);
        }
    }

    #[test]
    fn from_bool_roundtrip() {
        assert_eq!(Color::from_bool(true), Color::Red);
        assert_eq!(Color::from_bool(false), Color::Blue);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Color::Red.to_string(), "red");
        assert_eq!(Color::Blue.to_string(), "blue");
    }
}
