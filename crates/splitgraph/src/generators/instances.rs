//! Paper-specific instance constructions.
//!
//! * Section 1.2: a general graph `G` becomes a weak-splitting instance by
//!   doubling every node into a left copy `vL ∈ U` and a right copy
//!   `vR ∈ V`, connecting `vL` to `uR` for every edge `{u, v}` of `G`.
//! * Section 2.5 / Figure 1: the node–edge incidence construction that
//!   reduces sinkless orientation to weak splitting on rank-2 instances.

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;

/// The doubling construction of Section 1.2: node `v` of `G` yields
/// constraint `vL` (left index `v`) and variable `vR` (right index `v`);
/// every edge `{u, v}` yields bipartite edges `(uL, vR)` and `(vL, uR)`.
///
/// The resulting instance satisfies `δ_B = δ_G`, `Δ_B = Δ_G` and
/// `r_B = Δ_G` — in particular `δ_B ≤ r_B` always (the reason Theorem 2.7's
/// `δ ≥ 6r` regime cannot arise from general graphs, as the paper notes).
///
/// # Examples
///
/// ```
/// use splitgraph::{Graph, generators::doubling_instance};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let b = doubling_instance(&g);
/// assert_eq!(b.min_left_degree(), 2);
/// assert_eq!(b.rank(), 2);
/// ```
pub fn doubling_instance(g: &Graph) -> BipartiteGraph {
    let n = g.node_count();
    let mut edges = Vec::with_capacity(2 * g.edge_count());
    for (u, v) in g.edges() {
        edges.push((u, v));
        edges.push((v, u));
    }
    BipartiteGraph::from_edges_bulk(n, n, &edges).expect("simple graph gives simple doubling")
}

/// Node–edge incidence graph: constraints are the nodes of `G`, variables
/// its edges (in [`Graph::edges`] order), connected by incidence. Always has
/// rank exactly 2 (for graphs with at least one edge) and `δ_B = δ_G`.
///
/// Returns the bipartite graph together with the edge list indexing the
/// variable side.
pub fn incidence_instance(g: &Graph) -> (BipartiteGraph, Vec<(usize, usize)>) {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let incidences: Vec<(usize, usize)> = edges
        .iter()
        .enumerate()
        .flat_map(|(i, &(u, v))| [(u, i), (v, i)])
        .collect();
    let b = BipartiteGraph::from_edges_bulk(g.node_count(), edges.len(), &incidences)
        .expect("incidence edges are simple");
    (b, edges)
}

/// The Section 2.5 construction reducing sinkless orientation on `G` to weak
/// splitting: constraint `u` is connected to the variable of edge
/// `e = {u, v}` iff `v` lies on `u`'s *majority ID side* — toward larger IDs
/// if at least half of `u`'s neighbors have larger IDs, toward smaller IDs
/// otherwise.
#[derive(Debug, Clone)]
pub struct SinklessInstance {
    /// The weak-splitting instance `B` (rank ≤ 2).
    pub bipartite: BipartiteGraph,
    /// Variable-side index → edge of `G` (in [`Graph::edges`] order).
    pub edges: Vec<(usize, usize)>,
    /// Whether node `u` connected toward **larger**-ID neighbors.
    pub toward_larger: Vec<bool>,
}

/// Builds the [`SinklessInstance`] for `G` under the ID assignment `ids`
/// (`ids[v]` is the unique identifier of node `v`).
///
/// For `δ_G ≥ 5` the resulting bipartite graph has `δ_B ≥ ⌈δ_G/2⌉ ≥ 3` and
/// rank ≤ 2, as required by Theorem 2.10.
///
/// # Panics
///
/// Panics if `ids.len() != g.node_count()` or if two nodes share an ID.
pub fn sinkless_instance(g: &Graph, ids: &[u64]) -> SinklessInstance {
    assert_eq!(ids.len(), g.node_count(), "id vector length mismatch");
    {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be unique");
    }
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut b = BipartiteGraph::new(g.node_count(), edges.len());
    let toward_larger: Vec<bool> = (0..g.node_count())
        .map(|u| {
            let larger = g.neighbors(u).iter().filter(|&&v| ids[v] > ids[u]).count();
            2 * larger >= g.degree(u)
        })
        .collect();
    for (i, &(x, y)) in edges.iter().enumerate() {
        // connect endpoint u to this edge iff the other endpoint is on u's
        // majority side
        for (u, v) in [(x, y), (y, x)] {
            let keep = if toward_larger[u] {
                ids[v] > ids[u]
            } else {
                ids[v] < ids[u]
            };
            if keep {
                b.add_edge(u, i).expect("incidence edges are simple");
            }
        }
    }
    SinklessInstance {
        bipartite: b,
        edges,
        toward_larger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_matches_paper_parameters() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let b = doubling_instance(&g);
        assert_eq!(b.left_count(), 4);
        assert_eq!(b.right_count(), 4);
        assert_eq!(b.edge_count(), 2 * g.edge_count());
        for v in 0..4 {
            assert_eq!(b.left_degree(v), g.degree(v));
            assert_eq!(b.right_degree(v), g.degree(v));
        }
        assert_eq!(b.rank(), g.max_degree());
        // vL is NOT adjacent to vR (no self-edges in G)
        for v in 0..4 {
            assert!(!b.contains_edge(v, v));
        }
    }

    #[test]
    fn incidence_has_rank_two() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (b, edges) = incidence_instance(&g);
        assert_eq!(edges.len(), 3);
        assert_eq!(b.rank(), 2);
        for (i, &(u, v)) in edges.iter().enumerate() {
            assert!(b.contains_edge(u, i));
            assert!(b.contains_edge(v, i));
        }
        assert_eq!(b.left_degree(1), 2);
    }

    #[test]
    fn sinkless_instance_majority_side() {
        // star with center 0 (id 10), leaves 1..4 (ids 1, 2, 30, 40):
        // center has 2 of 4 larger → toward_larger
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let ids = [10, 1, 2, 30, 40];
        let inst = sinkless_instance(&g, &ids);
        assert!(inst.toward_larger[0]);
        assert_eq!(inst.bipartite.left_degree(0), 2); // edges to nodes 3, 4
                                                      // leaf 1 (id 1): single neighbor has larger id → toward_larger, keeps its edge
        assert!(inst.toward_larger[1]);
        assert_eq!(inst.bipartite.left_degree(1), 1);
        // leaf 4 (id 40): single neighbor has smaller id → toward smaller
        assert!(!inst.toward_larger[4]);
        assert_eq!(inst.bipartite.left_degree(4), 1);
        assert!(inst.bipartite.rank() <= 2);
    }

    #[test]
    fn sinkless_instance_degree_bound() {
        // on a 6-regular-ish graph every node keeps at least ⌈deg/2⌉ edges
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 5),
            ],
        )
        .unwrap();
        let ids: Vec<u64> = (0..6).map(|v| (v * v + 3) as u64).collect();
        let inst = sinkless_instance(&g, &ids);
        for u in 0..6 {
            assert!(
                inst.bipartite.left_degree(u) >= g.degree(u).div_ceil(2),
                "node {u} kept too few edges"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn sinkless_instance_rejects_duplicate_ids() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let _ = sinkless_instance(&g, &[5, 5, 7]);
    }
}
