//! Instance generators: random graph models, deterministic families, and the
//! paper-specific constructions (doubling, incidence, sinkless-reduction,
//! high-girth).

mod bipartite;
mod general;
mod high_girth;
mod instances;

pub use bipartite::{
    bipartite_disjoint_union, complete_bipartite, erdos_renyi_bipartite, power_law_bipartite,
    random_biregular, random_left_regular, skewed_bipartite,
};
pub use general::{complete, cycle, erdos_renyi, hypercube, path, random_regular, torus};
pub use high_girth::{
    break_short_cycles, projective_girth12_bipartite, projective_incidence_graph,
    random_girth10_bipartite, random_girth5,
};
pub use instances::{doubling_instance, incidence_instance, sinkless_instance, SinklessInstance};
