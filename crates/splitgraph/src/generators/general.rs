//! Generators for simple graphs: deterministic families and random models.

use crate::error::GraphError;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// The cycle `C_n`.
///
/// # Errors
///
/// Returns an error if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("cycle needs n >= 3, got {n}"),
        });
    }
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Ok(Graph::from_edges_bulk(n, &edges).expect("cycle edges are simple"))
}

/// The path `P_n` on `n` nodes.
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    Graph::from_edges_bulk(n, &edges).expect("path edges are simple")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges_bulk(n, &edges).expect("complete graph edges are simple")
}

/// The `d`-dimensional hypercube (`2^d` nodes, degree `d`).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges_bulk(n, &edges).expect("hypercube edges are simple")
}

/// The `rows × cols` torus (wrap-around grid): 4-regular for
/// `rows, cols ≥ 3`, a standard benchmark topology for LOCAL algorithms.
///
/// # Errors
///
/// Returns an error if either dimension is below 3 (smaller wraps would
/// create parallel edges).
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("torus needs both dimensions ≥ 3, got {rows}×{cols}"),
        });
    }
    let mut edges = Vec::with_capacity(2 * rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id((r + 1) % rows, c)));
            edges.push((id(r, c), id(r, (c + 1) % cols)));
        }
    }
    Ok(Graph::from_edges_bulk(rows * cols, &edges).expect("torus edges are simple"))
}

/// Erdős–Rényi graph `G(n, p)`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges_bulk(n, &edges).expect("fresh pairs are simple")
}

/// Random `d`-regular simple graph via the configuration model with
/// local edge-swap repair of self-loops and duplicates.
///
/// # Errors
///
/// Returns an error if `n·d` is odd, `d ≥ n`, or repair fails repeatedly
/// (only plausible for extreme parameters such as `d = n − 1`).
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        // the empty graph is vacuously 0-regular for d = 0
        return if d == 0 {
            Ok(Graph::new(0))
        } else {
            Err(GraphError::InfeasibleDegrees {
                reason: format!("degree {d} requested on an empty node set"),
            })
        };
    }
    if d >= n {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("degree {d} must be smaller than node count {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("n*d = {} must be even", n * d),
        });
    }
    const ATTEMPTS: usize = 200;
    for _ in 0..ATTEMPTS {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut pairs: Vec<(usize, usize)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        if repair_pairing(&mut pairs, rng) {
            let g = Graph::from_edges_bulk(n, &pairs).expect("repaired pairing is simple");
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed {
        reason: format!("random {d}-regular graph on {n} nodes: repair attempts exhausted"),
    })
}

/// Repairs a stub pairing in place by swapping the second stubs of offending
/// pairs with random partners until the pairing is a simple graph; returns
/// false if it gives up. Each pass fixes a bad pair with probability
/// `1 − O(d/n)`, so a few passes suffice away from the complete-graph regime.
fn repair_pairing<R: Rng + ?Sized>(pairs: &mut [(usize, usize)], rng: &mut R) -> bool {
    use std::collections::HashSet;
    let key = |u: usize, v: usize| (u.min(v), u.max(v));
    const PASSES: usize = 500;
    for _ in 0..PASSES {
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if u == v || !seen.insert(key(u, v)) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            return true;
        }
        for &i in &bad {
            let j = rng.random_range(0..pairs.len());
            let tmp = pairs[i].1;
            pairs[i].1 = pairs[j].1;
            pairs[j].1 = tmp;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_and_path() {
        let c = cycle(5).unwrap();
        assert_eq!(c.edge_count(), 5);
        assert!(c.neighbors(0).contains(&4));
        assert!(cycle(2).is_err());
        let p = path(4);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(1), 2);
    }

    #[test]
    fn complete_graph_degrees() {
        let k = complete(6);
        assert_eq!(k.edge_count(), 15);
        assert_eq!(k.min_degree(), 5);
    }

    #[test]
    fn hypercube_structure() {
        let h = hypercube(4);
        assert_eq!(h.node_count(), 16);
        assert_eq!(h.max_degree(), 4);
        assert_eq!(h.min_degree(), 4);
        assert_eq!(h.edge_count(), 32);
    }

    #[test]
    fn torus_is_4_regular() {
        let t = torus(4, 5).unwrap();
        assert_eq!(t.node_count(), 20);
        assert_eq!(t.edge_count(), 40);
        for v in 0..20 {
            assert_eq!(t.degree(v), 4);
        }
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let g0 = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(g0.edge_count(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g1.edge_count(), 45);
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(n, d) in &[(10, 3), (50, 4), (64, 7), (100, 16)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            for v in 0..n {
                assert_eq!(g.degree(v), d, "node {v} in {n}-node {d}-regular graph");
            }
        }
    }

    #[test]
    fn random_regular_rejects_infeasible() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_regular(5, 3, &mut rng).is_err()); // odd n*d
        assert!(random_regular(4, 4, &mut rng).is_err()); // d >= n
    }

    #[test]
    fn hypercube_trivial_dimensions() {
        // d = 0: the single-node graph, no edges
        let h0 = hypercube(0);
        assert_eq!(h0.node_count(), 1);
        assert_eq!(h0.edge_count(), 0);
        assert_eq!(h0.degree(0), 0);
        // d = 1: a single edge
        let h1 = hypercube(1);
        assert_eq!(h1.node_count(), 2);
        assert_eq!(h1.edge_count(), 1);
        assert!(h1.contains_edge(0, 1));
    }

    #[test]
    fn torus_minimal_dimensions() {
        // 3×3 is the smallest torus without parallel wrap-around edges
        let t = torus(3, 3).unwrap();
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.edge_count(), 18);
        for v in 0..9 {
            assert_eq!(t.degree(v), 4);
        }
        // anything smaller in either dimension must be rejected, not folded
        assert!(torus(2, 3).is_err());
        assert!(torus(3, 2).is_err());
        assert!(torus(0, 0).is_err());
    }

    #[test]
    fn trivial_families_are_well_formed() {
        assert_eq!(path(0).node_count(), 0);
        let p1 = path(1);
        assert_eq!((p1.node_count(), p1.edge_count()), (1, 0));
        assert_eq!(complete(0).node_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
        let c3 = cycle(3).unwrap();
        assert_eq!((c3.node_count(), c3.edge_count()), (3, 3));
    }

    #[test]
    fn erdos_renyi_clamps_out_of_range_probabilities() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(erdos_renyi(6, -0.5, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(6, 1.5, &mut rng).edge_count(), 15);
    }

    #[test]
    fn random_regular_degenerate_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        // the empty graph is vacuously 0-regular
        let g = random_regular(0, 0, &mut rng).unwrap();
        assert_eq!(g.node_count(), 0);
        assert!(random_regular(0, 2, &mut rng).is_err());
        // d = 0 on any node set: isolated nodes
        let g = random_regular(7, 0, &mut rng).unwrap();
        assert_eq!((g.node_count(), g.edge_count()), (7, 0));
        // n·d odd in both orders of magnitude
        assert!(random_regular(3, 1, &mut rng).is_err());
        assert!(random_regular(101, 7, &mut rng).is_err());
    }

    #[test]
    fn random_regular_dense_case() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular(8, 6, &mut rng).unwrap();
        for v in 0..8 {
            assert_eq!(g.degree(v), 6);
        }
    }
}
