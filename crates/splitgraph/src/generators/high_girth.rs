//! High-girth graph generators for Section 5 of the paper.
//!
//! Theorems 5.2/5.3 assume bipartite instances of girth at least 10. We
//! obtain them as node–edge incidence graphs of simple graphs of girth at
//! least 5: a cycle of length `g` in `G` becomes a cycle of length `2g` in
//! its incidence graph, so girth-5 hosts yield girth-10 bipartite instances.
//! Girth-5 hosts come from random near-regular graphs with all 3- and
//! 4-cycles broken by edge deletion (a random `d`-regular graph contains
//! only `O(d⁴)` short cycles in expectation, independent of `n`, so degrees
//! stay close to `d`).

use crate::bipartite::BipartiteGraph;
use crate::error::GraphError;
use crate::generators::general::random_regular;
use crate::generators::instances::incidence_instance;
use crate::graph::Graph;
use rand::Rng;

/// Deletes edges of `g` until it contains no cycle of length 3 or 4
/// (girth ≥ 5). Returns the number of edges removed.
///
/// Each offending cycle loses one uniformly random edge, re-checking until
/// clean; this terminates because every deletion strictly reduces the edge
/// count.
pub fn break_short_cycles<R: Rng + ?Sized>(g: &mut Graph, rng: &mut R) -> usize {
    let mut removed = 0;
    loop {
        match find_short_cycle(g) {
            None => return removed,
            Some(cycle) => {
                let i = rng.random_range(0..cycle.len());
                let u = cycle[i];
                let v = cycle[(i + 1) % cycle.len()];
                let existed = g.remove_edge(u, v);
                debug_assert!(existed, "cycle edge must exist");
                removed += 1;
            }
        }
    }
}

/// Finds a cycle of length 3 or 4 as a node list, if one exists.
fn find_short_cycle(g: &Graph) -> Option<Vec<usize>> {
    let n = g.node_count();
    // triangles: edge (u, v) with a common neighbor w
    for u in 0..n {
        for &v in g.neighbors(u) {
            if v < u {
                continue;
            }
            if let Some(&w) = common_neighbor(g, u, v, usize::MAX) {
                return Some(vec![u, v, w]);
            }
        }
    }
    // 4-cycles: u, w with two distinct common neighbors x, y
    for u in 0..n {
        let mut seen: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &x in g.neighbors(u) {
            for &w in g.neighbors(x) {
                if w <= u {
                    continue;
                }
                if let Some(&x0) = seen.get(&w) {
                    if x0 != x {
                        return Some(vec![u, x0, w, x]);
                    }
                } else {
                    seen.insert(w, x);
                }
            }
        }
    }
    None
}

fn common_neighbor(g: &Graph, u: usize, v: usize, exclude: usize) -> Option<&usize> {
    g.neighbors(u)
        .iter()
        .find(|&&w| w != exclude && g.contains_edge(v, w))
}

/// Random near-`d`-regular graph of girth at least 5: a random `d`-regular
/// graph with all short cycles broken.
///
/// # Errors
///
/// Propagates infeasible-parameter errors from [`random_regular`].
pub fn random_girth5<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let mut g = random_regular(n, d, rng)?;
    break_short_cycles(&mut g, rng);
    Ok(g)
}

/// Random bipartite instance of girth at least 10 and rank 2 (plus the host
/// graph's edge list): the incidence instance of [`random_girth5`].
///
/// Constraint degrees equal the host degrees, i.e., are close to `d`.
///
/// # Errors
///
/// Propagates infeasible-parameter errors from [`random_regular`].
pub fn random_girth10_bipartite<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<(BipartiteGraph, Vec<(usize, usize)>), GraphError> {
    let g = random_girth5(n, d, rng)?;
    Ok(incidence_instance(&g))
}

/// The Levi graph (point–line incidence graph) of the projective plane
/// `PG(2, q)`: `q² + q + 1` points and as many lines, a point adjacent to a
/// line iff their homogeneous coordinates are orthogonal. For prime `q ≥ 2`
/// this graph is `(q+1)`-regular with girth exactly 6 — the standard
/// *explicit* high-girth dense family, used here as a host whose incidence
/// instance has girth ≥ 12 without the cost of randomized cycle-breaking.
///
/// # Errors
///
/// Returns an error if `q < 2` or `q` is not prime.
pub fn projective_incidence_graph(q: u64) -> Result<Graph, GraphError> {
    if q < 2 || !is_prime_u64(q) {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("projective plane needs a prime q ≥ 2, got {q}"),
        });
    }
    // canonical projective triples: (1, y, z), (0, 1, z), (0, 0, 1);
    // by self-duality the same list enumerates points and lines
    let mut triples: Vec<[u64; 3]> = Vec::with_capacity((q * q + q + 1) as usize);
    for y in 0..q {
        for z in 0..q {
            triples.push([1, y, z]);
        }
    }
    for z in 0..q {
        triples.push([0, 1, z]);
    }
    triples.push([0, 0, 1]);
    let m = triples.len();
    // nodes: points 0..m, lines m..2m
    let mut g = Graph::new(2 * m);
    for i in 0..m {
        for j in 0..m {
            let dot = triples[i]
                .iter()
                .zip(&triples[j])
                .map(|(&a, &b)| a * b % q)
                .sum::<u64>()
                % q;
            if dot == 0 {
                g.add_edge(i, m + j)
                    .expect("point and line nodes are distinct");
            }
        }
    }
    Ok(g)
}

fn is_prime_u64(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3u64;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Explicit girth-≥10 (in fact 12), rank-2 bipartite instance: the
/// incidence instance of [`projective_incidence_graph`]. All constraint
/// degrees equal `q + 1`.
///
/// # Errors
///
/// Propagates [`projective_incidence_graph`] errors.
pub fn projective_girth12_bipartite(
    q: u64,
) -> Result<(BipartiteGraph, Vec<(usize, usize)>), GraphError> {
    let g = projective_incidence_graph(q)?;
    Ok(incidence_instance(&g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::girth::{bipartite_girth, girth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn break_short_cycles_on_k4() {
        let mut g =
            Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let removed = break_short_cycles(&mut g, &mut rng);
        assert!(removed >= 3, "K4 needs at least 3 removals, got {removed}");
        assert!(girth(&g).is_none_or(|x| x >= 5));
    }

    #[test]
    fn find_short_cycle_detects_square() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let cycle = find_short_cycle(&g).expect("square must be found");
        assert_eq!(cycle.len(), 4);
        // consecutive cycle nodes are adjacent
        for i in 0..cycle.len() {
            assert!(g.contains_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
    }

    #[test]
    fn find_short_cycle_ignores_pentagon() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert!(find_short_cycle(&g).is_none());
    }

    #[test]
    fn random_girth5_has_girth_at_least_5() {
        // Seed chosen so cycle-breaking keeps the minimum degree at 3
        // under the vendored deterministic RNG stream.
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_girth5(120, 6, &mut rng).unwrap();
        assert!(girth(&g).is_none_or(|x| x >= 5), "girth = {:?}", girth(&g));
        // degrees stay close to d
        assert!(
            g.min_degree() >= 3,
            "min degree dropped to {}",
            g.min_degree()
        );
    }

    #[test]
    fn projective_incidence_girth_6_and_regular() {
        for q in [2u64, 3, 7] {
            let g = projective_incidence_graph(q).unwrap();
            assert_eq!(g.node_count() as u64, 2 * (q * q + q + 1));
            assert_eq!(girth(&g), Some(6), "q = {q}");
            assert_eq!(g.min_degree() as u64, q + 1);
            assert_eq!(g.max_degree() as u64, q + 1);
        }
    }

    #[test]
    fn projective_incidence_rejects_bad_q() {
        assert!(projective_incidence_graph(1).is_err());
        assert!(projective_incidence_graph(9).is_err()); // not prime
    }

    #[test]
    fn projective_girth12_bipartite_certified() {
        let (b, edges) = projective_girth12_bipartite(3).unwrap();
        assert_eq!(b.rank(), 2);
        assert_eq!(b.right_count(), edges.len());
        assert_eq!(bipartite_girth(&b), Some(12));
    }

    #[test]
    fn random_girth10_bipartite_certified() {
        let mut rng = StdRng::seed_from_u64(23);
        let (b, edges) = random_girth10_bipartite(100, 5, &mut rng).unwrap();
        assert_eq!(b.rank(), 2);
        assert_eq!(b.right_count(), edges.len());
        assert!(
            bipartite_girth(&b).is_none_or(|x| x >= 10),
            "bipartite girth = {:?}",
            bipartite_girth(&b)
        );
    }
}
