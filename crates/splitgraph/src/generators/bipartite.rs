//! Generators for bipartite constraint/variable instances.

use crate::bipartite::BipartiteGraph;
use crate::error::GraphError;
use rand::seq::SliceRandom;
use rand::Rng;

/// Random bipartite graph where every **left** (constraint) node has exactly
/// `left_degree` distinct right neighbors chosen uniformly at random.
///
/// Right degrees concentrate around `left_count·left_degree / right_count`;
/// the realized rank is whatever the sample produced — measure it with
/// [`BipartiteGraph::rank`].
///
/// # Errors
///
/// Returns an error if `left_degree > right_count`.
pub fn random_left_regular<R: Rng + ?Sized>(
    left_count: usize,
    right_count: usize,
    left_degree: usize,
    rng: &mut R,
) -> Result<BipartiteGraph, GraphError> {
    if left_degree > right_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("left degree {left_degree} exceeds right side size {right_count}"),
        });
    }
    let mut b = BipartiteGraph::new(left_count, right_count);
    let mut pool: Vec<usize> = (0..right_count).collect();
    for u in 0..left_count {
        // partial Fisher–Yates: draw `left_degree` distinct right nodes
        for i in 0..left_degree {
            let j = rng.random_range(i..right_count);
            pool.swap(i, j);
            b.add_edge(u, pool[i])
                .expect("distinct draws give fresh edges");
        }
    }
    Ok(b)
}

/// Random biregular bipartite graph: every left node has degree
/// `left_degree` and every right node degree `left_count·left_degree /
/// right_count`, via the configuration model with swap repair.
///
/// # Errors
///
/// Returns an error if the degree sums do not match
/// (`left_count·left_degree` must be divisible by `right_count`), if the
/// implied right degree exceeds `left_count`, or if repair fails repeatedly.
pub fn random_biregular<R: Rng + ?Sized>(
    left_count: usize,
    right_count: usize,
    left_degree: usize,
    rng: &mut R,
) -> Result<BipartiteGraph, GraphError> {
    let stubs = left_count * left_degree;
    if right_count == 0 || !stubs.is_multiple_of(right_count) {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("left stubs {stubs} not divisible by right side size {right_count}"),
        });
    }
    let right_degree = stubs / right_count;
    if right_degree > left_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!(
                "implied right degree {right_degree} exceeds left side size {left_count}"
            ),
        });
    }
    if left_degree > right_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("left degree {left_degree} exceeds right side size {right_count}"),
        });
    }
    const ATTEMPTS: usize = 200;
    for _ in 0..ATTEMPTS {
        let left_stubs: Vec<usize> = (0..left_count)
            .flat_map(|u| std::iter::repeat_n(u, left_degree))
            .collect();
        let mut right_stubs: Vec<usize> = (0..right_count)
            .flat_map(|v| std::iter::repeat_n(v, right_degree))
            .collect();
        right_stubs.shuffle(rng);
        let mut pairs: Vec<(usize, usize)> = left_stubs.into_iter().zip(right_stubs).collect();
        if repair_bipartite_pairing(&mut pairs, rng) {
            return BipartiteGraph::from_edges(left_count, right_count, &pairs);
        }
    }
    Err(GraphError::GenerationFailed {
        reason: format!(
            "biregular bipartite graph ({left_count}×{right_count}, left degree {left_degree}): repair attempts exhausted"
        ),
    })
}

fn repair_bipartite_pairing<R: Rng + ?Sized>(pairs: &mut [(usize, usize)], rng: &mut R) -> bool {
    use std::collections::HashSet;
    const PASSES: usize = 500;
    for _ in 0..PASSES {
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut bad: Vec<usize> = Vec::new();
        for (i, &p) in pairs.iter().enumerate() {
            if !seen.insert(p) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            return true;
        }
        for &i in &bad {
            let j = rng.random_range(0..pairs.len());
            let tmp = pairs[i].1;
            pairs[i].1 = pairs[j].1;
            pairs[j].1 = tmp;
        }
    }
    false
}

/// Bipartite Erdős–Rényi graph: each of the `left·right` pairs is an edge
/// independently with probability `p`.
pub fn erdos_renyi_bipartite<R: Rng + ?Sized>(
    left_count: usize,
    right_count: usize,
    p: f64,
    rng: &mut R,
) -> BipartiteGraph {
    let mut b = BipartiteGraph::new(left_count, right_count);
    let p = p.clamp(0.0, 1.0);
    for u in 0..left_count {
        for v in 0..right_count {
            if rng.random_bool(p) {
                b.add_edge(u, v).expect("fresh pair");
            }
        }
    }
    b
}

/// The complete bipartite graph `K_{left,right}`.
pub fn complete_bipartite(left_count: usize, right_count: usize) -> BipartiteGraph {
    let mut b = BipartiteGraph::new(left_count, right_count);
    for u in 0..left_count {
        for v in 0..right_count {
            b.add_edge(u, v).expect("fresh pair");
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn left_regular_exact_left_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = random_left_regular(40, 25, 8, &mut rng).unwrap();
        assert_eq!(b.left_count(), 40);
        assert_eq!(b.right_count(), 25);
        for u in 0..40 {
            assert_eq!(b.left_degree(u), 8);
        }
        assert_eq!(b.edge_count(), 320);
        assert!(b.rank() >= 320 / 25);
    }

    #[test]
    fn left_regular_rejects_excess_degree() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_left_regular(3, 2, 3, &mut rng).is_err());
    }

    #[test]
    fn biregular_exact_both_sides() {
        let mut rng = StdRng::seed_from_u64(5);
        // 30 * 6 = 180 stubs, right side 20 → right degree 9
        let b = random_biregular(30, 20, 6, &mut rng).unwrap();
        for u in 0..30 {
            assert_eq!(b.left_degree(u), 6);
        }
        for v in 0..20 {
            assert_eq!(b.right_degree(v), 9);
        }
        assert_eq!(b.rank(), 9);
        assert_eq!(b.min_left_degree(), 6);
    }

    #[test]
    fn biregular_infeasible_params() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(random_biregular(3, 7, 2, &mut rng).is_err()); // 6 stubs / 7 right
        assert!(random_biregular(2, 4, 1, &mut rng).is_err()); // 2 stubs / 4 right
        assert!(random_biregular(2, 1, 4, &mut rng).is_err()); // left degree 4 > right side 1
        assert!(random_biregular(5, 5, 0, &mut rng).is_ok()); // empty graph is fine
    }

    #[test]
    fn biregular_square_case() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = random_biregular(16, 16, 5, &mut rng).unwrap();
        for v in 0..16 {
            assert_eq!(b.right_degree(v), 5);
        }
    }

    #[test]
    fn er_bipartite_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi_bipartite(5, 5, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi_bipartite(5, 5, 1.0, &mut rng).edge_count(), 25);
    }

    #[test]
    fn complete_bipartite_counts() {
        let b = complete_bipartite(3, 4);
        assert_eq!(b.edge_count(), 12);
        assert_eq!(b.rank(), 3);
        assert_eq!(b.min_left_degree(), 4);
    }
}
