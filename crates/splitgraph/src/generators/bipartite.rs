//! Generators for bipartite constraint/variable instances.

use crate::bipartite::BipartiteGraph;
use crate::error::GraphError;
use rand::seq::SliceRandom;
use rand::Rng;

/// Random bipartite graph where every **left** (constraint) node has exactly
/// `left_degree` distinct right neighbors chosen uniformly at random.
///
/// Right degrees concentrate around `left_count·left_degree / right_count`;
/// the realized rank is whatever the sample produced — measure it with
/// [`BipartiteGraph::rank`].
///
/// # Errors
///
/// Returns an error if `left_degree > right_count`.
pub fn random_left_regular<R: Rng + ?Sized>(
    left_count: usize,
    right_count: usize,
    left_degree: usize,
    rng: &mut R,
) -> Result<BipartiteGraph, GraphError> {
    if left_degree > right_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("left degree {left_degree} exceeds right side size {right_count}"),
        });
    }
    let mut b = BipartiteGraph::new(left_count, right_count);
    let mut pool: Vec<usize> = (0..right_count).collect();
    for u in 0..left_count {
        // partial Fisher–Yates: draw `left_degree` distinct right nodes
        for i in 0..left_degree {
            let j = rng.random_range(i..right_count);
            pool.swap(i, j);
            b.add_edge(u, pool[i])
                .expect("distinct draws give fresh edges");
        }
    }
    Ok(b)
}

/// Random biregular bipartite graph: every left node has degree
/// `left_degree` and every right node degree `left_count·left_degree /
/// right_count`, via the configuration model with swap repair.
///
/// # Errors
///
/// Returns an error if the degree sums do not match
/// (`left_count·left_degree` must be divisible by `right_count`), if the
/// implied right degree exceeds `left_count`, or if repair fails repeatedly.
pub fn random_biregular<R: Rng + ?Sized>(
    left_count: usize,
    right_count: usize,
    left_degree: usize,
    rng: &mut R,
) -> Result<BipartiteGraph, GraphError> {
    let stubs = left_count * left_degree;
    if right_count == 0 || !stubs.is_multiple_of(right_count) {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("left stubs {stubs} not divisible by right side size {right_count}"),
        });
    }
    let right_degree = stubs / right_count;
    if right_degree > left_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!(
                "implied right degree {right_degree} exceeds left side size {left_count}"
            ),
        });
    }
    if left_degree > right_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("left degree {left_degree} exceeds right side size {right_count}"),
        });
    }
    const ATTEMPTS: usize = 200;
    for _ in 0..ATTEMPTS {
        let left_stubs: Vec<usize> = (0..left_count)
            .flat_map(|u| std::iter::repeat_n(u, left_degree))
            .collect();
        let mut right_stubs: Vec<usize> = (0..right_count)
            .flat_map(|v| std::iter::repeat_n(v, right_degree))
            .collect();
        right_stubs.shuffle(rng);
        let mut pairs: Vec<(usize, usize)> = left_stubs.into_iter().zip(right_stubs).collect();
        if repair_bipartite_pairing(&mut pairs, rng) {
            return BipartiteGraph::from_edges(left_count, right_count, &pairs);
        }
    }
    Err(GraphError::GenerationFailed {
        reason: format!(
            "biregular bipartite graph ({left_count}×{right_count}, left degree {left_degree}): repair attempts exhausted"
        ),
    })
}

fn repair_bipartite_pairing<R: Rng + ?Sized>(pairs: &mut [(usize, usize)], rng: &mut R) -> bool {
    use std::collections::HashSet;
    const PASSES: usize = 500;
    for _ in 0..PASSES {
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut bad: Vec<usize> = Vec::new();
        for (i, &p) in pairs.iter().enumerate() {
            if !seen.insert(p) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            return true;
        }
        for &i in &bad {
            let j = rng.random_range(0..pairs.len());
            let tmp = pairs[i].1;
            pairs[i].1 = pairs[j].1;
            pairs[j].1 = tmp;
        }
    }
    false
}

/// Bipartite Erdős–Rényi graph: each of the `left·right` pairs is an edge
/// independently with probability `p`.
pub fn erdos_renyi_bipartite<R: Rng + ?Sized>(
    left_count: usize,
    right_count: usize,
    p: f64,
    rng: &mut R,
) -> BipartiteGraph {
    let mut b = BipartiteGraph::new(left_count, right_count);
    let p = p.clamp(0.0, 1.0);
    for u in 0..left_count {
        for v in 0..right_count {
            if rng.random_bool(p) {
                b.add_edge(u, v).expect("fresh pair");
            }
        }
    }
    b
}

/// Chung–Lu-style power-law bipartite graph: each left (constraint) node
/// draws its degree from the truncated power law
/// `P(deg = k) ∝ k^{-exponent}` on `min_degree..=max_degree`, then picks
/// that many distinct right neighbors uniformly at random. The heavy tail
/// concentrates edges on a few constraints — the regime where weak
/// splitting's degree thresholds and rank bounds diverge the most across a
/// single instance.
///
/// # Errors
///
/// Returns an error if `max_degree > right_count`, `min_degree == 0`, or
/// `min_degree > max_degree`.
pub fn power_law_bipartite<R: Rng + ?Sized>(
    left_count: usize,
    right_count: usize,
    exponent: f64,
    min_degree: usize,
    max_degree: usize,
    rng: &mut R,
) -> Result<BipartiteGraph, GraphError> {
    if min_degree == 0 || min_degree > max_degree {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("power-law degree range [{min_degree}, {max_degree}] is empty or zero"),
        });
    }
    if max_degree > right_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("max degree {max_degree} exceeds right side size {right_count}"),
        });
    }
    // inverse-CDF table over the truncated support
    let weights: Vec<f64> = (min_degree..=max_degree)
        .map(|k| (k as f64).powf(-exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut b = BipartiteGraph::new(left_count, right_count);
    let mut pool: Vec<usize> = (0..right_count).collect();
    for u in 0..left_count {
        let coin: f64 = rng.random::<f64>() * total;
        let mut acc = 0.0;
        let mut degree = max_degree;
        for (i, w) in weights.iter().enumerate() {
            acc += w;
            if coin < acc {
                degree = min_degree + i;
                break;
            }
        }
        for i in 0..degree {
            let j = rng.random_range(i..right_count);
            pool.swap(i, j);
            b.add_edge(u, pool[i])
                .expect("distinct draws give fresh edges");
        }
    }
    Ok(b)
}

/// Two-tier skewed bipartite graph: `heavy_count` constraints of degree
/// `heavy_degree` plus `light_count` constraints of degree `light_degree`,
/// each picking distinct right neighbors uniformly at random. `δ` comes
/// from one tier and `Δ` from the other, so degree-uniformization and the
/// `δ ≥ 6r` dispatch see maximal spread.
///
/// # Errors
///
/// Returns an error if either tier's degree exceeds `right_count`.
pub fn skewed_bipartite<R: Rng + ?Sized>(
    heavy_count: usize,
    heavy_degree: usize,
    light_count: usize,
    light_degree: usize,
    right_count: usize,
    rng: &mut R,
) -> Result<BipartiteGraph, GraphError> {
    let max_degree = heavy_degree.max(light_degree);
    if max_degree > right_count {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("tier degree {max_degree} exceeds right side size {right_count}"),
        });
    }
    let left_count = heavy_count + light_count;
    let mut b = BipartiteGraph::new(left_count, right_count);
    let mut pool: Vec<usize> = (0..right_count).collect();
    for u in 0..left_count {
        let degree = if u < heavy_count {
            heavy_degree
        } else {
            light_degree
        };
        for i in 0..degree {
            let j = rng.random_range(i..right_count);
            pool.swap(i, j);
            b.add_edge(u, pool[i])
                .expect("distinct draws give fresh edges");
        }
    }
    Ok(b)
}

/// Disjoint union of bipartite instances: part `i`'s left nodes are offset
/// by the preceding parts' left counts, its right nodes by the preceding
/// right counts. `δ`, `Δ`, and the rank of the union are the min/max over
/// the parts — the composition the metamorphic conformance checks exploit
/// (a splitting of the union restricts to one of every part and vice
/// versa).
pub fn bipartite_disjoint_union(parts: &[&BipartiteGraph]) -> BipartiteGraph {
    let left_count: usize = parts.iter().map(|p| p.left_count()).sum();
    let right_count: usize = parts.iter().map(|p| p.right_count()).sum();
    let mut edges = Vec::with_capacity(parts.iter().map(|p| p.edge_count()).sum());
    let (mut left_off, mut right_off) = (0usize, 0usize);
    for p in parts {
        edges.extend(p.edges().map(|(u, v)| (u + left_off, v + right_off)));
        left_off += p.left_count();
        right_off += p.right_count();
    }
    BipartiteGraph::from_edges_bulk(left_count, right_count, &edges)
        .expect("offset parts keep edges disjoint and in range")
}

/// The complete bipartite graph `K_{left,right}`.
pub fn complete_bipartite(left_count: usize, right_count: usize) -> BipartiteGraph {
    let mut b = BipartiteGraph::new(left_count, right_count);
    for u in 0..left_count {
        for v in 0..right_count {
            b.add_edge(u, v).expect("fresh pair");
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn left_regular_exact_left_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = random_left_regular(40, 25, 8, &mut rng).unwrap();
        assert_eq!(b.left_count(), 40);
        assert_eq!(b.right_count(), 25);
        for u in 0..40 {
            assert_eq!(b.left_degree(u), 8);
        }
        assert_eq!(b.edge_count(), 320);
        assert!(b.rank() >= 320 / 25);
    }

    #[test]
    fn left_regular_rejects_excess_degree() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_left_regular(3, 2, 3, &mut rng).is_err());
    }

    #[test]
    fn biregular_exact_both_sides() {
        let mut rng = StdRng::seed_from_u64(5);
        // 30 * 6 = 180 stubs, right side 20 → right degree 9
        let b = random_biregular(30, 20, 6, &mut rng).unwrap();
        for u in 0..30 {
            assert_eq!(b.left_degree(u), 6);
        }
        for v in 0..20 {
            assert_eq!(b.right_degree(v), 9);
        }
        assert_eq!(b.rank(), 9);
        assert_eq!(b.min_left_degree(), 6);
    }

    #[test]
    fn biregular_infeasible_params() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(random_biregular(3, 7, 2, &mut rng).is_err()); // 6 stubs / 7 right
        assert!(random_biregular(2, 4, 1, &mut rng).is_err()); // 2 stubs / 4 right
        assert!(random_biregular(2, 1, 4, &mut rng).is_err()); // left degree 4 > right side 1
        assert!(random_biregular(5, 5, 0, &mut rng).is_ok()); // empty graph is fine
    }

    #[test]
    fn biregular_square_case() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = random_biregular(16, 16, 5, &mut rng).unwrap();
        for v in 0..16 {
            assert_eq!(b.right_degree(v), 5);
        }
    }

    #[test]
    fn er_bipartite_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi_bipartite(5, 5, 0.0, &mut rng).edge_count(), 0);
        let full = erdos_renyi_bipartite(5, 5, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 25);
        assert_eq!(full.rank(), 5);
        assert_eq!(full.min_left_degree(), 5);
        // out-of-range probabilities clamp instead of panicking
        assert_eq!(erdos_renyi_bipartite(4, 4, -0.3, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi_bipartite(4, 4, 2.0, &mut rng).edge_count(), 16);
        // empty sides are fine at both extremes
        for p in [0.0, 1.0] {
            assert_eq!(erdos_renyi_bipartite(0, 5, p, &mut rng).edge_count(), 0);
            assert_eq!(erdos_renyi_bipartite(5, 0, p, &mut rng).edge_count(), 0);
            assert_eq!(erdos_renyi_bipartite(0, 0, p, &mut rng).node_count(), 0);
        }
    }

    #[test]
    fn power_law_degrees_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let b = power_law_bipartite(80, 60, 2.0, 2, 40, &mut rng).unwrap();
        assert_eq!(b.left_count(), 80);
        for u in 0..80 {
            assert!((2..=40).contains(&b.left_degree(u)));
        }
        // the heavy tail should actually produce spread
        assert!(b.max_left_degree() > b.min_left_degree());
        assert!(power_law_bipartite(4, 3, 2.0, 1, 5, &mut rng).is_err());
        assert!(power_law_bipartite(4, 8, 2.0, 0, 5, &mut rng).is_err());
        assert!(power_law_bipartite(4, 8, 2.0, 6, 5, &mut rng).is_err());
    }

    #[test]
    fn power_law_exponent_controls_skew() {
        let mut rng = StdRng::seed_from_u64(17);
        // a steep exponent keeps most constraints near the minimum degree
        let b = power_law_bipartite(200, 100, 3.5, 2, 50, &mut rng).unwrap();
        let low = (0..200).filter(|&u| b.left_degree(u) <= 4).count();
        assert!(low > 150, "steep power law should hug d_min, got {low}");
    }

    #[test]
    fn skewed_two_tier_degrees() {
        let mut rng = StdRng::seed_from_u64(19);
        let b = skewed_bipartite(4, 30, 20, 6, 40, &mut rng).unwrap();
        assert_eq!(b.left_count(), 24);
        for u in 0..4 {
            assert_eq!(b.left_degree(u), 30);
        }
        for u in 4..24 {
            assert_eq!(b.left_degree(u), 6);
        }
        assert_eq!(b.min_left_degree(), 6);
        assert_eq!(b.max_left_degree(), 30);
        assert!(skewed_bipartite(1, 50, 1, 2, 40, &mut rng).is_err());
    }

    #[test]
    fn disjoint_union_offsets_parts() {
        let a = complete_bipartite(2, 3);
        let b = complete_bipartite(1, 4);
        let u = bipartite_disjoint_union(&[&a, &b]);
        assert_eq!(u.left_count(), 3);
        assert_eq!(u.right_count(), 7);
        assert_eq!(u.edge_count(), 10);
        // part boundaries: no edge crosses the offset
        for v in 0..3 {
            assert!(u.contains_edge(0, v) && u.contains_edge(1, v));
            assert!(!u.contains_edge(2, v));
        }
        for v in 3..7 {
            assert!(u.contains_edge(2, v));
            assert!(!u.contains_edge(0, v));
        }
        // parameters are min/max over parts
        assert_eq!(u.min_left_degree(), 3);
        assert_eq!(u.rank(), 2);
        // empty union is the empty graph
        let e = bipartite_disjoint_union(&[]);
        assert_eq!(e.left_count(), 0);
        assert_eq!(e.edge_count(), 0);
    }

    #[test]
    fn complete_bipartite_counts() {
        let b = complete_bipartite(3, 4);
        assert_eq!(b.edge_count(), 12);
        assert_eq!(b.rank(), 3);
        assert_eq!(b.min_left_degree(), 4);
    }
}
