//! Graph powers.
//!
//! The SLOCAL→LOCAL compilation used throughout the paper schedules nodes by
//! color classes of a power graph: Lemma 2.1 colors `B²`, Theorem 5.2 colors
//! `B⁴`, and Theorem 3.2 uses a coloring of `B'²` restricted to the variable
//! side. These helpers materialize such powers.
//!
//! All three are bulk builders: per-node BFS frontiers are collected into
//! reused scratch buffers and the output rows are appended directly to one
//! flat CSR buffer pair ([`crate::Graph`] flat form), instead of paying an
//! `O(log Δ)` sorted insert per discovered pair. This is the hottest path of
//! every SLOCAL compilation (`thm52`, `lem21`, `thm32`).

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;

/// The `k`-th power of `g`: nodes at distance `1..=k` become adjacent.
///
/// Even exponents are computed by repeated squaring (`G^{2j} = (G²)^j`),
/// odd ones by a depth-`k` BFS per node; either way the ball of `v` minus
/// `v` itself *is* row `v` of the power graph, so the output is assembled
/// row by row into flat CSR form with no per-edge insertion.
///
/// # Examples
///
/// ```
/// use splitgraph::{Graph, power_graph};
///
/// let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let p2 = power_graph(&path, 2);
/// assert!(p2.contains_edge(0, 2));
/// assert!(!p2.contains_edge(0, 3));
/// ```
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    match k {
        0 => Graph::new(g.node_count()),
        1 => g.clone(),
        2 => square(g),
        // dist_g(u, v) ≤ 2j  ⟺  dist_{g²}(u, v) ≤ j: halve even exponents
        // on the (much denser but flat) square instead of deepening the BFS
        k if k % 2 == 0 => power_graph(&square(g), k / 2),
        k => direct_power(g, k),
    }
}

/// Two-hop power: row `v` is the union of the closed neighborhoods of
/// `N(v)`, minus `v` itself.
///
/// Each row is assembled by bulk-copying the (contiguous, sorted) CSR rows
/// of all neighbors into one scratch buffer, then `sort + dedup` — pure
/// memcpy streams plus one small sort, with no per-entry membership tests.
/// The output buffer is reserved up-front from the exact pre-dedup bound
/// `Σ_v Σ_{u ∈ N(v)} (1 + deg(u))`, so it never reallocates mid-build.
fn square(g: &Graph) -> Graph {
    let n = g.node_count();
    let mut bound = 0usize;
    for v in 0..n {
        for &u in g.neighbors(v) {
            bound = bound.saturating_add(1 + g.degree(u));
        }
    }
    let cap = bound.min(n.saturating_mul(n.saturating_sub(1)));
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut targets: Vec<usize> = Vec::with_capacity(cap);
    let mut buf: Vec<usize> = Vec::new();
    for v in 0..n {
        buf.clear();
        for &u in g.neighbors(v) {
            buf.push(u);
            buf.extend_from_slice(g.neighbors(u));
        }
        buf.sort_unstable();
        buf.dedup();
        // v itself is in every closed neighborhood; splice it out
        match buf.binary_search(&v) {
            Ok(i) => {
                targets.extend_from_slice(&buf[..i]);
                targets.extend_from_slice(&buf[i + 1..]);
            }
            Err(_) => targets.extend_from_slice(&buf),
        }
        offsets.push(targets.len());
    }
    Graph::from_csr_parts_unchecked(offsets, targets)
}

/// Depth-`k` BFS per node (odd `k ≥ 3`), with all scratch buffers reused.
fn direct_power(g: &Graph, k: usize) -> Graph {
    let n = g.node_count();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut targets: Vec<usize> = Vec::with_capacity(2 * g.edge_count());
    // scratch buffers reused across all n BFS runs
    let mut seen = vec![false; n];
    let mut reached: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();
    let mut next: Vec<usize> = Vec::new();
    for v in 0..n {
        seen[v] = true;
        frontier.push(v);
        for _ in 0..k {
            for &x in &frontier {
                for &y in g.neighbors(x) {
                    if !seen[y] {
                        seen[y] = true;
                        reached.push(y);
                        next.push(y);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            if frontier.is_empty() {
                break;
            }
        }
        frontier.clear();
        reached.sort_unstable();
        targets.extend_from_slice(&reached);
        offsets.push(targets.len());
        seen[v] = false;
        for &w in &reached {
            seen[w] = false;
        }
        reached.clear();
    }
    Graph::from_csr_parts_unchecked(offsets, targets)
}

/// Adjacency among the **variable side** of `b` at distance exactly 2, i.e.,
/// two right nodes are adjacent iff they share a constraint neighbor.
///
/// This is the graph on which derandomized variable choices must be
/// sequentialized: variables sharing a constraint may not decide
/// simultaneously (see Lemma 2.1 and Theorem 3.2 of the paper). Row `v` is
/// the union of the variable lists of `v`'s constraints, assembled by bulk
/// row copies plus one sort/dedup per row (same shape as the two-hop power
/// kernel), so the intermediate never exceeds one row's pre-dedup size.
pub fn right_square(b: &BipartiteGraph) -> Graph {
    let nv = b.right_count();
    let mut bound = 0usize;
    for v in 0..nv {
        for &u in b.right_neighbors(v) {
            bound = bound.saturating_add(b.left_degree(u));
        }
    }
    let cap = bound.min(nv.saturating_mul(nv.saturating_sub(1)));
    let mut offsets = Vec::with_capacity(nv + 1);
    offsets.push(0usize);
    let mut targets: Vec<usize> = Vec::with_capacity(cap);
    let mut buf: Vec<usize> = Vec::new();
    for v in 0..nv {
        buf.clear();
        for &u in b.right_neighbors(v) {
            buf.extend_from_slice(b.left_neighbors(u));
        }
        buf.sort_unstable();
        buf.dedup();
        // v itself appears in every constraint's variable list; splice it out
        match buf.binary_search(&v) {
            Ok(i) => {
                targets.extend_from_slice(&buf[..i]);
                targets.extend_from_slice(&buf[i + 1..]);
            }
            Err(_) => targets.extend_from_slice(&buf),
        }
        offsets.push(targets.len());
    }
    Graph::from_csr_parts_unchecked(offsets, targets)
}

/// The `k`-th power of the flattened bipartite graph `B` (both sides),
/// with left node `u` at index `u` and right node `v` at `left_count + v`.
pub fn bipartite_power(b: &BipartiteGraph, k: usize) -> Graph {
    power_graph(&b.to_graph(), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_zero_is_empty() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(power_graph(&g, 0).edge_count(), 0);
    }

    #[test]
    fn power_one_is_identity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(power_graph(&g, 1), g);
    }

    #[test]
    fn power_two_of_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let p = power_graph(&g, 2);
        assert!(p.contains_edge(0, 2));
        assert!(p.contains_edge(1, 3));
        assert!(!p.contains_edge(0, 3));
        assert_eq!(p.edge_count(), 4 + 3);
    }

    #[test]
    fn power_saturates_to_component_clique() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = power_graph(&g, 10);
        assert_eq!(p.edge_count(), 6); // K4
    }

    #[test]
    fn power_respects_components() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = power_graph(&g, 5);
        assert!(!p.contains_edge(1, 2));
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn power_output_is_flat() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(power_graph(&g, 2).is_flat());
        assert!(right_square(&BipartiteGraph::new(2, 3)).is_flat());
    }

    #[test]
    fn right_square_links_covariables() {
        // u0 ~ {v0, v1}, u1 ~ {v1, v2}: v0-v1 and v1-v2 but not v0-v2
        let b = BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap();
        let sq = right_square(&b);
        assert!(sq.contains_edge(0, 1));
        assert!(sq.contains_edge(1, 2));
        assert!(!sq.contains_edge(0, 2));
    }

    #[test]
    fn right_square_handles_shared_pairs_once() {
        // v0 and v1 share two constraints; edge must appear once
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let sq = right_square(&b);
        assert_eq!(sq.edge_count(), 1);
    }

    #[test]
    fn bipartite_power_two_contains_same_side_links() {
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let p = bipartite_power(&b, 2);
        // u0 and u1 share v0, so they are adjacent in B²
        assert!(p.contains_edge(0, 1));
    }
}
