//! Graph powers.
//!
//! The SLOCAL→LOCAL compilation used throughout the paper schedules nodes by
//! color classes of a power graph: Lemma 2.1 colors `B²`, Theorem 5.2 colors
//! `B⁴`, and Theorem 3.2 uses a coloring of `B'²` restricted to the variable
//! side. These helpers materialize such powers.

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;
use std::collections::VecDeque;

/// The `k`-th power of `g`: nodes at distance `1..=k` become adjacent.
///
/// Computed by a depth-bounded BFS per node (`O(n · Δ^k)` work, fine for the
/// polylogarithmic powers used here).
///
/// # Examples
///
/// ```
/// use splitgraph::{Graph, power_graph};
///
/// let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let p2 = power_graph(&path, 2);
/// assert!(p2.contains_edge(0, 2));
/// assert!(!p2.contains_edge(0, 3));
/// ```
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    let n = g.node_count();
    let mut out = Graph::new(n);
    if k == 0 {
        return out;
    }
    let mut dist = vec![usize::MAX; n];
    let mut touched = Vec::new();
    for v in 0..n {
        // BFS up to depth k
        dist[v] = 0;
        touched.push(v);
        let mut queue = VecDeque::new();
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            if dist[x] == k {
                continue;
            }
            for &y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = dist[x] + 1;
                    touched.push(y);
                    queue.push_back(y);
                }
            }
        }
        for &w in &touched {
            if w > v {
                out.add_edge(v, w).expect("power graph edges are simple");
            }
        }
        for &w in &touched {
            dist[w] = usize::MAX;
        }
        touched.clear();
    }
    out
}

/// Adjacency among the **variable side** of `b` at distance exactly 2, i.e.,
/// two right nodes are adjacent iff they share a constraint neighbor.
///
/// This is the graph on which derandomized variable choices must be
/// sequentialized: variables sharing a constraint may not decide
/// simultaneously (see Lemma 2.1 and Theorem 3.2 of the paper).
pub fn right_square(b: &BipartiteGraph) -> Graph {
    let mut g = Graph::new(b.right_count());
    for u in 0..b.left_count() {
        let nbrs = b.left_neighbors(u);
        for (i, &v) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                if !g.contains_edge(v, w) {
                    g.add_edge(v, w).expect("square edges are simple");
                }
            }
        }
    }
    g
}

/// The `k`-th power of the flattened bipartite graph `B` (both sides),
/// with left node `u` at index `u` and right node `v` at `left_count + v`.
pub fn bipartite_power(b: &BipartiteGraph, k: usize) -> Graph {
    power_graph(&b.to_graph(), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_zero_is_empty() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(power_graph(&g, 0).edge_count(), 0);
    }

    #[test]
    fn power_one_is_identity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(power_graph(&g, 1), g);
    }

    #[test]
    fn power_two_of_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let p = power_graph(&g, 2);
        assert!(p.contains_edge(0, 2));
        assert!(p.contains_edge(1, 3));
        assert!(!p.contains_edge(0, 3));
        assert_eq!(p.edge_count(), 4 + 3);
    }

    #[test]
    fn power_saturates_to_component_clique() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = power_graph(&g, 10);
        assert_eq!(p.edge_count(), 6); // K4
    }

    #[test]
    fn power_respects_components() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = power_graph(&g, 5);
        assert!(!p.contains_edge(1, 2));
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn right_square_links_covariables() {
        // u0 ~ {v0, v1}, u1 ~ {v1, v2}: v0-v1 and v1-v2 but not v0-v2
        let b = BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap();
        let sq = right_square(&b);
        assert!(sq.contains_edge(0, 1));
        assert!(sq.contains_edge(1, 2));
        assert!(!sq.contains_edge(0, 2));
    }

    #[test]
    fn right_square_handles_shared_pairs_once() {
        // v0 and v1 share two constraints; edge must appear once
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let sq = right_square(&b);
        assert_eq!(sq.edge_count(), 1);
    }

    #[test]
    fn bipartite_power_two_contains_same_side_links() {
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let p = bipartite_power(&b, 2);
        // u0 and u1 share v0, so they are adjacent in B²
        assert!(p.contains_edge(0, 1));
    }
}
