//! # splitgraph — graph substrate for the distributed-splitting reproduction
//!
//! This crate provides the graph machinery underneath the reproduction of
//! *"On the Complexity of Distributed Splitting Problems"* (Bamberger,
//! Ghaffari, Kuhn, Maus, Uitto; PODC 2019):
//!
//! * [`Graph`] — simple undirected graphs (host networks);
//! * [`BipartiteGraph`] — the constraint/variable bipartite instances
//!   `B = (U ∪ V, E)` on which all splitting problems are defined, with the
//!   paper's parameters `δ`, `Δ` (left degrees) and rank `r` (right degree);
//! * [`MultiGraph`] and [`Orientation`] — the multigraphs built by
//!   Degree–Rank Reduction II and directed degree splittings
//!   (Definition 2.1);
//! * [`checks`] — ground-truth validity checkers for every output object
//!   (weak splittings, multicolor splittings, colorings, MIS, sinkless
//!   orientations, uniform splittings);
//! * [`generators`] — random and deterministic instance families, including
//!   the doubling construction of Section 1.2, the sinkless-orientation
//!   reduction instances of Section 2.5 / Figure 1, and girth-10 bipartite
//!   graphs for Section 5;
//! * [`csr`] — the flat compressed-sparse-row storage underneath the graph
//!   types: bulk counting-sort construction with no per-edge shifting;
//! * [`delta`] — typed edge-mutation batches ([`EdgeDelta`]) with in-place
//!   patching, dirty-region tracking, and exact inverses for the churn
//!   subsystem;
//! * girth, connected components, and power-graph utilities.
//!
//! # Examples
//!
//! Build a weak-splitting instance from a graph and check a coloring:
//!
//! ```
//! use splitgraph::{checks, generators, Color, Graph};
//!
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
//! let b = generators::doubling_instance(&g);
//! // color the variable side alternately: every constraint sees both colors
//! let colors = vec![Color::Red, Color::Blue, Color::Red];
//! assert!(checks::weak_splitting_violations(&b, &colors, 0).len() <= 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bipartite;
pub mod checks;
mod color;
mod components;
pub mod csr;
pub mod delta;
mod error;
pub mod generators;
mod girth;
mod graph;
pub mod math;
mod multigraph;
mod power;

pub use bipartite::BipartiteGraph;
pub use color::{Color, MultiColor};
pub use components::{
    bipartite_components, connected_components, BipartiteComponent, Components, GroupedMembers,
};
pub use delta::{DeltaError, DirtyRegion, EdgeDelta};
pub use error::GraphError;
pub use girth::{bipartite_girth, girth};
pub use graph::Graph;
pub use multigraph::{EdgeId, MultiGraph, Orientation};
pub use power::{bipartite_power, power_graph, right_square};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Graph>();
        assert_send_sync::<super::BipartiteGraph>();
        assert_send_sync::<super::MultiGraph>();
        assert_send_sync::<super::Orientation>();
        assert_send_sync::<super::Color>();
        assert_send_sync::<super::GraphError>();
    }
}
