//! Flat compressed-sparse-row (CSR) storage.
//!
//! A [`Csr`] packs all adjacency rows of a graph into two flat buffers: a
//! prefix-sum `offsets` array of length `n + 1` and a `targets` array holding
//! the concatenated rows, so row `v` is the contiguous slice
//! `targets[offsets[v]..offsets[v + 1]]`. Construction is a stable two-pass
//! counting sort over the input pairs — `O(n + m)` with no per-entry
//! shifting — which is what makes the bulk graph builders
//! ([`crate::Graph::from_edges_bulk`], [`crate::Graph::from_adjacency`]) and
//! the power-graph kernels fast. The same layout doubles as a flat
//! *incidence* structure for multigraphs ([`Csr::from_incidence`]), where row
//! entries are edge ids instead of neighbor ids.

/// Flat CSR rows: `offsets` (length `n + 1`) into a concatenated `targets`
/// buffer. Rows preserve the insertion order of the building pass until
/// [`Csr::sort_rows`] is called.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl Csr {
    /// Shared two-pass counting-sort core: `emit` maps the `e`-th pair to
    /// one or two `(row, value)` slots; the first pass counts rows, the
    /// second places values, preserving input order within each row.
    fn from_slots(
        n: usize,
        pairs: &[(usize, usize)],
        emit: impl Fn(usize, (usize, usize)) -> ((usize, usize), Option<(usize, usize)>),
    ) -> Csr {
        let mut counts = vec![0usize; n + 1];
        let mut total = 0usize;
        for (e, &p) in pairs.iter().enumerate() {
            let ((r0, _), snd) = emit(e, p);
            debug_assert!(r0 < n, "row {r0} out of range {n}");
            counts[r0 + 1] += 1;
            total += 1;
            if let Some((r1, _)) = snd {
                debug_assert!(r1 < n, "row {r1} out of range {n}");
                counts[r1 + 1] += 1;
                total += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0usize; total];
        for (e, &p) in pairs.iter().enumerate() {
            let ((r0, v0), snd) = emit(e, p);
            targets[cursor[r0]] = v0;
            cursor[r0] += 1;
            if let Some((r1, v1)) = snd {
                targets[cursor[r1]] = v1;
                cursor[r1] += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Builds rows from directed pairs: each `(src, dst)` appends `dst` to
    /// row `src`, preserving input order within a row (stable counting sort).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a source index is out of range; callers
    /// validate ranges before building.
    pub fn from_directed_pairs(n: usize, pairs: &[(usize, usize)]) -> Csr {
        Csr::from_slots(n, pairs, |_, (s, t)| ((s, t), None))
    }

    /// Builds rows from undirected pairs: each `{u, v}` appends `v` to row
    /// `u` and `u` to row `v` (a self-pair appends twice to the same row).
    pub fn from_undirected_pairs(n: usize, pairs: &[(usize, usize)]) -> Csr {
        Csr::from_slots(n, pairs, |_, (u, v)| ((u, v), Some((v, u))))
    }

    /// Builds a flat *incidence* structure from edge endpoints: row `v`
    /// lists the indices of the pairs incident to `v`, in input order; a
    /// self-loop `(v, v)` appears twice in row `v` (it contributes 2 to the
    /// degree), matching [`crate::MultiGraph`] semantics.
    pub fn from_incidence(n: usize, endpoints: &[(usize, usize)]) -> Csr {
        Csr::from_slots(n, endpoints, |e, (a, b)| ((a, e), Some((b, e))))
    }

    /// Assembles a CSR from already-built parts.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not a monotone prefix-sum array ending at
    /// `targets.len()`.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<usize>) -> Csr {
        assert!(!offsets.is_empty(), "offsets must have length n + 1");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "offsets must end at targets.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        Csr { offsets, targets }
    }

    /// Number of rows `n`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of entries across all rows.
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }

    /// The contiguous row of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn row(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Length of row `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn row_len(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorts every row ascending (`O(m log Δ)` total).
    pub fn sort_rows(&mut self) {
        for v in 0..self.node_count() {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            self.targets[lo..hi].sort_unstable();
        }
    }

    /// Removes duplicate entries inside each (sorted) row, compacting the
    /// buffers in place. Rows must be sorted first.
    pub fn dedup_rows(&mut self) {
        let n = self.node_count();
        let mut write = 0usize;
        let mut row_start = self.offsets[0];
        for v in 0..n {
            let row_end = self.offsets[v + 1];
            self.offsets[v] = write;
            let mut prev: Option<usize> = None;
            for i in row_start..row_end {
                let t = self.targets[i];
                if prev != Some(t) {
                    self.targets[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            row_start = row_end;
        }
        self.offsets[n] = write;
        self.targets.truncate(write);
    }

    /// Unpacks into one owned `Vec` per row (the pointer-chasing builder
    /// representation, used when a flat graph needs incremental mutation).
    pub fn into_rows(self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut rows = Vec::with_capacity(n);
        for v in 0..n {
            rows.push(self.row(v).to_vec());
        }
        rows
    }

    /// Consumes the CSR and returns `(offsets, targets)`.
    pub fn into_parts(self) -> (Vec<usize>, Vec<usize>) {
        (self.offsets, self.targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_pairs_preserve_order() {
        let c = Csr::from_directed_pairs(3, &[(1, 2), (0, 1), (1, 0), (2, 2)]);
        assert_eq!(c.row(0), &[1]);
        assert_eq!(c.row(1), &[2, 0]);
        assert_eq!(c.row(2), &[2]);
        assert_eq!(c.entry_count(), 4);
    }

    #[test]
    fn undirected_pairs_fill_both_rows() {
        let c = Csr::from_undirected_pairs(3, &[(0, 1), (1, 2)]);
        assert_eq!(c.row(0), &[1]);
        assert_eq!(c.row(1), &[0, 2]);
        assert_eq!(c.row(2), &[1]);
    }

    #[test]
    fn incidence_lists_edge_ids_with_double_self_loop() {
        let c = Csr::from_incidence(3, &[(0, 1), (1, 1), (2, 0)]);
        assert_eq!(c.row(0), &[0, 2]);
        assert_eq!(c.row(1), &[0, 1, 1]);
        assert_eq!(c.row(2), &[2]);
    }

    #[test]
    fn sort_and_dedup_rows() {
        let mut c = Csr::from_directed_pairs(2, &[(0, 3), (0, 1), (0, 3), (1, 2), (1, 2)]);
        c.sort_rows();
        assert_eq!(c.row(0), &[1, 3, 3]);
        c.dedup_rows();
        assert_eq!(c.row(0), &[1, 3]);
        assert_eq!(c.row(1), &[2]);
        assert_eq!(c.entry_count(), 3);
    }

    #[test]
    fn empty_rows_and_round_trip() {
        let c = Csr::from_directed_pairs(4, &[(2, 0)]);
        assert_eq!(c.row(0), &[] as &[usize]);
        assert_eq!(c.row_len(3), 0);
        assert_eq!(c.into_rows(), vec![vec![], vec![], vec![0], vec![]]);
    }
}
