//! Girth computation.
//!
//! Section 5 of the paper proves stronger splitting results for bipartite
//! graphs of girth at least 10; the generators in this crate certify their
//! output with this exact computation.

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;
use std::collections::VecDeque;

/// Length of a shortest cycle of `g`, or `None` if `g` is acyclic.
///
/// Runs a BFS from every node (`O(n·m)`), the textbook exact algorithm:
/// a cycle through the BFS root is detected when an edge closes between two
/// visited nodes; the shortest such closure over all roots is the girth.
///
/// # Examples
///
/// ```
/// use splitgraph::{Graph, girth};
///
/// let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
/// assert_eq!(girth(&c5), Some(5));
/// let tree = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(girth(&tree), None);
/// ```
pub fn girth(g: &Graph) -> Option<usize> {
    let n = g.node_count();
    let mut best: Option<usize> = None;
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        for d in dist.iter_mut() {
            *d = usize::MAX;
        }
        for p in parent.iter_mut() {
            *p = usize::MAX;
        }
        dist[root] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            // cycles through `root` longer than the current best cannot improve
            if let Some(b) = best {
                if 2 * dist[v] + 1 >= b {
                    break;
                }
            }
            for &w in g.neighbors(v) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    parent[w] = v;
                    queue.push_back(w);
                } else if parent[v] != w && parent[w] != v {
                    // non-tree edge closing a cycle through levels of the BFS;
                    // cycle length is at least dist[v] + dist[w] + 1 and for
                    // the minimizing root this is exact
                    let len = dist[v] + dist[w] + 1;
                    if best.is_none_or(|b| len < b) {
                        best = Some(len);
                    }
                }
            }
        }
    }
    best
}

/// Girth of a bipartite graph (always even or `None`).
pub fn bipartite_girth(b: &BipartiteGraph) -> Option<usize> {
    girth(&b.to_graph())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_girth_3() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn square_has_girth_4() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(girth(&g), Some(4));
    }

    #[test]
    fn square_with_chord_has_girth_3() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn forest_has_no_girth() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(girth(&g), None);
    }

    #[test]
    fn petersen_graph_has_girth_5() {
        // outer 5-cycle 0..4, inner 5-star 5..9, spokes i -- i+5
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((i, (i + 1) % 5));
            edges.push((i, i + 5));
            edges.push((i + 5, 5 + (i + 2) % 5));
        }
        let g = Graph::from_edges(10, &edges).unwrap();
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn long_even_cycle() {
        let n = 12;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        assert_eq!(girth(&g), Some(n));
    }

    #[test]
    fn bipartite_girth_of_complete_bipartite() {
        // K_{2,2} is a 4-cycle
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        assert_eq!(bipartite_girth(&b), Some(4));
    }

    #[test]
    fn bipartite_tree_has_no_girth() {
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        assert_eq!(bipartite_girth(&b), None);
    }
}
