//! Typed edge-mutation batches on bipartite instances.
//!
//! The churn subsystem (ROADMAP item 4) treats a held instance as a
//! long-lived object under edge churn: an [`EdgeDelta`] is a validated,
//! canonicalized batch of inserts and deletes that patches the adjacency
//! **in place** and reports the [`DirtyRegion`] — the touched nodes plus
//! their radius-1 halo — so an incremental solver can re-fix only the
//! constraints the mutation can possibly have invalidated. Every delta has
//! an exact [`inverse`](EdgeDelta::inverse), which is what makes the
//! round-trip proptests (apply → inverse-apply is bit-identical) possible.
//!
//! Validation is strict and fully typed ([`DeltaError`]): out-of-range
//! endpoints, edits listed twice, an edit appearing as both insert and
//! delete, inserting a present edge, and deleting an absent edge are all
//! rejected *before* anything is patched, so a failed construction never
//! leaves a half-applied batch. (Self-loops are unrepresentable here by
//! construction: the two endpoints of a bipartite edge live in disjoint
//! index spaces.)

use crate::bipartite::BipartiteGraph;
use std::fmt;

/// A rejected edit in an [`EdgeDelta`] batch. Construction is
/// all-or-nothing: the first offending edit is reported and the graph is
/// untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An endpoint lies outside the instance's index spaces.
    NodeOutOfRange {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The offending index.
        index: usize,
        /// The size of that side.
        count: usize,
    },
    /// The same `(left, right)` edit appears twice in one list.
    DuplicateEdit {
        /// Left endpoint.
        left: usize,
        /// Right endpoint.
        right: usize,
    },
    /// The same `(left, right)` pair appears as both an insert and a
    /// delete — the batch is ambiguous.
    ContradictoryEdit {
        /// Left endpoint.
        left: usize,
        /// Right endpoint.
        right: usize,
    },
    /// An insert targets an edge the instance already has.
    InsertExisting {
        /// Left endpoint.
        left: usize,
        /// Right endpoint.
        right: usize,
    },
    /// A delete targets an edge the instance does not have.
    DeleteMissing {
        /// Left endpoint.
        left: usize,
        /// Right endpoint.
        right: usize,
    },
    /// The delta was validated against a differently-shaped instance.
    ShapeMismatch {
        /// Left/right counts the delta was validated against.
        expected: (usize, usize),
        /// Left/right counts of the instance it was applied to.
        actual: (usize, usize),
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NodeOutOfRange { side, index, count } => {
                write!(f, "{side} index {index} out of range (count {count})")
            }
            DeltaError::DuplicateEdit { left, right } => {
                write!(f, "edit ({left}, {right}) listed twice")
            }
            DeltaError::ContradictoryEdit { left, right } => {
                write!(f, "edit ({left}, {right}) is both an insert and a delete")
            }
            DeltaError::InsertExisting { left, right } => {
                write!(f, "insert ({left}, {right}) targets an existing edge")
            }
            DeltaError::DeleteMissing { left, right } => {
                write!(f, "delete ({left}, {right}) targets a missing edge")
            }
            DeltaError::ShapeMismatch { expected, actual } => write!(
                f,
                "delta validated for {}x{} applied to {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A validated, canonicalized batch of edge inserts and deletes against one
/// bipartite instance.
///
/// Canonical form: both lists sorted lexicographically and duplicate-free,
/// so two deltas describing the same edit set compare equal and render
/// identically on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeDelta {
    left_count: usize,
    right_count: usize,
    inserts: Vec<(usize, usize)>,
    deletes: Vec<(usize, usize)>,
}

impl EdgeDelta {
    /// Validates `inserts`/`deletes` against `b` and builds the canonical
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns the first [`DeltaError`] encountered; `b` is never touched.
    pub fn new(
        b: &BipartiteGraph,
        inserts: &[(usize, usize)],
        deletes: &[(usize, usize)],
    ) -> Result<EdgeDelta, DeltaError> {
        let (lc, rc) = (b.left_count(), b.right_count());
        let mut ins = inserts.to_vec();
        let mut del = deletes.to_vec();
        for list in [&mut ins, &mut del] {
            for &(u, v) in list.iter() {
                if u >= lc {
                    return Err(DeltaError::NodeOutOfRange {
                        side: "left",
                        index: u,
                        count: lc,
                    });
                }
                if v >= rc {
                    return Err(DeltaError::NodeOutOfRange {
                        side: "right",
                        index: v,
                        count: rc,
                    });
                }
            }
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                return Err(DeltaError::DuplicateEdit {
                    left: w[0].0,
                    right: w[0].1,
                });
            }
        }
        // both lists are sorted: a linear merge finds any shared pair
        let (mut i, mut j) = (0, 0);
        while i < ins.len() && j < del.len() {
            match ins[i].cmp(&del[j]) {
                std::cmp::Ordering::Equal => {
                    return Err(DeltaError::ContradictoryEdit {
                        left: ins[i].0,
                        right: ins[i].1,
                    })
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        for &(u, v) in &ins {
            if b.contains_edge(u, v) {
                return Err(DeltaError::InsertExisting { left: u, right: v });
            }
        }
        for &(u, v) in &del {
            if !b.contains_edge(u, v) {
                return Err(DeltaError::DeleteMissing { left: u, right: v });
            }
        }
        Ok(EdgeDelta {
            left_count: lc,
            right_count: rc,
            inserts: ins,
            deletes: del,
        })
    }

    /// The canonical insert list (sorted, duplicate-free).
    pub fn inserts(&self) -> &[(usize, usize)] {
        &self.inserts
    }

    /// The canonical delete list (sorted, duplicate-free).
    pub fn deletes(&self) -> &[(usize, usize)] {
        &self.deletes
    }

    /// Number of edits in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch contains no edits.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// The `(left, right)` shape the delta was validated against.
    pub fn shape(&self) -> (usize, usize) {
        (self.left_count, self.right_count)
    }

    /// The exact inverse batch: applying `self` then `self.inverse()`
    /// restores the original instance bit-identically.
    pub fn inverse(&self) -> EdgeDelta {
        EdgeDelta {
            left_count: self.left_count,
            right_count: self.right_count,
            inserts: self.deletes.clone(),
            deletes: self.inserts.clone(),
        }
    }

    /// Patches `b` in place and reports the dirty region.
    ///
    /// The patch edits the sorted adjacency rows directly (binary-search
    /// insertion/removal per row); no row is rebuilt and untouched rows are
    /// never visited, so the cost is proportional to the touched rows, not
    /// the instance.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError::ShapeMismatch`] if `b` is not the shape the
    /// delta was validated against, or the first stale edit
    /// ([`DeltaError::InsertExisting`] / [`DeltaError::DeleteMissing`]) if
    /// `b` has drifted since validation. On error `b` is left exactly as it
    /// was: preconditions are re-checked before the first edit lands.
    pub fn apply(&self, b: &mut BipartiteGraph) -> Result<DirtyRegion, DeltaError> {
        if (b.left_count(), b.right_count()) != (self.left_count, self.right_count) {
            return Err(DeltaError::ShapeMismatch {
                expected: (self.left_count, self.right_count),
                actual: (b.left_count(), b.right_count()),
            });
        }
        for &(u, v) in &self.inserts {
            if b.contains_edge(u, v) {
                return Err(DeltaError::InsertExisting { left: u, right: v });
            }
        }
        for &(u, v) in &self.deletes {
            if !b.contains_edge(u, v) {
                return Err(DeltaError::DeleteMissing { left: u, right: v });
            }
        }
        for &(u, v) in &self.deletes {
            let removed = b.remove_edge(u, v);
            debug_assert!(removed, "validated delete must hit an edge");
        }
        for &(u, v) in &self.inserts {
            b.add_edge(u, v).expect("validated insert must be fresh");
        }
        Ok(DirtyRegion::of(b, &self.inserts, &self.deletes))
    }
}

/// The part of an instance an applied [`EdgeDelta`] can have invalidated:
/// the directly touched endpoints plus the radius-1 halo of constraints
/// around every touched variable. An incremental solver that recolors only
/// the touched variables needs to re-check exactly the halo — no constraint
/// outside it gained, lost, or saw a recolored neighbor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyRegion {
    /// Constraints (left nodes) whose adjacency changed, sorted.
    pub left: Vec<usize>,
    /// Variables (right nodes) whose adjacency changed, sorted.
    pub right: Vec<usize>,
    /// Constraints to re-verify: `left` plus every post-patch left
    /// neighbor of a node in `right`, sorted.
    pub halo: Vec<usize>,
}

impl DirtyRegion {
    fn of(b: &BipartiteGraph, inserts: &[(usize, usize)], deletes: &[(usize, usize)]) -> Self {
        let mut left: Vec<usize> = inserts.iter().chain(deletes).map(|&(u, _)| u).collect();
        let mut right: Vec<usize> = inserts.iter().chain(deletes).map(|&(_, v)| v).collect();
        left.sort_unstable();
        left.dedup();
        right.sort_unstable();
        right.dedup();
        let mut halo = left.clone();
        for &v in &right {
            halo.extend_from_slice(b.right_neighbors(v));
        }
        halo.sort_unstable();
        halo.dedup();
        DirtyRegion { left, right, halo }
    }

    /// Whether the region is empty (the delta was a no-op).
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// Fraction of constraints a repair must re-verify: `|halo| / |U|`
    /// (0 for an empty instance). This is the quantity repair thresholds
    /// compare against.
    pub fn refix_fraction(&self, b: &BipartiteGraph) -> f64 {
        if b.left_count() == 0 {
            return 0.0;
        }
        self.halo.len() as f64 / b.left_count() as f64
    }

    /// All nodes (flattened index space: left `0..|U|`, right shifted by
    /// `|U|`) in connected components touched by the region — the maximal
    /// blast radius of any repair cascade. Walks component membership via
    /// [`crate::Components::members_grouped`], so the closure costs two
    /// allocations regardless of component count.
    pub fn component_closure(&self, b: &BipartiteGraph, cc: &crate::Components) -> Vec<usize> {
        let shift = b.left_count();
        let grouped = cc.members_grouped();
        let mut touched = vec![false; cc.count()];
        for &u in &self.left {
            touched[cc.label(u)] = true;
        }
        for &v in &self.right {
            touched[cc.label(shift + v)] = true;
        }
        let total: usize = (0..cc.count())
            .filter(|&c| touched[c])
            .map(|c| grouped.group(c).len())
            .sum();
        let mut closure = Vec::with_capacity(total);
        for (c, hit) in touched.iter().enumerate() {
            if *hit {
                closure.extend_from_slice(grouped.group(c));
            }
        }
        closure.sort_unstable();
        closure
    }
}

/// Churn-stream styles for [`random_delta`]: what mix of inserts and
/// deletes a seeded stream step draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnStyle {
    /// Insert-only steps: the instance densifies.
    Grow,
    /// Delete-only steps: the instance sparsifies.
    Shrink,
    /// Paired delete+insert steps: edge count is preserved, endpoints move.
    Rewire,
}

impl ChurnStyle {
    /// All styles, in display order.
    pub const ALL: [ChurnStyle; 3] = [ChurnStyle::Grow, ChurnStyle::Shrink, ChurnStyle::Rewire];

    /// Stable display name (used in conformance scenario streams and bench
    /// rows).
    pub fn name(self) -> &'static str {
        match self {
            ChurnStyle::Grow => "grow",
            ChurnStyle::Shrink => "shrink",
            ChurnStyle::Rewire => "rewire",
        }
    }
}

/// Draws a seeded random [`EdgeDelta`] of about `edits` edits against `b`
/// in the given style. Deterministic in the RNG state; used by the churn
/// conformance streams, the bench, and the delta proptests so they all
/// mutate instances the same way. May return fewer edits than requested
/// when the instance is too dense (grow) or sparse (shrink) to honor them.
pub fn random_delta<R: rand::Rng>(
    b: &BipartiteGraph,
    style: ChurnStyle,
    edits: usize,
    rng: &mut R,
) -> EdgeDelta {
    let (lc, rc) = (b.left_count(), b.right_count());
    let mut inserts: Vec<(usize, usize)> = Vec::new();
    let mut deletes: Vec<(usize, usize)> = Vec::new();
    if lc == 0 || rc == 0 {
        return EdgeDelta::new(b, &[], &[]).expect("empty delta is always valid");
    }
    let want_deletes = match style {
        ChurnStyle::Grow => 0,
        ChurnStyle::Shrink => edits,
        ChurnStyle::Rewire => edits / 2,
    };
    if want_deletes > 0 && b.edge_count() > 0 {
        // sample existing edges by index through the left-major iterator
        let mut picks: Vec<usize> = (0..want_deletes.min(b.edge_count()))
            .map(|_| rng.random_range(0..b.edge_count()))
            .collect();
        picks.sort_unstable();
        picks.dedup();
        let mut it = b.edges().enumerate();
        for p in picks {
            for (i, e) in it.by_ref() {
                if i == p {
                    deletes.push(e);
                    break;
                }
            }
        }
    }
    let want_inserts = match style {
        ChurnStyle::Grow => edits,
        ChurnStyle::Shrink => 0,
        ChurnStyle::Rewire => edits - edits / 2,
    };
    let mut tries = 0;
    while inserts.len() < want_inserts && tries < 20 * edits + 20 {
        tries += 1;
        let u = rng.random_range(0..lc);
        let v = rng.random_range(0..rc);
        if !b.contains_edge(u, v) && !inserts.contains(&(u, v)) {
            inserts.push((u, v));
        }
    }
    EdgeDelta::new(b, &inserts, &deletes).expect("sampled edits are fresh and in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connected_components;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_delta(b: &BipartiteGraph, rng: &mut StdRng) -> (EdgeDelta, ChurnStyle) {
        let style = ChurnStyle::ALL[rng.random_range(0..3usize)];
        let edits = rng.random_range(1..6usize);
        (super::random_delta(b, style, edits, rng), style)
    }

    fn k23() -> BipartiteGraph {
        BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn canonicalizes_and_applies() {
        let mut b = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        // unsorted input canonicalizes
        let d = EdgeDelta::new(&b, &[(2, 0), (0, 1)], &[(1, 1)]).unwrap();
        assert_eq!(d.inserts(), &[(0, 1), (2, 0)]);
        assert_eq!(d.deletes(), &[(1, 1)]);
        assert_eq!(d.len(), 3);
        let region = d.apply(&mut b).unwrap();
        assert!(b.contains_edge(0, 1));
        assert!(b.contains_edge(2, 0));
        assert!(!b.contains_edge(1, 1));
        assert_eq!(b.edge_count(), 4);
        assert_eq!(region.left, vec![0, 1, 2]);
        assert_eq!(region.right, vec![0, 1]);
        // halo: all of left — constraint 0 via v1, 2 via v0, 1 directly
        assert_eq!(region.halo, vec![0, 1, 2]);
    }

    #[test]
    fn inverse_round_trips() {
        let original = k23();
        let mut b = original.clone();
        let d = EdgeDelta::new(&b, &[], &[(0, 1), (1, 2)]).unwrap();
        d.apply(&mut b).unwrap();
        assert_ne!(b, original);
        d.inverse().apply(&mut b).unwrap();
        assert_eq!(b, original);
    }

    #[test]
    fn typed_rejections() {
        let b = k23();
        assert_eq!(
            EdgeDelta::new(&b, &[(5, 0)], &[]),
            Err(DeltaError::NodeOutOfRange {
                side: "left",
                index: 5,
                count: 2
            })
        );
        assert_eq!(
            EdgeDelta::new(&b, &[], &[(0, 9)]),
            Err(DeltaError::NodeOutOfRange {
                side: "right",
                index: 9,
                count: 3
            })
        );
        assert_eq!(
            EdgeDelta::new(&b, &[], &[(0, 0), (0, 0)]),
            Err(DeltaError::DuplicateEdit { left: 0, right: 0 })
        );
        assert_eq!(
            EdgeDelta::new(&b, &[(0, 0)], &[]),
            Err(DeltaError::InsertExisting { left: 0, right: 0 })
        );
        let sparse = BipartiteGraph::new(2, 2);
        assert_eq!(
            EdgeDelta::new(&sparse, &[], &[(0, 0)]),
            Err(DeltaError::DeleteMissing { left: 0, right: 0 })
        );
        assert_eq!(
            EdgeDelta::new(&sparse, &[(0, 0)], &[(0, 0)]),
            Err(DeltaError::ContradictoryEdit { left: 0, right: 0 })
        );
    }

    #[test]
    fn apply_rejects_shape_mismatch_and_drift() {
        let b = k23();
        let d = EdgeDelta::new(&b, &[], &[(0, 0)]).unwrap();
        let mut other = BipartiteGraph::new(4, 4);
        assert_eq!(
            d.apply(&mut other),
            Err(DeltaError::ShapeMismatch {
                expected: (2, 3),
                actual: (4, 4)
            })
        );
        // drift: the target lost the edge since validation — nothing applied
        let mut drifted = b.clone();
        drifted.remove_edge(0, 0);
        let before = drifted.clone();
        assert_eq!(
            d.apply(&mut drifted),
            Err(DeltaError::DeleteMissing { left: 0, right: 0 })
        );
        assert_eq!(drifted, before);
    }

    #[test]
    fn empty_delta_is_noop() {
        let mut b = k23();
        let before = b.clone();
        let d = EdgeDelta::new(&b, &[], &[]).unwrap();
        assert!(d.is_empty());
        let region = d.apply(&mut b).unwrap();
        assert!(region.is_empty());
        assert!(region.halo.is_empty());
        assert_eq!(b, before);
    }

    #[test]
    fn component_closure_covers_touched_components_only() {
        // two components: {u0, v0, v1} and {u1, u2, v2}
        let mut b = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 2), (2, 2)]).unwrap();
        let d = EdgeDelta::new(&b, &[], &[(0, 1)]).unwrap();
        let region = d.apply(&mut b).unwrap();
        // components of the *post-patch* graph: v1 is now isolated
        let cc = connected_components(&b.to_graph());
        let closure = region.component_closure(&b, &cc);
        // touched: u0's component {u0, v0} and v1's singleton {v1}
        assert_eq!(closure, vec![0, 3, 4]);
    }

    #[test]
    fn dirty_region_halo_is_sound() {
        // after any patch, every constraint outside the halo must have an
        // unchanged neighborhood
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(0xDE17A ^ seed);
            let before = crate::generators::erdos_renyi_bipartite(8, 12, 0.35, &mut rng);
            let mut after = before.clone();
            let (d, _) = random_delta(&after, &mut rng);
            let region = d.apply(&mut after).unwrap();
            for u in 0..after.left_count() {
                if region.halo.binary_search(&u).is_err() {
                    assert_eq!(
                        before.left_neighbors(u),
                        after.left_neighbors(u),
                        "constraint {u} outside the halo changed (seed {seed})"
                    );
                }
            }
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn setup(seed: u64) -> (BipartiteGraph, StdRng) {
            let mut rng = StdRng::seed_from_u64(seed);
            let nl = rng.random_range(2usize..12);
            let nr = rng.random_range(2usize..16);
            let b = crate::generators::erdos_renyi_bipartite(nl, nr, 0.4, &mut rng);
            (b, rng)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn apply_then_inverse_is_bit_identical(seed in 0u64..10_000) {
                let (original, mut rng) = setup(seed);
                let mut b = original.clone();
                let (d, _) = random_delta(&b, &mut rng);
                let region = d.apply(&mut b).unwrap();
                prop_assert_eq!(d.is_empty(), region.is_empty());
                d.inverse().apply(&mut b).unwrap();
                prop_assert_eq!(b, original);
            }

            #[test]
            fn empty_delta_preserves_instance_exactly(seed in 0u64..10_000) {
                let (original, _) = setup(seed);
                let mut b = original.clone();
                let d = EdgeDelta::new(&b, &[], &[]).unwrap();
                let region = d.apply(&mut b).unwrap();
                prop_assert!(region.is_empty());
                prop_assert_eq!(region.refix_fraction(&b), 0.0);
                prop_assert_eq!(b, original);
            }

            #[test]
            fn out_of_range_and_duplicate_edits_reject_typedly(seed in 0u64..10_000) {
                let (b, mut rng) = setup(seed);
                // out of range on either side
                let u = b.left_count() + rng.random_range(0usize..4);
                prop_assert!(matches!(
                    EdgeDelta::new(&b, &[(u, 0)], &[]),
                    Err(DeltaError::NodeOutOfRange { side: "left", .. })
                ));
                let v = b.right_count() + rng.random_range(0usize..4);
                prop_assert!(matches!(
                    EdgeDelta::new(&b, &[], &[(0, v)]),
                    Err(DeltaError::NodeOutOfRange { side: "right", .. })
                ));
                // duplicate and contradictory edits on a fresh pair
                let pair = (
                    rng.random_range(0..b.left_count()),
                    rng.random_range(0..b.right_count()),
                );
                prop_assert!(matches!(
                    EdgeDelta::new(&b, &[pair, pair], &[]),
                    Err(DeltaError::DuplicateEdit { .. })
                ));
                if !b.contains_edge(pair.0, pair.1) {
                    prop_assert!(matches!(
                        EdgeDelta::new(&b, &[pair], &[pair]),
                        Err(DeltaError::ContradictoryEdit { .. })
                    ));
                    prop_assert!(matches!(
                        EdgeDelta::new(&b, &[], &[pair]),
                        Err(DeltaError::DeleteMissing { .. })
                    ));
                } else {
                    prop_assert!(matches!(
                        EdgeDelta::new(&b, &[pair], &[]),
                        Err(DeltaError::InsertExisting { .. })
                    ));
                }
            }

            #[test]
            fn stream_equals_upfront_application(seed in 0u64..10_000) {
                // a stream of deltas applied one by one equals the same
                // edits applied to a fresh copy in the same order — the
                // conformance churn group's bit-identity invariant in
                // miniature
                let (original, mut rng) = setup(seed);
                let mut streamed = original.clone();
                let mut deltas = Vec::new();
                for _ in 0..4 {
                    let (d, _) = random_delta(&streamed, &mut rng);
                    d.apply(&mut streamed).unwrap();
                    deltas.push(d);
                }
                let mut upfront = original.clone();
                for d in &deltas {
                    d.apply(&mut upfront).unwrap();
                }
                prop_assert_eq!(streamed, upfront);
            }
        }
    }

    #[test]
    fn refix_fraction_bounds() {
        let mut b = k23();
        let d = EdgeDelta::new(&b, &[], &[(0, 0)]).unwrap();
        let region = d.apply(&mut b).unwrap();
        let f = region.refix_fraction(&b);
        assert!(f > 0.0 && f <= 1.0, "fraction {f}");
        assert_eq!(
            DirtyRegion {
                left: vec![],
                right: vec![],
                halo: vec![]
            }
            .refix_fraction(&BipartiteGraph::new(0, 0)),
            0.0
        );
    }
}
