//! Error types for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Error raised when constructing or mutating a graph with invalid data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph (valid indices are `0..count`).
        count: usize,
    },
    /// A self-loop was supplied to a simple-graph constructor.
    SelfLoop {
        /// The node at both endpoints.
        node: usize,
    },
    /// A duplicate edge was supplied to a simple-graph constructor.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Per-node adjacency lists were not symmetric (`v` listed as a neighbor
    /// of `u` without the mirror entry).
    AsymmetricAdjacency {
        /// Node whose row contains the unmirrored entry.
        u: usize,
        /// The listed neighbor missing its mirror entry.
        v: usize,
    },
    /// Degree-sequence parameters do not admit the requested graph.
    InfeasibleDegrees {
        /// Human-readable reason.
        reason: String,
    },
    /// A generator exhausted its retry budget without producing a valid graph.
    GenerationFailed {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, count } => {
                write!(
                    f,
                    "node index {node} out of range for graph with {count} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} not allowed in a simple graph")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(
                    f,
                    "duplicate edge {{{u}, {v}}} not allowed in a simple graph"
                )
            }
            GraphError::AsymmetricAdjacency { u, v } => {
                write!(
                    f,
                    "adjacency lists not symmetric: {v} in row {u} without mirror entry"
                )
            }
            GraphError::InfeasibleDegrees { reason } => {
                write!(f, "infeasible degree parameters: {reason}")
            }
            GraphError::GenerationFailed { reason } => {
                write!(f, "graph generation failed: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, count: 3 };
        assert_eq!(
            e.to_string(),
            "node index 7 out of range for graph with 3 nodes"
        );
        let e = GraphError::SelfLoop { node: 2 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate edge"));
        let e = GraphError::InfeasibleDegrees {
            reason: "odd sum".into(),
        };
        assert!(e.to_string().contains("odd sum"));
        let e = GraphError::GenerationFailed {
            reason: "retries".into(),
        };
        assert!(e.to_string().contains("retries"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
