//! Bipartite constraint/variable graphs.
//!
//! The paper phrases all splitting problems on a bipartite graph
//! `B = (U ∪ V, E)` where `U` holds *constraint* nodes (the left side,
//! hypergraph vertices) and `V` holds *variable* nodes (the right side,
//! hyperedges). Following the paper's notation, `δ`/`Δ` are the minimum and
//! maximum degree over `U` and the *rank* `r` is the maximum degree over `V`.

use crate::error::GraphError;
use crate::graph::Graph;

/// A bipartite graph `B = (U ∪ V, E)` with constraint side `U` and variable side `V`.
///
/// Left nodes are indexed `0..left_count`, right nodes `0..right_count`;
/// the two index spaces are independent. Parallel edges are not allowed.
///
/// # Examples
///
/// ```
/// use splitgraph::BipartiteGraph;
///
/// // one constraint watching three variables
/// let b = BipartiteGraph::from_edges(1, 3, &[(0, 0), (0, 1), (0, 2)]).unwrap();
/// assert_eq!(b.min_left_degree(), 3); // δ
/// assert_eq!(b.rank(), 1); // r
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BipartiteGraph {
    adj_left: Vec<Vec<usize>>,
    adj_right: Vec<Vec<usize>>,
    edge_count: usize,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        BipartiteGraph {
            adj_left: vec![Vec::new(); left_count],
            adj_right: vec![Vec::new(); right_count],
            edge_count: 0,
        }
    }

    /// Builds a bipartite graph from `(left, right)` edge pairs.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints or duplicate edges.
    pub fn from_edges(
        left_count: usize,
        right_count: usize,
        edges: &[(usize, usize)],
    ) -> Result<Self, GraphError> {
        let mut b = BipartiteGraph::new(left_count, right_count);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b)
    }

    /// Builds a bipartite graph from `(left, right)` edge pairs in bulk:
    /// rows are filled by appends, sorted once, and scanned for duplicates —
    /// `O(|U| + |V| + m log Δ)` with no per-edge sorted insertion. Validates
    /// exactly what [`BipartiteGraph::from_edges`] validates, though with
    /// several violations present the reported error may differ (ranges are
    /// checked in list order before duplicates).
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints or duplicate edges.
    pub fn from_edges_bulk(
        left_count: usize,
        right_count: usize,
        edges: &[(usize, usize)],
    ) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u >= left_count {
                return Err(GraphError::NodeOutOfRange {
                    node: u,
                    count: left_count,
                });
            }
            if v >= right_count {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    count: right_count,
                });
            }
        }
        // degree prepass so every row is allocated exactly once — the
        // incremental `push` growth pattern costs several reallocations
        // per row, which dominates build time on parse-heavy paths
        let mut left_deg = vec![0usize; left_count];
        let mut right_deg = vec![0usize; right_count];
        for &(u, v) in edges {
            left_deg[u] += 1;
            right_deg[v] += 1;
        }
        let mut b = BipartiteGraph {
            adj_left: left_deg.iter().map(|&d| Vec::with_capacity(d)).collect(),
            adj_right: right_deg.iter().map(|&d| Vec::with_capacity(d)).collect(),
            edge_count: edges.len(),
        };
        for &(u, v) in edges {
            b.adj_left[u].push(v);
            b.adj_right[v].push(u);
        }
        // canonical encodings list edges in adjacency order, so the rows
        // usually arrive sorted — checking is one linear pass, far
        // cheaper than re-sorting every row
        for (u, row) in b.adj_left.iter_mut().enumerate() {
            if !row.is_sorted() {
                row.sort_unstable();
            }
            if let Some(w) = row.windows(2).find(|w| w[0] == w[1]) {
                return Err(GraphError::DuplicateEdge { u, v: w[0] });
            }
        }
        for row in &mut b.adj_right {
            if !row.is_sorted() {
                row.sort_unstable();
            }
        }
        Ok(b)
    }

    /// Adds the edge between left node `u` and right node `v`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints or duplicate edges.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.left_count() {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                count: self.left_count(),
            });
        }
        if v >= self.right_count() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                count: self.right_count(),
            });
        }
        match self.adj_left[u].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge { u, v }),
            Err(pos) => self.adj_left[u].insert(pos, v),
        }
        let pos = self.adj_right[v].binary_search(&u).unwrap_err();
        self.adj_right[v].insert(pos, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the edge `(u, v)` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.left_count() || v >= self.right_count() {
            return false;
        }
        if let Ok(pos) = self.adj_left[u].binary_search(&v) {
            self.adj_left[u].remove(pos);
            let pos = self.adj_right[v]
                .binary_search(&u)
                .expect("adjacency symmetric");
            self.adj_right[v].remove(pos);
            self.edge_count -= 1;
            true
        } else {
            false
        }
    }

    /// Number of constraint (left, `U`) nodes.
    pub fn left_count(&self) -> usize {
        self.adj_left.len()
    }

    /// Number of variable (right, `V`) nodes.
    pub fn right_count(&self) -> usize {
        self.adj_right.len()
    }

    /// Total number of nodes `|U| + |V|` (the paper's `n`).
    pub fn node_count(&self) -> usize {
        self.left_count() + self.right_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of left node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn left_degree(&self, u: usize) -> usize {
        self.adj_left[u].len()
    }

    /// Degree of right node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn right_degree(&self, v: usize) -> usize {
        self.adj_right[v].len()
    }

    /// Sorted neighbors (right indices) of left node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn left_neighbors(&self, u: usize) -> &[usize] {
        &self.adj_left[u]
    }

    /// Sorted neighbors (left indices) of right node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn right_neighbors(&self, v: usize) -> &[usize] {
        &self.adj_right[v]
    }

    /// Whether the edge `(u, v)` is present. Out-of-range endpoints yield `false`.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        u < self.left_count()
            && v < self.right_count()
            && self.adj_left[u].binary_search(&v).is_ok()
    }

    /// Minimum degree `δ` over the constraint side `U` (0 if `U` is empty).
    pub fn min_left_degree(&self) -> usize {
        self.adj_left.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Maximum degree `Δ` over the constraint side `U` (0 if `U` is empty).
    pub fn max_left_degree(&self) -> usize {
        self.adj_left.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Rank `r`: the maximum degree over the variable side `V` (0 if `V` is empty).
    pub fn rank(&self) -> usize {
        self.adj_right.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree over the variable side `V` (0 if `V` is empty).
    pub fn min_right_degree(&self) -> usize {
        self.adj_right.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Iterator over edges as `(left, right)` pairs, in left-major order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj_left
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().map(move |&v| (u, v)))
    }

    /// Bipartite subgraph keeping exactly the edges for which `pred(u, v)` is true.
    pub fn filter_edges<F: FnMut(usize, usize) -> bool>(&self, mut pred: F) -> BipartiteGraph {
        let mut b = BipartiteGraph::new(self.left_count(), self.right_count());
        // edges() yields left-major order with sorted rows, so plain appends
        // keep both sides sorted — no per-edge sorted insertion needed
        for (u, v) in self.edges() {
            if pred(u, v) {
                b.adj_left[u].push(v);
                b.adj_right[v].push(u);
                b.edge_count += 1;
            }
        }
        b
    }

    /// Subgraph induced by node masks on both sides (indices are preserved;
    /// dropped nodes become isolated).
    ///
    /// # Panics
    ///
    /// Panics if the mask lengths do not match the side sizes.
    pub fn induced_subgraph(&self, keep_left: &[bool], keep_right: &[bool]) -> BipartiteGraph {
        assert_eq!(
            keep_left.len(),
            self.left_count(),
            "left mask length mismatch"
        );
        assert_eq!(
            keep_right.len(),
            self.right_count(),
            "right mask length mismatch"
        );
        self.filter_edges(|u, v| keep_left[u] && keep_right[v])
    }

    /// Flattens into a simple [`Graph`] over `left_count + right_count` nodes;
    /// left node `u` maps to index `u`, right node `v` to `left_count + v`.
    ///
    /// Used to run generic node algorithms (colorings, power graphs,
    /// components) on bipartite instances.
    pub fn to_graph(&self) -> Graph {
        let shift = self.left_count();
        let edges: Vec<(usize, usize)> = self.edges().map(|(u, v)| (u, shift + v)).collect();
        Graph::from_edges_unchecked(self.node_count(), &edges)
    }

    /// Index of right node `v` in the flattened [`Graph`] of [`Self::to_graph`].
    pub fn right_index(&self, v: usize) -> usize {
        self.left_count() + v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        // U = {0,1}, V = {0,1,2}; u0 ~ {v0,v1}, u1 ~ {v1,v2}
        BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn degrees_and_rank() {
        let b = sample();
        assert_eq!(b.left_count(), 2);
        assert_eq!(b.right_count(), 3);
        assert_eq!(b.node_count(), 5);
        assert_eq!(b.edge_count(), 4);
        assert_eq!(b.left_degree(0), 2);
        assert_eq!(b.right_degree(1), 2);
        assert_eq!(b.min_left_degree(), 2);
        assert_eq!(b.max_left_degree(), 2);
        assert_eq!(b.rank(), 2);
        assert_eq!(b.min_right_degree(), 1);
    }

    #[test]
    fn rejects_duplicates_and_out_of_range() {
        let mut b = sample();
        assert_eq!(
            b.add_edge(0, 0),
            Err(GraphError::DuplicateEdge { u: 0, v: 0 })
        );
        assert_eq!(
            b.add_edge(2, 0),
            Err(GraphError::NodeOutOfRange { node: 2, count: 2 })
        );
        assert_eq!(
            b.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, count: 3 })
        );
    }

    #[test]
    fn remove_edge_symmetric() {
        let mut b = sample();
        assert!(b.remove_edge(0, 1));
        assert!(!b.contains_edge(0, 1));
        assert_eq!(b.right_neighbors(1), &[1]);
        assert_eq!(b.edge_count(), 3);
        assert!(!b.remove_edge(0, 1));
    }

    #[test]
    fn edge_iterator_is_complete() {
        let b = sample();
        let edges: Vec<_> = b.edges().collect();
        assert_eq!(edges, vec![(0, 0), (0, 1), (1, 1), (1, 2)]);
    }

    #[test]
    fn filter_and_induced() {
        let b = sample();
        let f = b.filter_edges(|u, _| u == 1);
        assert_eq!(f.edge_count(), 2);
        assert_eq!(f.left_degree(0), 0);

        let ind = b.induced_subgraph(&[true, false], &[true, true, true]);
        assert_eq!(ind.edge_count(), 2);
        assert_eq!(ind.left_neighbors(0), &[0, 1]);
    }

    #[test]
    fn to_graph_shifts_right_indices() {
        let b = sample();
        let g = b.to_graph();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.contains_edge(0, b.right_index(0)));
        assert!(g.contains_edge(1, b.right_index(2)));
        assert!(!g.contains_edge(0, 1));
    }

    #[test]
    fn bulk_builder_matches_incremental() {
        let edges = [(1, 2), (0, 0), (0, 1), (1, 1)];
        let inc = BipartiteGraph::from_edges(2, 3, &edges).unwrap();
        let bulk = BipartiteGraph::from_edges_bulk(2, 3, &edges).unwrap();
        assert_eq!(inc, bulk);
        assert_eq!(
            BipartiteGraph::from_edges_bulk(2, 3, &[(0, 1), (0, 1)]),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
        assert_eq!(
            BipartiteGraph::from_edges_bulk(2, 3, &[(2, 0)]),
            Err(GraphError::NodeOutOfRange { node: 2, count: 2 })
        );
        assert_eq!(
            BipartiteGraph::from_edges_bulk(2, 3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, count: 3 })
        );
    }

    #[test]
    fn empty_sides() {
        let b = BipartiteGraph::new(0, 0);
        assert_eq!(b.min_left_degree(), 0);
        assert_eq!(b.rank(), 0);
        assert_eq!(b.edges().count(), 0);
    }
}
