//! Simple undirected graphs.
//!
//! [`Graph`] is the plain host-network type used throughout the reproduction:
//! nodes are dense indices `0..n`, edges are unordered pairs without
//! self-loops or duplicates. Adjacency lists are kept sorted so that
//! membership tests are logarithmic and iteration order is deterministic.

use crate::error::GraphError;

/// A simple undirected graph over nodes `0..n`.
///
/// # Examples
///
/// ```
/// use splitgraph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.contains_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range, an edge is a
    /// self-loop, or an edge appears twice (in either orientation).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops, or duplicates.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        let n = self.node_count();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, count: n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, count: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        match self.adj[u].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge { u, v }),
            Err(pos) => self.adj[u].insert(pos, v),
        }
        let pos = self.adj[v].binary_search(&u).unwrap_err();
        self.adj[v].insert(pos, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the undirected edge `{u, v}` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        if let Ok(pos) = self.adj[u].binary_search(&v) {
            self.adj[u].remove(pos);
            let pos = self.adj[v].binary_search(&u).expect("adjacency symmetric");
            self.adj[v].remove(pos);
            self.edge_count -= 1;
            true
        } else {
            false
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Sorted slice of neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Whether the edge `{u, v}` is present. Out-of-range endpoints yield `false`.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        u < self.node_count() && v < self.node_count() && self.adj[u].binary_search(&v).is_ok()
    }

    /// Maximum degree Δ, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree δ, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Iterator over edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Subgraph induced by `keep` (nodes keep their indices; edges to dropped
    /// nodes are removed). `keep[v]` tells whether node `v` survives.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.node_count()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.node_count(), "keep mask length mismatch");
        let mut g = Graph::new(self.node_count());
        for (u, v) in self.edges() {
            if keep[u] && keep[v] {
                g.add_edge(u, v)
                    .expect("edges of a simple graph remain simple");
            }
        }
        g
    }

    /// Subgraph keeping exactly the edges for which `pred` returns true.
    pub fn filter_edges<F: FnMut(usize, usize) -> bool>(&self, mut pred: F) -> Graph {
        let mut g = Graph::new(self.node_count());
        for (u, v) in self.edges() {
            if pred(u, v) {
                g.add_edge(u, v)
                    .expect("filtered edges of a simple graph remain simple");
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 1).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains_edge(1, 0));
        assert!(g.contains_edge(1, 2));
        assert!(!g.contains_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_duplicate_in_either_orientation() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(0, 1),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
        assert_eq!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 2),
            Err(GraphError::NodeOutOfRange { node: 2, count: 2 })
        );
        assert_eq!(
            g.add_edge(5, 0),
            Err(GraphError::NodeOutOfRange { node: 5, count: 2 })
        );
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(g.remove_edge(1, 0));
        assert!(!g.contains_edge(0, 1));
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 17));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for &(u, v) in &edges {
            assert!(u < v);
        }
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn induced_subgraph_drops_incident_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.contains_edge(2, 3));
        assert_eq!(sub.degree(1), 0);
    }

    #[test]
    fn filter_edges_applies_predicate() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.filter_edges(|u, v| u + v >= 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.contains_edge(1, 2));
        assert!(sub.contains_edge(2, 3));
    }
}
