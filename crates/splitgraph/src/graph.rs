//! Simple undirected graphs.
//!
//! [`Graph`] is the plain host-network type used throughout the reproduction:
//! nodes are dense indices `0..n`, edges are unordered pairs without
//! self-loops or duplicates. Adjacency lists are kept sorted so that
//! membership tests are logarithmic and iteration order is deterministic.
//!
//! # Memory layout
//!
//! A graph lives in one of two interchangeable representations:
//!
//! * **flat (CSR)** — all adjacency rows packed into a single
//!   `offsets`/`targets` buffer pair ([`crate::csr::Csr`]); `neighbors()`
//!   returns a slice of one contiguous allocation, so whole-graph scans are
//!   cache-linear. This is what the bulk builders
//!   ([`Graph::from_edges_bulk`], [`Graph::from_adjacency`]) and the hot
//!   producers (`power_graph`, generators, subgraph operations) emit.
//! * **builder (per-node rows)** — one `Vec` per node, supporting the
//!   validated incremental [`Graph::add_edge`] / [`Graph::remove_edge`] path
//!   in `O(log Δ + Δ)` per operation.
//!
//! Mutating a flat graph transparently *thaws* it into builder form (one
//! `O(n + m)` pass); [`Graph::compact`] freezes a builder back into flat
//! form. All accessors, equality, and iteration behave identically in both
//! representations.

use crate::csr::Csr;
use crate::error::GraphError;

/// Adjacency storage: flat CSR or per-node builder rows (see module docs).
#[derive(Debug, Clone)]
enum Repr {
    Adj(Vec<Vec<usize>>),
    Flat(Csr),
}

/// A simple undirected graph over nodes `0..n`.
///
/// # Examples
///
/// ```
/// use splitgraph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.contains_edge(0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    repr: Repr,
    edge_count: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // representation-independent: same node set and same sorted rows
        self.edge_count == other.edge_count
            && self.node_count() == other.node_count()
            && (0..self.node_count()).all(|v| self.neighbors(v) == other.neighbors(v))
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes (builder form, ready
    /// for incremental [`Graph::add_edge`]).
    pub fn new(n: usize) -> Self {
        Graph {
            repr: Repr::Adj(vec![Vec::new(); n]),
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list via the per-edge validated path.
    ///
    /// Every edge pays an `O(log Δ + Δ)` sorted insert; for large *trusted*
    /// edge lists prefer [`Graph::from_edges_bulk`], which performs the same
    /// validation in bulk at `O(n + m log Δ)` total.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range, an edge is a
    /// self-loop, or an edge appears twice (in either orientation).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Builds a graph from an edge list in bulk: counting-sort into flat CSR
    /// rows, per-row sort, then a linear duplicate scan — `O(n + m log Δ)`
    /// with no per-edge shifting. The result is in flat form.
    ///
    /// # Errors
    ///
    /// Rejects exactly the edge lists [`Graph::from_edges`] rejects
    /// (out-of-range endpoints, self-loops, duplicates in either
    /// orientation), though when several violations are present the
    /// *reported* error may differ: range and self-loop violations are
    /// detected in list order before any duplicate.
    pub fn from_edges_bulk(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, count: n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, count: n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
        }
        let mut csr = Csr::from_undirected_pairs(n, edges);
        csr.sort_rows();
        for u in 0..n {
            if let Some(w) = csr.row(u).windows(2).find(|w| w[0] == w[1]) {
                return Err(GraphError::DuplicateEdge { u, v: w[0] });
            }
        }
        Ok(Graph {
            repr: Repr::Flat(csr),
            edge_count: edges.len(),
        })
    }

    /// Builds a graph directly from per-node neighbor lists (rows need not
    /// be sorted). `O(n + m log Δ)`; the result is in flat form.
    ///
    /// # Errors
    ///
    /// Returns an error if a neighbor index is out of range, a node lists
    /// itself (self-loop), a row contains a duplicate, or the lists are not
    /// symmetric (`v ∈ adj[u]` without `u ∈ adj[v]`).
    pub fn from_adjacency(adj: &[Vec<usize>]) -> Result<Self, GraphError> {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        for (u, row) in adj.iter().enumerate() {
            for &v in row {
                if v >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, count: n });
                }
                if v == u {
                    return Err(GraphError::SelfLoop { node: u });
                }
            }
            targets.extend_from_slice(row);
            offsets.push(targets.len());
        }
        let mut csr = Csr::from_parts(offsets, targets);
        csr.sort_rows();
        for u in 0..n {
            if let Some(w) = csr.row(u).windows(2).find(|w| w[0] == w[1]) {
                return Err(GraphError::DuplicateEdge { u, v: w[0] });
            }
        }
        // symmetry: every directed slot must have its mirror
        for u in 0..n {
            for &v in csr.row(u) {
                if csr.row(v).binary_search(&u).is_err() {
                    return Err(GraphError::AsymmetricAdjacency { u, v });
                }
            }
        }
        let edge_count = csr.entry_count() / 2;
        Ok(Graph {
            repr: Repr::Flat(csr),
            edge_count,
        })
    }

    /// Assembles a flat graph from trusted CSR parts: rows sorted strictly
    /// ascending, symmetric, no self-loops. Used by in-crate bulk producers
    /// (power graphs, subgraph operations) that guarantee the invariants.
    pub(crate) fn from_csr_parts_unchecked(offsets: Vec<usize>, targets: Vec<usize>) -> Graph {
        let csr = Csr::from_parts(offsets, targets);
        debug_assert!((0..csr.node_count()).all(|v| csr.row(v).windows(2).all(|w| w[0] < w[1])));
        debug_assert!((0..csr.node_count()).all(|v| csr
            .row(v)
            .iter()
            .all(|&u| u != v && csr.row(u).binary_search(&v).is_ok())));
        let edge_count = csr.entry_count() / 2;
        Graph {
            repr: Repr::Flat(csr),
            edge_count,
        }
    }

    /// Builds a flat graph from a trusted simple edge list (no validation
    /// beyond debug assertions). `O(n + m log Δ)`.
    pub(crate) fn from_edges_unchecked(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut csr = Csr::from_undirected_pairs(n, edges);
        csr.sort_rows();
        debug_assert!((0..n).all(|v| csr.row(v).windows(2).all(|w| w[0] < w[1])));
        Graph {
            repr: Repr::Flat(csr),
            edge_count: edges.len(),
        }
    }

    /// Whether the graph is currently in flat (CSR) form, i.e. `neighbors()`
    /// slices point into one contiguous buffer.
    pub fn is_flat(&self) -> bool {
        matches!(self.repr, Repr::Flat(_))
    }

    /// Freezes a builder-form graph into flat (CSR) form in `O(n + m)`.
    /// No-op when already flat.
    pub fn compact(&mut self) {
        if let Repr::Adj(rows) = &mut self.repr {
            let mut offsets = Vec::with_capacity(rows.len() + 1);
            offsets.push(0usize);
            let mut targets = Vec::with_capacity(2 * self.edge_count);
            for row in rows.iter() {
                targets.extend_from_slice(row);
                offsets.push(targets.len());
            }
            self.repr = Repr::Flat(Csr::from_parts(offsets, targets));
        }
    }

    /// Thaws a flat graph into builder form for incremental mutation.
    fn thaw(&mut self) -> &mut Vec<Vec<usize>> {
        if let Repr::Flat(csr) = &mut self.repr {
            let rows = std::mem::take(csr).into_rows();
            self.repr = Repr::Adj(rows);
        }
        match &mut self.repr {
            Repr::Adj(rows) => rows,
            Repr::Flat(_) => unreachable!("thawed above"),
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// On a flat graph the first mutation pays a one-time `O(n + m)` thaw
    /// back into builder form.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops, or duplicates.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        let n = self.node_count();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, count: n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, count: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let adj = self.thaw();
        match adj[u].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge { u, v }),
            Err(pos) => adj[u].insert(pos, v),
        }
        let pos = adj[v].binary_search(&u).unwrap_err();
        adj[v].insert(pos, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the undirected edge `{u, v}` if present; returns whether it
    /// existed. On a flat graph the first mutation pays a one-time
    /// `O(n + m)` thaw.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.node_count() || v >= self.node_count() || !self.contains_edge(u, v) {
            return false;
        }
        let adj = self.thaw();
        let pos = adj[u].binary_search(&v).expect("presence checked");
        adj[u].remove(pos);
        let pos = adj[v].binary_search(&u).expect("adjacency symmetric");
        adj[v].remove(pos);
        self.edge_count -= 1;
        true
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match &self.repr {
            Repr::Adj(rows) => rows.len(),
            Repr::Flat(csr) => csr.node_count(),
        }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        match &self.repr {
            Repr::Adj(rows) => rows[v].len(),
            Repr::Flat(csr) => csr.row_len(v),
        }
    }

    /// Sorted slice of neighbors of `v`. In flat form this slice borrows
    /// one contiguous whole-graph buffer.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        match &self.repr {
            Repr::Adj(rows) => &rows[v],
            Repr::Flat(csr) => csr.row(v),
        }
    }

    /// Whether the edge `{u, v}` is present. Out-of-range endpoints yield `false`.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        u < self.node_count()
            && v < self.node_count()
            && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree Δ, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree δ, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Iterator over edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u < v)
                .map(move |&v| (u, v))
        })
    }

    /// Subgraph induced by `keep` (nodes keep their indices; edges to dropped
    /// nodes are removed). `keep[v]` tells whether node `v` survives.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.node_count()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.node_count(), "keep mask length mismatch");
        self.filter_edges(|u, v| keep[u] && keep[v])
    }

    /// Subgraph keeping exactly the edges for which `pred` returns true.
    /// Built in bulk (flat form), not edge-by-edge.
    pub fn filter_edges<F: FnMut(usize, usize) -> bool>(&self, mut pred: F) -> Graph {
        let kept: Vec<(usize, usize)> = self.edges().filter(|&(u, v)| pred(u, v)).collect();
        Graph::from_edges_unchecked(self.node_count(), &kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 1).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains_edge(1, 0));
        assert!(g.contains_edge(1, 2));
        assert!(!g.contains_edge(0, 2));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_duplicate_in_either_orientation() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(0, 1),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
        assert_eq!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 2),
            Err(GraphError::NodeOutOfRange { node: 2, count: 2 })
        );
        assert_eq!(
            g.add_edge(5, 0),
            Err(GraphError::NodeOutOfRange { node: 5, count: 2 })
        );
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(g.remove_edge(1, 0));
        assert!(!g.contains_edge(0, 1));
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 17));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for &(u, v) in &edges {
            assert!(u < v);
        }
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn induced_subgraph_drops_incident_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.contains_edge(2, 3));
        assert_eq!(sub.degree(1), 0);
    }

    #[test]
    fn filter_edges_applies_predicate() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.filter_edges(|u, v| u + v >= 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.contains_edge(1, 2));
        assert!(sub.contains_edge(2, 3));
    }

    #[test]
    fn bulk_builder_matches_incremental() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let inc = Graph::from_edges(4, &edges).unwrap();
        let bulk = Graph::from_edges_bulk(4, &edges).unwrap();
        assert!(bulk.is_flat());
        assert!(!inc.is_flat());
        assert_eq!(inc, bulk);
        for v in 0..4 {
            assert_eq!(inc.neighbors(v), bulk.neighbors(v));
        }
    }

    #[test]
    fn bulk_builder_rejects_invalid_lists() {
        assert_eq!(
            Graph::from_edges_bulk(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, count: 3 })
        );
        assert_eq!(
            Graph::from_edges_bulk(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
        assert_eq!(
            Graph::from_edges_bulk(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
    }

    #[test]
    fn from_adjacency_validates_and_matches() {
        let g = Graph::from_adjacency(&[vec![2, 1], vec![0], vec![0]]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.is_flat());
        assert!(matches!(
            Graph::from_adjacency(&[vec![1], vec![]]),
            Err(GraphError::AsymmetricAdjacency { u: 1, v: 0 }
                | GraphError::AsymmetricAdjacency { u: 0, v: 1 })
        ));
        assert!(matches!(
            Graph::from_adjacency(&[vec![0]]),
            Err(GraphError::SelfLoop { node: 0 })
        ));
    }

    #[test]
    fn flat_graph_thaws_on_mutation() {
        let mut g = Graph::from_edges_bulk(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(g.is_flat());
        g.add_edge(1, 2).unwrap();
        assert!(!g.is_flat());
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        g.compact();
        assert!(g.is_flat());
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn equality_is_representation_independent() {
        let edges = [(0, 1), (1, 2)];
        let a = Graph::from_edges(3, &edges).unwrap();
        let b = Graph::from_edges_bulk(3, &edges).unwrap();
        assert_eq!(a, b);
        let c = Graph::from_edges_bulk(3, &[(0, 1)]).unwrap();
        assert_ne!(a, c);
    }
}
