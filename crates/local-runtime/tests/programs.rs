//! Integration tests for the LOCAL executor with classic distributed
//! programs: BFS layering and flooding on standard topologies.

use local_runtime::{run_local, IdAssignment, NodeContext, NodeProgram, BROADCAST};
use splitgraph::generators;

/// BFS layers from the node with ID 0: each node outputs its hop distance.
struct BfsLayers {
    dist: Option<usize>,
    announced: bool,
}

impl NodeProgram for BfsLayers {
    type Msg = usize;
    type Output = Option<usize>;

    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, usize)> {
        if ctx.id == 0 {
            self.dist = Some(0);
            self.announced = true;
            vec![(BROADCAST, 0)]
        } else {
            vec![]
        }
    }

    fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, usize)]) -> Vec<(usize, usize)> {
        if self.dist.is_none() {
            if let Some(&(_, d)) = inbox.iter().min_by_key(|&&(_, d)| d) {
                self.dist = Some(d + 1);
            }
        }
        if let (Some(d), false) = (self.dist, self.announced) {
            self.announced = true;
            return vec![(BROADCAST, d)];
        }
        vec![]
    }

    fn is_done(&self) -> bool {
        // termination here is by round limit; nodes never self-terminate
        false
    }

    fn output(&self) -> Option<usize> {
        self.dist
    }
}

fn bfs_distances(g: &splitgraph::Graph, source: usize) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    dist[source] = Some(0);
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if dist[w].is_none() {
                dist[w] = Some(dist[v].expect("visited") + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

#[test]
fn bfs_layers_match_reference_on_torus() {
    let g = generators::torus(6, 7).unwrap();
    let ids = IdAssignment::Sequential.assign(g.node_count());
    let run = run_local(&g, &ids, g.node_count(), |_| BfsLayers {
        dist: None,
        announced: false,
    });
    let reference = bfs_distances(&g, 0);
    assert_eq!(run.outputs, reference);
    // the run hits the round limit (programs never self-terminate), and
    // the eccentricity bounds how long information kept flowing
    assert!(!run.completed);
}

#[test]
fn bfs_layers_match_reference_on_hypercube() {
    let g = generators::hypercube(6);
    let ids = IdAssignment::Sequential.assign(g.node_count());
    let run = run_local(&g, &ids, 10, |_| BfsLayers {
        dist: None,
        announced: false,
    });
    let reference = bfs_distances(&g, 0);
    assert_eq!(run.outputs, reference);
    // hypercube dimension 6 has diameter 6 < 10 rounds
    assert_eq!(run.outputs.iter().filter_map(|d| *d).max(), Some(6));
}

#[test]
fn bfs_respects_disconnected_components() {
    let g = splitgraph::Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
    let ids = IdAssignment::Sequential.assign(5);
    let run = run_local(&g, &ids, 10, |_| BfsLayers {
        dist: None,
        announced: false,
    });
    assert_eq!(run.outputs[0], Some(0));
    assert_eq!(run.outputs[1], Some(1));
    assert_eq!(run.outputs[2], None, "other component is unreachable");
    assert_eq!(run.outputs[4], None);
}

#[test]
fn message_counts_scale_with_edges() {
    // every node announces once: total messages = Σ deg(announcers)
    let g = generators::cycle(50).unwrap();
    let ids = IdAssignment::Sequential.assign(50);
    let run = run_local(&g, &ids, 60, |_| BfsLayers {
        dist: None,
        announced: false,
    });
    // each of the 50 nodes broadcasts exactly once over degree 2
    assert_eq!(run.messages, 100);
}

#[test]
fn shuffled_ids_relabel_the_source() {
    let g = generators::cycle(9).unwrap();
    let ids = IdAssignment::Shuffled(3).assign(9);
    let source = ids.iter().position(|&x| x == 0).expect("id 0 exists");
    let run = run_local(&g, &ids, 20, |_| BfsLayers {
        dist: None,
        announced: false,
    });
    assert_eq!(run.outputs[source], Some(0));
    let reference = bfs_distances(&g, source);
    assert_eq!(run.outputs, reference);
}
