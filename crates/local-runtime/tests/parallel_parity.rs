//! Determinism parity: the opt-in parallel round step must produce a
//! bit-identical [`LocalRun`] — outputs, rounds, messages, completion — to
//! the sequential executor, for every thread count, across programs with
//! different communication patterns (broadcast floods, port-targeted sends,
//! staggered termination).

use local_runtime::{
    run_local, run_local_parallel, IdAssignment, LocalRun, NodeContext, NodeProgram, BROADCAST,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::{generators, Graph};

fn assert_identical<O: PartialEq + std::fmt::Debug>(a: &LocalRun<O>, b: &LocalRun<O>, what: &str) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs differ");
    assert_eq!(a.rounds, b.rounds, "{what}: rounds differ");
    assert_eq!(a.messages, b.messages, "{what}: messages differ");
    assert_eq!(a.completed, b.completed, "{what}: completion differs");
}

fn check_parity<P, F>(g: &Graph, ids: &[u64], max_rounds: usize, make: F, what: &str)
where
    P: NodeProgram + Send,
    P::Msg: Send + Sync,
    P::Output: PartialEq + std::fmt::Debug,
    F: Fn(&NodeContext) -> P,
{
    let seq = run_local(g, ids, max_rounds, &make);
    for threads in [2, 3, 4, 7] {
        let par = run_local_parallel(g, ids, max_rounds, threads, &make);
        assert_identical(&seq, &par, &format!("{what} (threads={threads})"));
    }
}

/// Max-ID flooding: broadcasts until quiescent, fixed round budget.
struct MaxId {
    best: u64,
    rounds_left: usize,
}

impl NodeProgram for MaxId {
    type Msg = u64;
    type Output = u64;
    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
        self.best = ctx.id;
        self.rounds_left = ctx.n;
        vec![(BROADCAST, self.best)]
    }
    fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
        let incoming = inbox.iter().map(|&(_, x)| x).max().unwrap_or(0);
        let changed = incoming > self.best;
        self.best = self.best.max(incoming);
        self.rounds_left -= 1;
        if changed {
            vec![(BROADCAST, self.best)]
        } else {
            vec![]
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
    fn output(&self) -> u64 {
        self.best
    }
}

/// Order-sensitive program: hashes the exact (port, payload) sequence of its
/// inbox every round, so any difference in delivery *order* — not just
/// content — changes the output.
struct InboxHash {
    acc: u64,
    rounds_left: usize,
}

impl NodeProgram for InboxHash {
    type Msg = u64;
    type Output = u64;
    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
        self.acc = ctx.id;
        vec![(BROADCAST, self.acc)]
    }
    fn round(&mut self, ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
        for &(port, x) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x100000001b3)
                .wrapping_add(x ^ (port as u64).rotate_left(17));
        }
        self.rounds_left -= 1;
        if self.rounds_left == 0 {
            return vec![];
        }
        // alternate between a targeted send and a broadcast
        if self.acc.is_multiple_of(3) && ctx.degree > 0 {
            vec![(self.acc as usize % ctx.degree, self.acc)]
        } else {
            vec![(BROADCAST, self.acc)]
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
    fn output(&self) -> u64 {
        self.acc
    }
}

/// Staggered termination: node with id `i` stops after `i % 7 + 1` rounds,
/// exercising the active-frontier bookkeeping (chunks shrink and shift).
struct Staggered {
    fuel: usize,
    heard: u64,
}

impl NodeProgram for Staggered {
    type Msg = u64;
    type Output = (u64, usize);
    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
        self.fuel = (ctx.id % 7 + 1) as usize;
        vec![(BROADCAST, ctx.id)]
    }
    fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
        self.heard = self
            .heard
            .wrapping_add(inbox.iter().map(|&(_, x)| x).sum::<u64>());
        self.fuel -= 1;
        if self.fuel > 0 {
            vec![(BROADCAST, self.heard)]
        } else {
            vec![]
        }
    }
    fn is_done(&self) -> bool {
        self.fuel == 0
    }
    fn output(&self) -> (u64, usize) {
        (self.heard, self.fuel)
    }
}

#[test]
fn max_id_flood_parity_on_torus() {
    let g = generators::torus(8, 9).unwrap();
    let ids = IdAssignment::Shuffled(11).assign(g.node_count());
    check_parity(
        &g,
        &ids,
        200,
        |_| MaxId {
            best: 0,
            rounds_left: 0,
        },
        "max-id flood on torus",
    );
}

#[test]
fn inbox_hash_parity_on_random_regular() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::random_regular(120, 6, &mut rng).unwrap();
    let ids = IdAssignment::Shuffled(3).assign(g.node_count());
    check_parity(
        &g,
        &ids,
        25,
        |_| InboxHash {
            acc: 0,
            rounds_left: 12,
        },
        "inbox-order hash on random regular",
    );
}

#[test]
fn staggered_termination_parity() {
    let mut rng = StdRng::seed_from_u64(13);
    let g = generators::erdos_renyi(150, 0.05, &mut rng);
    let ids = IdAssignment::Shuffled(5).assign(g.node_count());
    check_parity(
        &g,
        &ids,
        50,
        |_| Staggered { fuel: 0, heard: 0 },
        "staggered termination",
    );
}

#[test]
fn parity_holds_on_flat_and_builder_representations() {
    // same graph in both representations must give identical runs
    let edges: Vec<(usize, usize)> = generators::cycle(40).unwrap().edges().collect();
    let builder = Graph::from_edges(40, &edges).unwrap();
    let flat = Graph::from_edges_bulk(40, &edges).unwrap();
    assert!(flat.is_flat() && !builder.is_flat());
    let ids = IdAssignment::Shuffled(2).assign(40);
    let mk = |_: &NodeContext| InboxHash {
        acc: 0,
        rounds_left: 9,
    };
    let a = run_local(&builder, &ids, 20, mk);
    let b = run_local(&flat, &ids, 20, mk);
    assert_identical(&a, &b, "builder vs flat representation");
    let c = run_local_parallel(&flat, &ids, 20, 3, mk);
    assert_identical(&a, &c, "parallel on flat representation");
}

#[test]
fn parallel_handles_degenerate_inputs() {
    // empty graph, more threads than nodes, isolated nodes
    let g = Graph::new(0);
    let run = run_local_parallel(&g, &[], 5, 8, |_| MaxId {
        best: 0,
        rounds_left: 0,
    });
    assert!(run.completed);
    assert_eq!(run.rounds, 0);

    let g = Graph::new(3); // isolated nodes only
    let ids = [5, 1, 9];
    let seq = run_local(&g, &ids, 5, |_| MaxId {
        best: 0,
        rounds_left: 0,
    });
    let par = run_local_parallel(&g, &ids, 5, 16, |_| MaxId {
        best: 0,
        rounds_left: 0,
    });
    assert_identical(&seq, &par, "isolated nodes, threads > nodes");
    assert_eq!(par.outputs, vec![5, 1, 9]);
}
