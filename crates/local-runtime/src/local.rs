//! The synchronous LOCAL model executor.
//!
//! The LOCAL model [Linial '92; Peleg '00] is a synchronous message-passing
//! model: in every round each node may send an arbitrarily large message to
//! each neighbor, receive the messages of its neighbors, and update its
//! state. Complexity is the number of rounds. This executor runs one
//! [`NodeProgram`] instance per node, delivers messages along the edges of a
//! [`Graph`], and reports measured rounds and message counts.
//!
//! Ports: node `u`'s ports are `0..degree(u)`; port `p` leads to
//! `graph.neighbors(u)[p]`. Incoming messages are tagged with the
//! *receiver's* port towards the sender, so programs can reason purely in
//! terms of their local port numbering (no global indices needed), exactly
//! as in the formal model.
//!
//! # Memory layout
//!
//! The executor snapshots the topology once into flat CSR buffers
//! (`offsets`/`targets` plus a precomputed reverse-port table, so no
//! per-message port lookups), and shuttles messages through two flat,
//! double-buffered arenas: an *outbox* of `(dst, seq, port, msg)` records
//! filled during the round, and an *inbox* arena regrouped from it by a
//! deterministic in-place sort on `(dst, seq)`. Both arenas and the
//! active-node frontier are reused every round, so steady-state execution
//! performs no per-node per-round allocation (programs still own the `Vec`s
//! they return). Terminated nodes leave the frontier and cost zero.
//!
//! # Parallelism contract
//!
//! [`run_local_parallel`] is the opt-in parallel round step: the active
//! frontier is split into contiguous chunks, each processed by a scoped
//! thread (`std::thread::scope`), and the per-chunk outboxes are merged in
//! chunk order — which equals the sequential emission order — before the
//! same deterministic regrouping sort. Nodes are independent within a round,
//! so for any thread count the run is **bit-identical** to [`run_local`]:
//! same outputs, same round count, same message count, same inbox orderings.

use splitgraph::Graph;

/// Port number that broadcasts a message to every neighbor.
pub const BROADCAST: usize = usize::MAX;

/// Static knowledge available to a node at wake-up: its unique ID, its
/// degree, and the global parameter `n` (standard in the LOCAL model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeContext {
    /// Simulator index of the node (stable across the run; programs should
    /// treat it as opaque — distributed logic must use `id`).
    pub node: usize,
    /// The node's unique identifier.
    pub id: u64,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// Number of nodes in the network.
    pub n: usize,
}

/// A per-node program for the LOCAL executor.
///
/// The executor calls [`NodeProgram::init`] once (round 0, no inbox), then
/// repeatedly [`NodeProgram::round`] with the messages received that round,
/// until every node reports [`NodeProgram::is_done`] or the round limit is
/// hit. Messages are `(port, message)` pairs; use [`BROADCAST`] as the port
/// to send to all neighbors.
pub trait NodeProgram {
    /// Message type exchanged with neighbors.
    type Msg: Clone;
    /// Final output of a node.
    type Output;

    /// Round-0 initialization; returns the messages to deliver in round 1.
    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, Self::Msg)>;

    /// One synchronous round: receives `(port, message)` pairs sent by
    /// neighbors in the previous round, returns messages for the next round.
    fn round(&mut self, ctx: &NodeContext, inbox: &[(usize, Self::Msg)])
        -> Vec<(usize, Self::Msg)>;

    /// Whether this node has terminated (done nodes no longer act; messages
    /// addressed to them are dropped).
    fn is_done(&self) -> bool;

    /// The node's output, read after the run completes.
    fn output(&self) -> Self::Output;
}

/// Result of a LOCAL execution.
#[derive(Debug, Clone)]
pub struct LocalRun<O> {
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<O>,
    /// Number of message-passing rounds executed (round 0 init is free).
    pub rounds: usize,
    /// Total messages delivered (a broadcast counts once per neighbor).
    pub messages: usize,
    /// Whether all nodes terminated before the round limit.
    pub completed: bool,
}

/// Flat topology snapshot: CSR adjacency plus, for every directed edge slot
/// `v → u`, the port of `u` back towards `v` (precomputed once so delivery
/// needs no per-message binary search).
struct Topology {
    offsets: Vec<usize>,
    targets: Vec<usize>,
    rev_port: Vec<usize>,
}

impl Topology {
    fn new(g: &Graph) -> Topology {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        for v in 0..n {
            targets.extend_from_slice(g.neighbors(v));
            offsets.push(targets.len());
        }
        let mut rev_port = vec![0usize; targets.len()];
        for v in 0..n {
            for i in offsets[v]..offsets[v + 1] {
                let u = targets[i];
                rev_port[i] = targets[offsets[u]..offsets[u + 1]]
                    .binary_search(&v)
                    .expect("adjacency is symmetric");
            }
        }
        Topology {
            offsets,
            targets,
            rev_port,
        }
    }

    fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }
}

/// One outbound message record in the flat arena. `seq` is the global
/// emission index, assigned before regrouping; sorting by `(dst, seq)` is a
/// total order, so the regrouped inbox arena is deterministic.
struct OutMsg<M> {
    dst: usize,
    seq: usize,
    port: usize,
    msg: M,
}

/// Appends node `v`'s outgoing messages to the outbox arena, resolving
/// broadcast and reverse ports from the flat topology.
fn emit<M: Clone>(
    topo: &Topology,
    v: usize,
    out: Vec<(usize, M)>,
    buf: &mut Vec<OutMsg<M>>,
    messages: &mut usize,
) {
    for (port, msg) in out {
        if port == BROADCAST {
            let (lo, hi) = (topo.offsets[v], topo.offsets[v + 1]);
            for i in lo..hi {
                buf.push(OutMsg {
                    dst: topo.targets[i],
                    seq: 0,
                    port: topo.rev_port[i],
                    msg: msg.clone(),
                });
            }
            *messages += hi - lo;
        } else {
            assert!(
                port < topo.degree(v),
                "node {v} sent to invalid port {port}"
            );
            let i = topo.offsets[v] + port;
            buf.push(OutMsg {
                dst: topo.targets[i],
                seq: 0,
                port: topo.rev_port[i],
                msg,
            });
            *messages += 1;
        }
    }
}

/// Regroups the outbox arena into the inbox arena: assign emission sequence
/// numbers, sort in place by `(dst, seq)` (total order → deterministic), and
/// move the records over. After this, node `v`'s inbox is
/// `inbox_data[starts[v]..starts[v + 1]]`, in exactly the order the seed
/// executor's per-node push loop produced.
fn regroup<M>(
    n: usize,
    outbox: &mut Vec<OutMsg<M>>,
    inbox_data: &mut Vec<(usize, M)>,
    starts: &mut Vec<usize>,
) {
    for (i, m) in outbox.iter_mut().enumerate() {
        m.seq = i;
    }
    outbox.sort_unstable_by_key(|m| (m.dst, m.seq));
    starts.clear();
    starts.resize(n + 1, 0);
    for m in outbox.iter() {
        starts[m.dst + 1] += 1;
    }
    for i in 0..n {
        starts[i + 1] += starts[i];
    }
    inbox_data.clear();
    inbox_data.extend(outbox.drain(..).map(|m| (m.port, m.msg)));
}

/// Runs one [`NodeProgram`] per node of `g` for at most `max_rounds` rounds.
///
/// `make` constructs the program for each node from its [`NodeContext`].
///
/// # Panics
///
/// Panics if `ids.len() != g.node_count()` or a program sends to an invalid
/// port.
///
/// # Examples
///
/// Flood the maximum ID through a path (takes `n − 1 = 3` rounds):
///
/// ```
/// use local_runtime::{run_local, NodeContext, NodeProgram, BROADCAST};
/// use splitgraph::Graph;
///
/// struct MaxId {
///     best: u64,
///     rounds_left: usize,
/// }
/// impl NodeProgram for MaxId {
///     type Msg = u64;
///     type Output = u64;
///     fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
///         self.best = ctx.id;
///         self.rounds_left = ctx.n - 1; // the diameter certainly is smaller
///         vec![(BROADCAST, self.best)]
///     }
///     fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
///         let incoming = inbox.iter().map(|&(_, x)| x).max().unwrap_or(0);
///         let changed = incoming > self.best;
///         self.best = self.best.max(incoming);
///         self.rounds_left -= 1;
///         if changed { vec![(BROADCAST, self.best)] } else { vec![] }
///     }
///     fn is_done(&self) -> bool {
///         self.rounds_left == 0
///     }
///     fn output(&self) -> u64 {
///         self.best
///     }
/// }
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let run = run_local(&g, &[9, 2, 5, 1], 100, |_| MaxId { best: 0, rounds_left: 1 });
/// assert!(run.completed);
/// assert_eq!(run.rounds, 3);
/// assert!(run.outputs.iter().all(|&x| x == 9));
/// ```
pub fn run_local<P: NodeProgram>(
    g: &Graph,
    ids: &[u64],
    max_rounds: usize,
    make: impl FnMut(&NodeContext) -> P,
) -> LocalRun<P::Output> {
    let n = g.node_count();
    assert_eq!(ids.len(), n, "id vector length mismatch");
    let topo = Topology::new(g);
    let contexts = make_contexts(g, ids);
    let mut programs: Vec<P> = contexts.iter().map(make).collect();

    let mut messages = 0usize;
    let mut outbox: Vec<OutMsg<P::Msg>> = Vec::new();
    let mut inbox_data: Vec<(usize, P::Msg)> = Vec::new();
    let mut starts: Vec<usize> = Vec::new();

    for v in 0..n {
        let out = programs[v].init(&contexts[v]);
        emit(&topo, v, out, &mut outbox, &mut messages);
    }
    regroup(n, &mut outbox, &mut inbox_data, &mut starts);

    let mut active: Vec<usize> = (0..n).filter(|&v| !programs[v].is_done()).collect();
    let mut rounds = 0usize;
    while !active.is_empty() && rounds < max_rounds {
        crate::cancel::checkpoint();
        for &v in &active {
            let inbox = &inbox_data[starts[v]..starts[v + 1]];
            let out = programs[v].round(&contexts[v], inbox);
            emit(&topo, v, out, &mut outbox, &mut messages);
        }
        regroup(n, &mut outbox, &mut inbox_data, &mut starts);
        active.retain(|&v| !programs[v].is_done());
        rounds += 1;
    }

    LocalRun {
        outputs: programs.iter().map(NodeProgram::output).collect(),
        rounds,
        messages,
        completed: active.is_empty(),
    }
}

/// Parallel variant of [`run_local`]: the round step is executed by up to
/// `threads` scoped worker threads over contiguous chunks of the active
/// frontier, with per-chunk outboxes merged deterministically in chunk
/// order. For every thread count the result is **bit-identical** to the
/// sequential executor (see the module docs for the contract); `threads`
/// is clamped to at least 1, and `threads == 1` takes the sequential path.
///
/// # Panics
///
/// Panics if `ids.len() != g.node_count()` or a program sends to an invalid
/// port.
pub fn run_local_parallel<P>(
    g: &Graph,
    ids: &[u64],
    max_rounds: usize,
    threads: usize,
    make: impl FnMut(&NodeContext) -> P,
) -> LocalRun<P::Output>
where
    P: NodeProgram + Send,
    P::Msg: Send + Sync,
{
    if threads <= 1 {
        return run_local(g, ids, max_rounds, make);
    }
    let n = g.node_count();
    assert_eq!(ids.len(), n, "id vector length mismatch");
    let topo = Topology::new(g);
    let contexts = make_contexts(g, ids);
    let mut programs: Vec<P> = contexts.iter().map(make).collect();

    let mut messages = 0usize;
    let mut outbox: Vec<OutMsg<P::Msg>> = Vec::new();
    let mut inbox_data: Vec<(usize, P::Msg)> = Vec::new();
    let mut starts: Vec<usize> = Vec::new();
    // per-worker outbox buffers, reused across rounds
    let mut chunk_bufs: Vec<Vec<OutMsg<P::Msg>>> = Vec::new();

    // round-0 init is cheap and sequential by definition (no inbox)
    for v in 0..n {
        let out = programs[v].init(&contexts[v]);
        emit(&topo, v, out, &mut outbox, &mut messages);
    }
    regroup(n, &mut outbox, &mut inbox_data, &mut starts);

    let mut active: Vec<usize> = (0..n).filter(|&v| !programs[v].is_done()).collect();
    let mut rounds = 0usize;
    while !active.is_empty() && rounds < max_rounds {
        crate::cancel::checkpoint();
        let t = threads.min(active.len());
        chunk_bufs.resize_with(t, Vec::new);
        let (topo_ref, contexts_ref) = (&topo, &contexts);
        let (inbox_ref, starts_ref, active_ref) = (&inbox_data, &starts, &active);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(t);
            let mut rest: &mut [P] = &mut programs;
            let mut base = 0usize;
            for (chunk, mut buf) in chunk_bufs.drain(..).enumerate() {
                // contiguous chunk of the active frontier, balanced by count
                let sub =
                    &active_ref[chunk * active_ref.len() / t..(chunk + 1) * active_ref.len() / t];
                let end_node = sub.last().expect("chunks are non-empty") + 1;
                let (head, tail) = rest.split_at_mut(end_node - base);
                rest = tail;
                let chunk_base = base;
                base = end_node;
                handles.push(s.spawn(move || {
                    let mut msgs = 0usize;
                    for &v in sub {
                        let inbox = &inbox_ref[starts_ref[v]..starts_ref[v + 1]];
                        let out = head[v - chunk_base].round(&contexts_ref[v], inbox);
                        emit(topo_ref, v, out, &mut buf, &mut msgs);
                    }
                    (buf, msgs)
                }));
            }
            // merge in chunk order = ascending node order = sequential order
            for handle in handles {
                let (mut buf, msgs) = handle.join().expect("worker thread panicked");
                messages += msgs;
                outbox.append(&mut buf);
                chunk_bufs.push(buf);
            }
        });
        regroup(n, &mut outbox, &mut inbox_data, &mut starts);
        active.retain(|&v| !programs[v].is_done());
        rounds += 1;
    }

    LocalRun {
        outputs: programs.iter().map(NodeProgram::output).collect(),
        rounds,
        messages,
        completed: active.is_empty(),
    }
}

fn make_contexts(g: &Graph, ids: &[u64]) -> Vec<NodeContext> {
    let n = g.node_count();
    (0..n)
        .map(|v| NodeContext {
            node: v,
            id: ids[v],
            degree: g.degree(v),
            n,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node outputs the multiset of neighbor IDs it saw in round 1.
    struct CollectNeighbors {
        seen: Vec<u64>,
        done: bool,
    }

    impl NodeProgram for CollectNeighbors {
        type Msg = u64;
        type Output = Vec<u64>;
        fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
            vec![(BROADCAST, ctx.id)]
        }
        fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
            self.seen = inbox.iter().map(|&(_, x)| x).collect();
            self.seen.sort_unstable();
            self.done = true;
            vec![]
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Vec<u64> {
            self.seen.clone()
        }
    }

    #[test]
    fn one_round_neighbor_exchange() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let run = run_local(&g, &[10, 20, 30], 5, |_| CollectNeighbors {
            seen: vec![],
            done: false,
        });
        assert!(run.completed);
        assert_eq!(run.rounds, 1);
        assert_eq!(run.outputs[0], vec![20]);
        assert_eq!(run.outputs[1], vec![10, 30]);
        assert_eq!(run.outputs[2], vec![20]);
        // 3 broadcasts over degrees 1, 2, 1 = 4 messages
        assert_eq!(run.messages, 4);
    }

    /// Never terminates: used to exercise the round limit.
    struct Chatter;
    impl NodeProgram for Chatter {
        type Msg = ();
        type Output = ();
        fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, ())> {
            vec![(BROADCAST, ())]
        }
        fn round(&mut self, _ctx: &NodeContext, _inbox: &[(usize, ())]) -> Vec<(usize, ())> {
            vec![(BROADCAST, ())]
        }
        fn is_done(&self) -> bool {
            false
        }
        fn output(&self) {}
    }

    #[test]
    fn round_limit_stops_runaway_programs() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let run = run_local(&g, &[0, 1], 7, |_| Chatter);
        assert!(!run.completed);
        assert_eq!(run.rounds, 7);
    }

    /// Zero-round program: decides at init.
    struct ZeroRound;
    impl NodeProgram for ZeroRound {
        type Msg = ();
        type Output = u64;
        fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, ())> {
            vec![]
        }
        fn round(&mut self, _ctx: &NodeContext, _inbox: &[(usize, ())]) -> Vec<(usize, ())> {
            vec![]
        }
        fn is_done(&self) -> bool {
            true
        }
        fn output(&self) -> u64 {
            7
        }
    }

    #[test]
    fn zero_round_algorithms_cost_zero_rounds() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let run = run_local(&g, &[0, 1], 10, |_| ZeroRound);
        assert!(run.completed);
        assert_eq!(run.rounds, 0);
        assert_eq!(run.messages, 0);
        assert_eq!(run.outputs, vec![7, 7]);
    }

    /// Sends on a specific port and checks the receiving port tag.
    struct PortEcho {
        got: Option<(usize, u64)>,
        done: bool,
    }
    impl NodeProgram for PortEcho {
        type Msg = u64;
        type Output = Option<(usize, u64)>;
        fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
            if ctx.id == 0 && ctx.degree > 1 {
                vec![(1, 99)] // send to second port only
            } else {
                vec![]
            }
        }
        fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
            if let Some(&(p, m)) = inbox.first() {
                self.got = Some((p, m));
            }
            self.done = true;
            vec![]
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<(usize, u64)> {
            self.got
        }
    }

    #[test]
    fn port_addressing_and_tagging() {
        // triangle; node 0 sends to its port 1 = neighbor 2
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let run = run_local(&g, &[0, 1, 2], 5, |_| PortEcho {
            got: None,
            done: false,
        });
        assert_eq!(run.outputs[1], None);
        // node 2's neighbors are [0, 1]; port towards 0 is 0
        assert_eq!(run.outputs[2], Some((0, 99)));
        assert_eq!(run.messages, 1);
    }

    #[test]
    #[should_panic(expected = "invalid port")]
    fn invalid_port_panics() {
        struct BadPort;
        impl NodeProgram for BadPort {
            type Msg = ();
            type Output = ();
            fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, ())> {
                vec![(5, ())]
            }
            fn round(&mut self, _ctx: &NodeContext, _inbox: &[(usize, ())]) -> Vec<(usize, ())> {
                vec![]
            }
            fn is_done(&self) -> bool {
                false
            }
            fn output(&self) {}
        }
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let _ = run_local(&g, &[0, 1], 5, |_| BadPort);
    }
}
