//! The synchronous LOCAL model executor.
//!
//! The LOCAL model [Linial '92; Peleg '00] is a synchronous message-passing
//! model: in every round each node may send an arbitrarily large message to
//! each neighbor, receive the messages of its neighbors, and update its
//! state. Complexity is the number of rounds. This executor runs one
//! [`NodeProgram`] instance per node, delivers messages along the edges of a
//! [`Graph`], and reports measured rounds and message counts.
//!
//! Ports: node `u`'s ports are `0..degree(u)`; port `p` leads to
//! `graph.neighbors(u)[p]`. Incoming messages are tagged with the
//! *receiver's* port towards the sender, so programs can reason purely in
//! terms of their local port numbering (no global indices needed), exactly
//! as in the formal model.

use splitgraph::Graph;

/// Port number that broadcasts a message to every neighbor.
pub const BROADCAST: usize = usize::MAX;

/// Static knowledge available to a node at wake-up: its unique ID, its
/// degree, and the global parameter `n` (standard in the LOCAL model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeContext {
    /// Simulator index of the node (stable across the run; programs should
    /// treat it as opaque — distributed logic must use `id`).
    pub node: usize,
    /// The node's unique identifier.
    pub id: u64,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// Number of nodes in the network.
    pub n: usize,
}

/// A per-node program for the LOCAL executor.
///
/// The executor calls [`NodeProgram::init`] once (round 0, no inbox), then
/// repeatedly [`NodeProgram::round`] with the messages received that round,
/// until every node reports [`NodeProgram::is_done`] or the round limit is
/// hit. Messages are `(port, message)` pairs; use [`BROADCAST`] as the port
/// to send to all neighbors.
pub trait NodeProgram {
    /// Message type exchanged with neighbors.
    type Msg: Clone;
    /// Final output of a node.
    type Output;

    /// Round-0 initialization; returns the messages to deliver in round 1.
    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, Self::Msg)>;

    /// One synchronous round: receives `(port, message)` pairs sent by
    /// neighbors in the previous round, returns messages for the next round.
    fn round(&mut self, ctx: &NodeContext, inbox: &[(usize, Self::Msg)])
        -> Vec<(usize, Self::Msg)>;

    /// Whether this node has terminated (done nodes no longer act; messages
    /// addressed to them are dropped).
    fn is_done(&self) -> bool;

    /// The node's output, read after the run completes.
    fn output(&self) -> Self::Output;
}

/// Result of a LOCAL execution.
#[derive(Debug, Clone)]
pub struct LocalRun<O> {
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<O>,
    /// Number of message-passing rounds executed (round 0 init is free).
    pub rounds: usize,
    /// Total messages delivered (a broadcast counts once per neighbor).
    pub messages: usize,
    /// Whether all nodes terminated before the round limit.
    pub completed: bool,
}

/// Runs one [`NodeProgram`] per node of `g` for at most `max_rounds` rounds.
///
/// `make` constructs the program for each node from its [`NodeContext`].
///
/// # Panics
///
/// Panics if `ids.len() != g.node_count()` or a program sends to an invalid
/// port.
///
/// # Examples
///
/// Flood the maximum ID through a path (takes `n − 1 = 3` rounds):
///
/// ```
/// use local_runtime::{run_local, NodeContext, NodeProgram, BROADCAST};
/// use splitgraph::Graph;
///
/// struct MaxId {
///     best: u64,
///     rounds_left: usize,
/// }
/// impl NodeProgram for MaxId {
///     type Msg = u64;
///     type Output = u64;
///     fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
///         self.best = ctx.id;
///         self.rounds_left = ctx.n - 1; // the diameter certainly is smaller
///         vec![(BROADCAST, self.best)]
///     }
///     fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
///         let incoming = inbox.iter().map(|&(_, x)| x).max().unwrap_or(0);
///         let changed = incoming > self.best;
///         self.best = self.best.max(incoming);
///         self.rounds_left -= 1;
///         if changed { vec![(BROADCAST, self.best)] } else { vec![] }
///     }
///     fn is_done(&self) -> bool {
///         self.rounds_left == 0
///     }
///     fn output(&self) -> u64 {
///         self.best
///     }
/// }
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let run = run_local(&g, &[9, 2, 5, 1], 100, |_| MaxId { best: 0, rounds_left: 1 });
/// assert!(run.completed);
/// assert_eq!(run.rounds, 3);
/// assert!(run.outputs.iter().all(|&x| x == 9));
/// ```
pub fn run_local<P: NodeProgram>(
    g: &Graph,
    ids: &[u64],
    max_rounds: usize,
    make: impl FnMut(&NodeContext) -> P,
) -> LocalRun<P::Output> {
    let n = g.node_count();
    assert_eq!(ids.len(), n, "id vector length mismatch");

    // port of v towards u, aligned with g.neighbors(v)
    let port_towards = |v: usize, u: usize| -> usize {
        g.neighbors(v)
            .binary_search(&u)
            .expect("port lookup of non-neighbor")
    };

    let contexts: Vec<NodeContext> = (0..n)
        .map(|v| NodeContext {
            node: v,
            id: ids[v],
            degree: g.degree(v),
            n,
        })
        .collect();
    let mut programs: Vec<P> = contexts.iter().map(make).collect();

    let mut messages = 0usize;
    // inboxes[v] = (port of v, msg)
    let mut inboxes: Vec<Vec<(usize, P::Msg)>> = vec![Vec::new(); n];

    let deliver = |v: usize,
                   out: Vec<(usize, P::Msg)>,
                   inboxes: &mut Vec<Vec<(usize, P::Msg)>>,
                   messages: &mut usize| {
        for (port, msg) in out {
            if port == BROADCAST {
                for &u in g.neighbors(v) {
                    inboxes[u].push((port_towards(u, v), msg.clone()));
                    *messages += 1;
                }
            } else {
                assert!(port < g.degree(v), "node {v} sent to invalid port {port}");
                let u = g.neighbors(v)[port];
                inboxes[u].push((port_towards(u, v), msg.clone()));
                *messages += 1;
            }
        }
    };

    for v in 0..n {
        let out = programs[v].init(&contexts[v]);
        deliver(v, out, &mut inboxes, &mut messages);
    }

    let mut rounds = 0usize;
    let mut completed = programs.iter().all(NodeProgram::is_done);
    while !completed && rounds < max_rounds {
        let taken: Vec<Vec<(usize, P::Msg)>> = std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
        for (v, inbox) in taken.into_iter().enumerate() {
            if programs[v].is_done() {
                continue; // dropped: terminated nodes no longer act
            }
            let out = programs[v].round(&contexts[v], &inbox);
            deliver(v, out, &mut inboxes, &mut messages);
        }
        rounds += 1;
        completed = programs.iter().all(NodeProgram::is_done);
    }

    LocalRun {
        outputs: programs.iter().map(NodeProgram::output).collect(),
        rounds,
        messages,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node outputs the multiset of neighbor IDs it saw in round 1.
    struct CollectNeighbors {
        seen: Vec<u64>,
        done: bool,
    }

    impl NodeProgram for CollectNeighbors {
        type Msg = u64;
        type Output = Vec<u64>;
        fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
            vec![(BROADCAST, ctx.id)]
        }
        fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
            self.seen = inbox.iter().map(|&(_, x)| x).collect();
            self.seen.sort_unstable();
            self.done = true;
            vec![]
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Vec<u64> {
            self.seen.clone()
        }
    }

    #[test]
    fn one_round_neighbor_exchange() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let run = run_local(&g, &[10, 20, 30], 5, |_| CollectNeighbors {
            seen: vec![],
            done: false,
        });
        assert!(run.completed);
        assert_eq!(run.rounds, 1);
        assert_eq!(run.outputs[0], vec![20]);
        assert_eq!(run.outputs[1], vec![10, 30]);
        assert_eq!(run.outputs[2], vec![20]);
        // 3 broadcasts over degrees 1, 2, 1 = 4 messages
        assert_eq!(run.messages, 4);
    }

    /// Never terminates: used to exercise the round limit.
    struct Chatter;
    impl NodeProgram for Chatter {
        type Msg = ();
        type Output = ();
        fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, ())> {
            vec![(BROADCAST, ())]
        }
        fn round(&mut self, _ctx: &NodeContext, _inbox: &[(usize, ())]) -> Vec<(usize, ())> {
            vec![(BROADCAST, ())]
        }
        fn is_done(&self) -> bool {
            false
        }
        fn output(&self) {}
    }

    #[test]
    fn round_limit_stops_runaway_programs() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let run = run_local(&g, &[0, 1], 7, |_| Chatter);
        assert!(!run.completed);
        assert_eq!(run.rounds, 7);
    }

    /// Zero-round program: decides at init.
    struct ZeroRound;
    impl NodeProgram for ZeroRound {
        type Msg = ();
        type Output = u64;
        fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, ())> {
            vec![]
        }
        fn round(&mut self, _ctx: &NodeContext, _inbox: &[(usize, ())]) -> Vec<(usize, ())> {
            vec![]
        }
        fn is_done(&self) -> bool {
            true
        }
        fn output(&self) -> u64 {
            7
        }
    }

    #[test]
    fn zero_round_algorithms_cost_zero_rounds() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let run = run_local(&g, &[0, 1], 10, |_| ZeroRound);
        assert!(run.completed);
        assert_eq!(run.rounds, 0);
        assert_eq!(run.messages, 0);
        assert_eq!(run.outputs, vec![7, 7]);
    }

    /// Sends on a specific port and checks the receiving port tag.
    struct PortEcho {
        got: Option<(usize, u64)>,
        done: bool,
    }
    impl NodeProgram for PortEcho {
        type Msg = u64;
        type Output = Option<(usize, u64)>;
        fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
            if ctx.id == 0 && ctx.degree > 1 {
                vec![(1, 99)] // send to second port only
            } else {
                vec![]
            }
        }
        fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
            if let Some(&(p, m)) = inbox.first() {
                self.got = Some((p, m));
            }
            self.done = true;
            vec![]
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<(usize, u64)> {
            self.got
        }
    }

    #[test]
    fn port_addressing_and_tagging() {
        // triangle; node 0 sends to its port 1 = neighbor 2
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let run = run_local(&g, &[0, 1, 2], 5, |_| PortEcho {
            got: None,
            done: false,
        });
        assert_eq!(run.outputs[1], None);
        // node 2's neighbors are [0, 1]; port towards 0 is 0
        assert_eq!(run.outputs[2], Some((0, 99)));
        assert_eq!(run.messages, 1);
    }

    #[test]
    #[should_panic(expected = "invalid port")]
    fn invalid_port_panics() {
        struct BadPort;
        impl NodeProgram for BadPort {
            type Msg = ();
            type Output = ();
            fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, ())> {
                vec![(5, ())]
            }
            fn round(&mut self, _ctx: &NodeContext, _inbox: &[(usize, ())]) -> Vec<(usize, ())> {
                vec![]
            }
            fn is_done(&self) -> bool {
                false
            }
            fn output(&self) {}
        }
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let _ = run_local(&g, &[0, 1], 5, |_| BadPort);
    }
}
