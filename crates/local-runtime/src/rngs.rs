//! Per-node randomness.
//!
//! Randomized LOCAL algorithms give each node an independent random bit
//! string. [`NodeRngs`] derives a deterministic, independent-looking stream
//! per `(node, phase)` pair from a single master seed via SplitMix64, so
//! whole experiment sweeps are reproducible from one seed and a node's
//! stream does not depend on the execution order of other nodes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: a high-quality 64-bit mixer (public-domain constants of
/// Steele, Lea & Flood).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Factory for deterministic per-node RNG streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRngs {
    master: u64,
}

impl NodeRngs {
    /// Creates a factory from a master seed.
    pub fn new(master: u64) -> Self {
        NodeRngs { master }
    }

    /// RNG for `node` in `phase`. The same `(node, phase)` always yields the
    /// same stream; distinct pairs yield decorrelated streams.
    ///
    /// # Examples
    ///
    /// ```
    /// use local_runtime::NodeRngs;
    /// use rand::RngExt;
    ///
    /// let rngs = NodeRngs::new(42);
    /// let a: u64 = rngs.rng(3, 0).random();
    /// let b: u64 = rngs.rng(3, 0).random();
    /// assert_eq!(a, b); // reproducible
    /// let c: u64 = rngs.rng(4, 0).random();
    /// assert_ne!(a, c); // decorrelated across nodes
    /// ```
    pub fn rng(&self, node: usize, phase: u64) -> StdRng {
        let mixed = splitmix64(
            splitmix64(self.master ^ (node as u64).wrapping_mul(0xA24B_AED4_963E_E407))
                ^ phase.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        StdRng::seed_from_u64(mixed)
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// A derived factory for a sub-experiment, decorrelated from this one.
    pub fn derive(&self, stream: u64) -> NodeRngs {
        NodeRngs {
            master: splitmix64(self.master ^ splitmix64(stream)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // avalanche sanity: flipping one input bit flips many output bits
        let d = (splitmix64(7) ^ splitmix64(7 ^ 1)).count_ones();
        assert!(d > 10, "poor avalanche: {d} bits");
    }

    #[test]
    fn node_streams_reproducible() {
        let f = NodeRngs::new(123);
        let xs: Vec<u32> = (0..8).map(|_| f.rng(5, 2).random()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn phases_decorrelate() {
        let f = NodeRngs::new(123);
        let a: u64 = f.rng(5, 0).random();
        let b: u64 = f.rng(5, 1).random();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_changes_streams() {
        let f = NodeRngs::new(9);
        let g = f.derive(1);
        assert_ne!(f.master(), g.master());
        let a: u64 = f.rng(0, 0).random();
        let b: u64 = g.rng(0, 0).random();
        assert_ne!(a, b);
    }

    #[test]
    fn many_nodes_distinct_first_draws() {
        let f = NodeRngs::new(7);
        let mut draws: Vec<u64> = (0..1000).map(|v| f.rng(v, 0).random()).collect();
        draws.sort_unstable();
        draws.dedup();
        assert_eq!(draws.len(), 1000);
    }
}
