//! The SLOCAL model executor (Ghaffari, Kuhn, Maus; STOC '17).
//!
//! In an `SLOCAL(t)` algorithm the nodes are processed in an *arbitrary*
//! sequential order; when processed, a node reads the current state of its
//! `t`-hop neighborhood (including outputs already committed by earlier
//! nodes there) and irrevocably writes its own state. The derandomization
//! results the paper builds on ([GHK16]) produce SLOCAL(2) algorithms which
//! are then compiled to LOCAL via distance colorings.
//!
//! The executor *enforces locality*: the view handed to the callback panics
//! if the callback reads a node outside the declared radius, so an algorithm
//! validated here provably is an SLOCAL(t) algorithm.

use splitgraph::Graph;
use std::collections::VecDeque;

/// Read access to the states within radius `t` of the node being processed.
#[derive(Debug)]
pub struct SLocalView<'a, S> {
    center: usize,
    graph: &'a Graph,
    states: &'a [S],
    /// sorted node list within the radius
    in_range: &'a [usize],
}

impl<'a, S> SLocalView<'a, S> {
    /// The node currently being processed.
    pub fn center(&self) -> usize {
        self.center
    }

    /// The host graph (topology is assumed globally known up to radius; the
    /// paper's algorithms only inspect edges within the view).
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Whether `w` lies within the declared radius of the center.
    pub fn contains(&self, w: usize) -> bool {
        self.in_range.binary_search(&w).is_ok()
    }

    /// Nodes within the radius, sorted ascending.
    pub fn nodes_in_range(&self) -> &'a [usize] {
        self.in_range
    }

    /// Current state of `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` lies outside the declared radius — this is the locality
    /// enforcement that certifies the algorithm as SLOCAL(t).
    pub fn state(&self, w: usize) -> &S {
        assert!(
            self.contains(w),
            "SLOCAL locality violation: node {w} outside radius of {}",
            self.center
        );
        &self.states[w]
    }
}

/// Runs an SLOCAL(`radius`) algorithm over `g` in the given processing
/// `order`, starting from `init` states. The callback receives each node and
/// its radius-limited view and returns the node's new state.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n` or `init.len() != n`.
///
/// # Examples
///
/// Sequential greedy coloring is SLOCAL(1):
///
/// ```
/// use local_runtime::run_slocal;
/// use splitgraph::{checks, Graph};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let order: Vec<usize> = (0..4).collect();
/// let colors = run_slocal(&g, &order, 1, vec![u32::MAX; 4], |v, view| {
///     let mut used: Vec<u32> = view
///         .graph()
///         .neighbors(v)
///         .iter()
///         .map(|&w| *view.state(w))
///         .filter(|&c| c != u32::MAX)
///         .collect();
///     used.sort_unstable();
///     (0..).find(|c| !used.contains(c)).unwrap()
/// });
/// assert!(checks::is_proper_coloring(&g, &colors));
/// ```
pub fn run_slocal<S, F>(
    g: &Graph,
    order: &[usize],
    radius: usize,
    init: Vec<S>,
    mut process: F,
) -> Vec<S>
where
    F: FnMut(usize, &SLocalView<'_, S>) -> S,
{
    let n = g.node_count();
    assert_eq!(init.len(), n, "initial state length mismatch");
    {
        let mut seen = vec![false; n];
        assert_eq!(order.len(), n, "order must cover every node");
        for &v in order {
            assert!(v < n && !seen[v], "order must be a permutation of 0..n");
            seen[v] = true;
        }
    }
    let mut states = init;
    let mut dist = vec![usize::MAX; n];
    for &v in order {
        // collect radius-ball around v
        let mut in_range = vec![v];
        dist[v] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            if dist[x] == radius {
                continue;
            }
            for &y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = dist[x] + 1;
                    in_range.push(y);
                    queue.push_back(y);
                }
            }
        }
        in_range.sort_unstable();
        let new_state = {
            let view = SLocalView {
                center: v,
                graph: g,
                states: &states,
                in_range: &in_range,
            };
            process(v, &view)
        };
        states[v] = new_state;
        for &w in &in_range {
            dist[w] = usize::MAX;
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_contains_exactly_radius_ball() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let order = [2, 0, 1, 3, 4];
        run_slocal(&g, &order, 2, vec![(); 5], |v, view| {
            if v == 2 {
                assert_eq!(view.nodes_in_range(), &[0, 1, 2, 3, 4]);
            }
            if v == 0 {
                assert_eq!(view.nodes_in_range(), &[0, 1, 2]);
                assert!(!view.contains(3));
            }
        });
    }

    #[test]
    #[should_panic(expected = "locality violation")]
    fn reading_outside_radius_panics() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let order = [0, 1, 2, 3];
        run_slocal(&g, &order, 1, vec![0u32; 4], |v, view| {
            if v == 0 {
                let _ = view.state(3); // distance 3 > radius 1
            }
            0
        });
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_order_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        run_slocal(&g, &[0, 0], 1, vec![(); 2], |_, _| {});
    }

    #[test]
    fn later_nodes_see_earlier_outputs() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let order = [0, 1, 2];
        // each node records 1 + max of already-decided neighbors
        let states = run_slocal(&g, &order, 1, vec![0u32; 3], |v, view| {
            1 + view
                .graph()
                .neighbors(v)
                .iter()
                .map(|&w| *view.state(w))
                .max()
                .unwrap_or(0)
        });
        assert_eq!(states, vec![1, 2, 3]);
    }

    #[test]
    fn radius_zero_sees_only_self() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        run_slocal(&g, &[1, 0], 0, vec![(); 2], |v, view| {
            assert_eq!(view.nodes_in_range(), &[v]);
            assert_eq!(view.center(), v);
        });
    }
}
