//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] carries a cancel flag and an optional deadline.
//! Code that wants to be cancellable runs under [`with_token`] and
//! sprinkles [`checkpoint`] calls at natural boundaries (executor
//! round tops, fixer commit strides). When the active token is
//! cancelled — explicitly or because its deadline passed — the next
//! checkpoint unwinds back to `with_token`, which returns
//! [`Cancelled`] instead of a result.
//!
//! Checkpoints are bit-neutral: they never touch the computation's
//! state, so installing no token (the default) leaves every output
//! byte-identical to a build without checkpoints. The unwind is a
//! normal panic carrying a private sentinel; `with_token` catches only
//! that sentinel and resumes any other panic untouched.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The error returned by [`with_token`] when the computation was
/// abandoned at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("computation cancelled at a checkpoint")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation handle: clone it freely, cancel it from any
/// thread, and the computation running under [`with_token`] observes
/// the request at its next [`checkpoint`].
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation; the running computation stops at its
    /// next checkpoint.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled or its deadline passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previously active token even if `f` unwinds.
struct Restore(Option<CancelToken>);

impl Drop for Restore {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = self.0.take());
    }
}

/// Runs `f` with `token` installed as the calling thread's active
/// token. Checkpoints inside `f` (on this thread) observe the token;
/// if one trips, `f` is abandoned and `Err(Cancelled)` is returned.
/// Panics other than the cancellation sentinel propagate unchanged,
/// and the previously active token (if any) is restored either way.
///
/// # Errors
///
/// Returns [`Cancelled`] when the computation was abandoned at a
/// checkpoint because `token` was cancelled or its deadline passed.
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> Result<R, Cancelled> {
    let previous = ACTIVE.with(|a| a.borrow_mut().replace(token.clone()));
    let _restore = Restore(previous);
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => match payload.downcast::<Cancelled>() {
            Ok(_) => Err(Cancelled),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Cancellation checkpoint: if the calling thread runs under
/// [`with_token`] and that token is cancelled (or past its deadline),
/// unwinds back to `with_token`. A no-op — one thread-local read —
/// when no token is installed, so checkpoints are free to leave in
/// hot loops and never perturb results.
pub fn checkpoint() {
    let tripped = ACTIVE.with(|a| a.borrow().as_ref().is_some_and(CancelToken::is_cancelled));
    if tripped {
        std::panic::panic_any(Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn checkpoint_is_a_no_op_without_a_token() {
        checkpoint();
        let out = with_token(&CancelToken::new(), || {
            checkpoint();
            7
        });
        assert_eq!(out, Ok(7));
    }

    #[test]
    fn cancel_unwinds_at_the_next_checkpoint() {
        let token = CancelToken::new();
        token.cancel();
        let mut reached = false;
        let out = with_token(&token, || {
            checkpoint();
            reached = true;
        });
        assert_eq!(out, Err(Cancelled));
        assert!(!reached, "checkpoint must fire before later statements");
    }

    #[test]
    fn past_deadline_trips_without_an_explicit_cancel() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        let out = with_token(&token, || {
            checkpoint();
        });
        assert_eq!(out, Err(Cancelled));
    }

    #[test]
    fn cancellation_from_another_thread_is_observed() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            remote.cancel();
        });
        let out = with_token(&token, || loop {
            checkpoint();
            std::thread::sleep(Duration::from_millis(1));
        });
        handle.join().expect("canceller joins");
        assert_eq!(out, Err(Cancelled));
    }

    #[test]
    fn previous_token_is_restored_after_nested_use() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        inner.cancel();
        let out = with_token(&outer, || {
            let nested = with_token(&inner, checkpoint);
            assert_eq!(nested, Err(Cancelled));
            // the outer token is live again and not cancelled
            checkpoint();
            "ok"
        });
        assert_eq!(out, Ok("ok"));
    }

    #[test]
    fn foreign_panics_pass_through_unchanged() {
        let token = CancelToken::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = with_token(&token, || panic!("boom"));
        }));
        let payload = caught.expect_err("panic propagates");
        let text = payload.downcast_ref::<&str>().copied();
        assert_eq!(text, Some("boom"));
    }
}
