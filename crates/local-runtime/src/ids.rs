//! Unique-identifier assignments.
//!
//! LOCAL lower bounds and algorithms are sensitive to the ID space: Linial's
//! coloring consumes IDs from a polynomial range, and the Section 2.5
//! reduction orients edges by ID comparisons. These strategies make the
//! choice explicit and reproducible.

use crate::rngs::splitmix64;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Strategy for assigning unique IDs to the `n` nodes of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdAssignment {
    /// `ids[v] = v`: the adversary-friendliest deterministic choice.
    Sequential,
    /// A random permutation of `0..n`, seeded for reproducibility.
    Shuffled(u64),
    /// IDs spread over a polynomial range (`v ↦ v² + v + 1`), exercising
    /// algorithms that must cope with IDs much larger than `n`.
    PolynomialSpread,
}

impl IdAssignment {
    /// Produces the ID vector for `n` nodes. IDs are guaranteed unique.
    ///
    /// # Examples
    ///
    /// ```
    /// use local_runtime::IdAssignment;
    ///
    /// let ids = IdAssignment::Sequential.assign(4);
    /// assert_eq!(ids, vec![0, 1, 2, 3]);
    /// let spread = IdAssignment::PolynomialSpread.assign(3);
    /// assert_eq!(spread, vec![1, 3, 7]);
    /// ```
    pub fn assign(&self, n: usize) -> Vec<u64> {
        match *self {
            IdAssignment::Sequential => (0..n as u64).collect(),
            IdAssignment::Shuffled(seed) => {
                let mut ids: Vec<u64> = (0..n as u64).collect();
                let mut rng = StdRng::seed_from_u64(splitmix64(seed));
                ids.shuffle(&mut rng);
                ids
            }
            IdAssignment::PolynomialSpread => (0..n as u64).map(|v| v * v + v + 1).collect(),
        }
    }

    /// Upper bound on the assigned ID values plus one (the "ID space size"
    /// parameter consumed by Linial-style algorithms).
    pub fn space_size(&self, n: usize) -> u64 {
        match *self {
            IdAssignment::Sequential | IdAssignment::Shuffled(_) => n as u64,
            IdAssignment::PolynomialSpread => {
                let v = n.saturating_sub(1) as u64;
                v * v + v + 2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_unique(ids: &[u64]) -> bool {
        let mut s = ids.to_vec();
        s.sort_unstable();
        s.dedup();
        s.len() == ids.len()
    }

    #[test]
    fn sequential_ids() {
        let ids = IdAssignment::Sequential.assign(5);
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(IdAssignment::Sequential.space_size(5), 5);
    }

    #[test]
    fn shuffled_is_permutation_and_seeded() {
        let a = IdAssignment::Shuffled(3).assign(100);
        let b = IdAssignment::Shuffled(3).assign(100);
        let c = IdAssignment::Shuffled(4).assign(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(all_unique(&a));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn polynomial_spread_unique_and_within_space() {
        let ids = IdAssignment::PolynomialSpread.assign(50);
        assert!(all_unique(&ids));
        let space = IdAssignment::PolynomialSpread.space_size(50);
        assert!(ids.iter().all(|&x| x < space));
    }

    #[test]
    fn empty_assignment() {
        assert!(IdAssignment::Sequential.assign(0).is_empty());
        assert!(IdAssignment::Shuffled(1).assign(0).is_empty());
    }
}
