//! # local-runtime — LOCAL and SLOCAL model simulators
//!
//! Round-accurate simulation infrastructure for the reproduction of
//! *"On the Complexity of Distributed Splitting Problems"* (PODC 2019):
//!
//! * [`run_local`] executes one [`NodeProgram`] per node of a
//!   [`splitgraph::Graph`] under the synchronous LOCAL model, measuring
//!   rounds and messages; [`run_local_parallel`] is its opt-in,
//!   bit-identical multi-threaded round step;
//! * [`run_slocal`] executes sequential-local (SLOCAL) algorithms with
//!   *enforced* read radius — the model in which the paper's
//!   derandomization arguments live;
//! * [`RoundLedger`] keeps measured and charged (cited-formula) round costs
//!   separate and labelled;
//! * [`NodeRngs`] derives reproducible independent randomness per node;
//! * [`IdAssignment`] controls the unique-identifier space;
//! * [`CancelToken`] + [`with_token`] + [`checkpoint`] provide
//!   cooperative, deadline-aware cancellation of long solves without
//!   perturbing results when unused.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cancel;
mod ids;
mod local;
mod metrics;
mod rngs;
mod slocal;

pub use cancel::{checkpoint, with_token, CancelToken, Cancelled};
pub use ids::IdAssignment;
pub use local::{run_local, run_local_parallel, LocalRun, NodeContext, NodeProgram, BROADCAST};
pub use metrics::{CostKind, LedgerEntry, RoundLedger};
pub use rngs::{splitmix64, NodeRngs};
pub use slocal::{run_slocal, SLocalView};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::RoundLedger>();
        assert_send_sync::<super::NodeRngs>();
        assert_send_sync::<super::IdAssignment>();
        assert_send_sync::<super::NodeContext>();
    }
}
