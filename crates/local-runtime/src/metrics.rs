//! Round accounting.
//!
//! Composite algorithms in the paper chain genuinely distributed phases with
//! cited black-box subroutines (e.g., the degree-splitting of Theorem 2.3).
//! The [`RoundLedger`] keeps the two kinds of cost separate and labelled so
//! experiments can report *measured* rounds (executed in the simulator) and
//! *charged* rounds (the cited theorem's formula) without mixing them.

use std::fmt;

/// Whether a ledger entry was measured in the simulator or charged from a
/// cited complexity formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Rounds executed by the LOCAL simulator.
    Measured,
    /// Rounds charged according to a cited theorem's complexity formula.
    Charged,
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostKind::Measured => write!(f, "measured"),
            CostKind::Charged => write!(f, "charged"),
        }
    }
}

/// One accounted phase of an algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Human-readable phase label (e.g., `"degree splitting (Thm 2.3)"`).
    pub label: String,
    /// Round cost of the phase.
    pub rounds: f64,
    /// Whether the cost was measured or charged.
    pub kind: CostKind,
}

/// Accumulated round costs of a (possibly composite) distributed algorithm.
///
/// # Examples
///
/// ```
/// use local_runtime::RoundLedger;
///
/// let mut ledger = RoundLedger::new();
/// ledger.add_measured("shattering", 2.0);
/// ledger.add_charged("degree splitting (Thm 2.3)", 128.0);
/// assert_eq!(ledger.measured_total(), 2.0);
/// assert_eq!(ledger.charged_total(), 128.0);
/// assert_eq!(ledger.total(), 130.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundLedger {
    entries: Vec<LedgerEntry>,
}

impl RoundLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Records a phase whose rounds were executed by the simulator.
    pub fn add_measured(&mut self, label: impl Into<String>, rounds: f64) {
        self.entries.push(LedgerEntry {
            label: label.into(),
            rounds,
            kind: CostKind::Measured,
        });
    }

    /// Records a phase whose rounds are charged from a cited formula.
    pub fn add_charged(&mut self, label: impl Into<String>, rounds: f64) {
        self.entries.push(LedgerEntry {
            label: label.into(),
            rounds,
            kind: CostKind::Charged,
        });
    }

    /// Appends all entries of `other`.
    pub fn merge(&mut self, other: RoundLedger) {
        self.entries.extend(other.entries);
    }

    /// Appends all entries of `other` with a prefix on each label.
    pub fn merge_prefixed(&mut self, prefix: &str, other: RoundLedger) {
        for mut e in other.entries {
            e.label = format!("{prefix}: {}", e.label);
            self.entries.push(e);
        }
    }

    /// All recorded entries, in insertion order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Sum of measured rounds.
    pub fn measured_total(&self) -> f64 {
        self.sum(CostKind::Measured)
    }

    /// Sum of charged rounds.
    pub fn charged_total(&self) -> f64 {
        self.sum(CostKind::Charged)
    }

    /// Sum of all rounds (measured + charged).
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|e| e.rounds).sum()
    }

    fn sum(&self, kind: CostKind) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.rounds)
            .sum()
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "round ledger ({} entries):", self.entries.len())?;
        for e in &self.entries {
            writeln!(f, "  [{}] {}: {:.1}", e.kind, e.label, e.rounds)?;
        }
        write!(
            f,
            "  total: {:.1} ({:.1} measured + {:.1} charged)",
            self.total(),
            self.measured_total(),
            self.charged_total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_sums_to_zero() {
        let l = RoundLedger::new();
        assert_eq!(l.total(), 0.0);
        assert_eq!(l.measured_total(), 0.0);
        assert_eq!(l.charged_total(), 0.0);
        assert!(l.entries().is_empty());
    }

    #[test]
    fn totals_separate_kinds() {
        let mut l = RoundLedger::new();
        l.add_measured("a", 3.0);
        l.add_measured("b", 4.0);
        l.add_charged("c", 100.0);
        assert_eq!(l.measured_total(), 7.0);
        assert_eq!(l.charged_total(), 100.0);
        assert_eq!(l.total(), 107.0);
        assert_eq!(l.entries().len(), 3);
    }

    #[test]
    fn merge_and_prefix() {
        let mut a = RoundLedger::new();
        a.add_measured("x", 1.0);
        let mut b = RoundLedger::new();
        b.add_charged("y", 2.0);
        a.merge_prefixed("phase 1", b.clone());
        a.merge(b);
        assert_eq!(a.entries().len(), 3);
        assert_eq!(a.entries()[1].label, "phase 1: y");
        assert_eq!(a.entries()[2].label, "y");
        assert_eq!(a.total(), 5.0);
    }

    #[test]
    fn display_contains_kinds() {
        let mut l = RoundLedger::new();
        l.add_measured("shatter", 2.0);
        l.add_charged("oracle", 10.0);
        let s = l.to_string();
        assert!(s.contains("[measured] shatter"));
        assert!(s.contains("[charged] oracle"));
        assert!(s.contains("12.0"));
    }
}
