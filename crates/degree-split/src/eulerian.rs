//! Eulerian-orientation reference engine.
//!
//! Pairing up the odd-degree nodes with virtual edges makes every degree
//! even; a traversal that never reuses an edge then decomposes the edge set
//! into closed circuits, and orienting every circuit consistently balances
//! in- and out-degree *exactly* at every node. Dropping the virtual edges
//! costs each odd-degree node at most one unit of discrepancy. The result —
//! discrepancy 0 at even nodes, 1 at odd nodes — is strictly stronger than
//! the `ε·d(v) + 2` contract of Theorem 2.3, which is why this engine serves
//! as the reference implementation of the cited black box.

use splitgraph::csr::Csr;
use splitgraph::{MultiGraph, Orientation};

/// Computes an orientation of `g` with discrepancy 0 at even-degree nodes
/// and 1 at odd-degree nodes (an Eulerian orientation after virtual
/// augmentation).
///
/// # Examples
///
/// ```
/// use degree_split::eulerian_orientation;
/// use splitgraph::MultiGraph;
///
/// let mut g = MultiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 0);
/// let o = eulerian_orientation(&g);
/// assert_eq!(o.max_discrepancy(&g), 0); // all degrees even
/// ```
pub fn eulerian_orientation(g: &MultiGraph) -> Orientation {
    let n = g.node_count();
    let m = g.edge_count();

    // augmented edge list: real edges 0..m, then virtual pairing edges
    let mut endpoints: Vec<(usize, usize)> = (0..m).map(|e| g.endpoints(e)).collect();
    let odd: Vec<usize> = (0..n).filter(|&v| g.degree(v) % 2 == 1).collect();
    debug_assert_eq!(odd.len() % 2, 0, "handshake lemma");
    for pair in odd.chunks_exact(2) {
        endpoints.push((pair[0], pair[1]));
    }
    let total = endpoints.len();

    // flat incidence over the augmented graph (one contiguous buffer)
    let incident = Csr::from_incidence(n, &endpoints);

    // iterative edge-marking traversal: each excursion is a closed circuit
    // (all augmented degrees are even), oriented in traversal direction
    let mut used = vec![false; total];
    let mut ptr = vec![0usize; n];
    let mut towards_second = vec![false; total];
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..n {
        stack.push(start);
        while let Some(&v) = stack.last() {
            // advance past used edges
            let row = incident.row(v);
            let mut advanced = None;
            while ptr[v] < row.len() {
                let e = row[ptr[v]];
                ptr[v] += 1;
                if !used[e] {
                    advanced = Some(e);
                    break;
                }
            }
            match advanced {
                Some(e) => {
                    used[e] = true;
                    let (a, b) = endpoints[e];
                    let w = if a == v { b } else { a };
                    // orient in traversal direction v → w
                    towards_second[e] = a == v;
                    stack.push(w);
                }
                None => {
                    stack.pop();
                }
            }
        }
    }
    debug_assert!(
        used.iter().all(|&u| u),
        "every augmented edge must be traversed"
    );

    towards_second.truncate(m);
    Orientation::new(towards_second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check_discrepancy(g: &MultiGraph) {
        let o = eulerian_orientation(g);
        for v in 0..g.node_count() {
            let bound = g.degree(v) % 2;
            assert!(
                o.discrepancy(g, v) <= bound,
                "node {v} (degree {}) has discrepancy {} > {bound}",
                g.degree(v),
                o.discrepancy(g, v)
            );
        }
    }

    #[test]
    fn cycle_is_perfectly_balanced() {
        let mut g = MultiGraph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        check_discrepancy(&g);
    }

    #[test]
    fn path_has_unit_discrepancy_at_ends() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let o = eulerian_orientation(&g);
        assert_eq!(o.discrepancy(&g, 0), 1);
        assert_eq!(o.discrepancy(&g, 1), 0);
        assert_eq!(o.discrepancy(&g, 2), 0);
        assert_eq!(o.discrepancy(&g, 3), 1);
    }

    #[test]
    fn star_balanced_up_to_parity() {
        let mut g = MultiGraph::new(7);
        for leaf in 1..7 {
            g.add_edge(0, leaf);
        }
        check_discrepancy(&g); // center degree 6 → discrepancy 0
        let o = eulerian_orientation(&g);
        assert_eq!(o.out_degree(&g, 0), 3);
    }

    #[test]
    fn parallel_edges_and_disconnected_components() {
        let mut g = MultiGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        // separate component: a triangle
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        check_discrepancy(&g);
    }

    #[test]
    fn random_multigraphs_meet_parity_bound() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..20 {
            let n = 30;
            let mut g = MultiGraph::new(n);
            let m = 40 + (trial * 13) % 60;
            for _ in 0..m {
                let a = rng.random_range(0..n);
                let mut b = rng.random_range(0..n);
                while b == a {
                    b = rng.random_range(0..n);
                }
                g.add_edge(a, b);
            }
            check_discrepancy(&g);
        }
    }

    #[test]
    fn empty_and_single_edge() {
        let g = MultiGraph::new(3);
        let o = eulerian_orientation(&g);
        assert_eq!(o.edge_count(), 0);
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 1);
        check_discrepancy(&g);
    }
}
