//! Undirected degree splitting (edge 2-coloring), the variant the paper's
//! introduction credits with unlocking deterministic edge coloring
//! [GS17, GHK+17b]: color the edges red/blue so every node has roughly
//! half of each color.
//!
//! Two engines, mirroring the directed case:
//!
//! * **Eulerian engine** — alternate colors along the edge-marking
//!   traversal of the virtually-augmented (all-even) graph. Every visit of
//!   a node consumes one incoming and one outgoing traversal edge with
//!   opposite colors, so discrepancies stay bounded by a small constant
//!   (one per odd circuit plus the virtual-edge parity); rounds are
//!   charged by the Theorem 2.3 formula, as for the directed oracle.
//! * **Walk engine** — alternate colors along pairing walks, restarting
//!   the alternation at ruling-set cuts: each cut at a node can cost 2,
//!   giving the same `≈ ε·d` empirical behavior as the directed walk
//!   engine; rounds measured.

use crate::charge::splitting_rounds_deterministic;
use crate::walks::WalkDecomposition;
use local_coloring::{cole_vishkin_3color, spaced_ruling_set};
use local_runtime::RoundLedger;
use splitgraph::csr::Csr;
use splitgraph::{Color, MultiGraph};

/// Result of an undirected degree splitting.
#[derive(Debug, Clone)]
pub struct EdgeSplitting {
    /// Color per edge id.
    pub colors: Vec<Color>,
    /// Round accounting.
    pub ledger: RoundLedger,
}

impl EdgeSplitting {
    /// Number of red (resp. blue) edges at `v`.
    pub fn color_degree(&self, g: &MultiGraph, v: usize, color: Color) -> usize {
        g.incident_edges(v)
            .iter()
            .filter(|&&e| self.colors[e] == color)
            .count()
    }

    /// `|red(v) − blue(v)|`.
    pub fn discrepancy(&self, g: &MultiGraph, v: usize) -> usize {
        let red = self.color_degree(g, v, Color::Red);
        let blue = g.degree(v) - red;
        red.abs_diff(blue)
    }

    /// Maximum discrepancy over all nodes.
    pub fn max_discrepancy(&self, g: &MultiGraph) -> usize {
        (0..g.node_count())
            .map(|v| self.discrepancy(g, v))
            .max()
            .unwrap_or(0)
    }
}

/// Eulerian-traversal edge 2-coloring: colors alternate along the
/// traversal circuits of the virtually-augmented graph. Rounds charged per
/// Theorem 2.3 with accuracy `eps` (the contract the callers rely on).
///
/// # Panics
///
/// Panics if `g` contains self-loops.
pub fn edge_splitting_eulerian(g: &MultiGraph, eps: f64, n_for_charge: usize) -> EdgeSplitting {
    let n = g.node_count();
    let m = g.edge_count();
    let mut endpoints: Vec<(usize, usize)> = (0..m).map(|e| g.endpoints(e)).collect();
    for &(a, b) in &endpoints {
        assert_ne!(a, b, "self-loops are not supported");
    }
    let odd: Vec<usize> = (0..n).filter(|&v| g.degree(v) % 2 == 1).collect();
    for pair in odd.chunks_exact(2) {
        endpoints.push((pair[0], pair[1]));
    }
    let total = endpoints.len();
    // flat incidence over the augmented graph (no self-loops here, so this
    // matches the old push-per-endpoint lists exactly)
    let incident = Csr::from_incidence(n, &endpoints);
    let mut used = vec![false; total];
    let mut ptr = vec![0usize; n];
    let mut colors = vec![Color::Red; total];
    // iterative traversal; alternate the color along the trail
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..n {
        stack.push(start);
        let mut flip = Color::Red;
        while let Some(&v) = stack.last() {
            let row = incident.row(v);
            let mut advanced = None;
            while ptr[v] < row.len() {
                let e = row[ptr[v]];
                ptr[v] += 1;
                if !used[e] {
                    advanced = Some(e);
                    break;
                }
            }
            match advanced {
                Some(e) => {
                    used[e] = true;
                    colors[e] = flip;
                    flip = flip.flipped();
                    let (a, b) = endpoints[e];
                    let w = if a == v { b } else { a };
                    stack.push(w);
                }
                None => {
                    stack.pop();
                }
            }
        }
    }
    colors.truncate(m);
    let mut ledger = RoundLedger::new();
    ledger.add_charged(
        "undirected degree splitting (Thm 2.3 contract)",
        splitting_rounds_deterministic(eps, n_for_charge),
    );
    EdgeSplitting { colors, ledger }
}

/// Walk-engine edge 2-coloring: alternate along pairing walks, restarting
/// at spaced cuts (`spacing = ⌈1/ε⌉`); rounds measured.
///
/// # Panics
///
/// Panics if `eps` is outside `(0, 1]` or `g` contains self-loops.
pub fn edge_splitting_walk(g: &MultiGraph, eps: f64) -> EdgeSplitting {
    assert!(eps > 0.0 && eps <= 1.0, "accuracy must lie in (0, 1]");
    let spacing = (1.0 / eps).ceil() as usize;
    let mut ledger = RoundLedger::new();
    if g.edge_count() == 0 {
        ledger.add_measured("walk edge splitting (empty graph)", 0.0);
        return EdgeSplitting {
            colors: vec![],
            ledger,
        };
    }
    let walks = WalkDecomposition::from_pairing(g);
    let ids: Vec<u64> = (0..g.edge_count() as u64).collect();
    let coloring = cole_vishkin_3color(&walks.chains, &ids);
    ledger.add_measured(
        "cole-vishkin 3-coloring (host rounds)",
        2.0 * coloring.rounds as f64,
    );
    let cuts = spaced_ruling_set(&walks.chains, &coloring.colors, spacing);
    ledger.add_measured("spaced ruling set (host rounds)", 2.0 * cuts.rounds as f64);

    let mut colors = vec![Color::Red; g.edge_count()];
    let mut assigned = vec![false; g.edge_count()];
    let mut max_segment = 0usize;
    for start in 0..g.edge_count() {
        let is_start = cuts.cut[start] || walks.chains.prev(start).is_none();
        if !is_start || assigned[start] {
            continue;
        }
        let mut cur = start;
        let mut len = 0usize;
        let mut flip = Color::Red;
        loop {
            assigned[cur] = true;
            colors[cur] = flip;
            flip = flip.flipped();
            len += 1;
            match walks.chains.next(cur) {
                Some(nx) if !cuts.cut[nx] && nx != start && !assigned[nx] => cur = nx,
                _ => break,
            }
        }
        max_segment = max_segment.max(len);
    }
    debug_assert!(assigned.iter().all(|&x| x), "every edge must be colored");
    ledger.add_measured(
        "segment alternation (host rounds)",
        2.0 * max_segment.max(1) as f64,
    );
    EdgeSplitting { colors, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_multigraph(n: usize, m: usize, seed: u64) -> MultiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MultiGraph::new(n);
        for _ in 0..m {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn eulerian_engine_small_discrepancy_on_random_graphs() {
        for seed in 0..10 {
            let g = random_multigraph(30, 200, seed);
            let s = edge_splitting_eulerian(&g, 0.1, 30);
            let max = s.max_discrepancy(&g);
            assert!(max <= 4, "discrepancy {max} too large (seed {seed})");
        }
    }

    #[test]
    fn eulerian_engine_on_even_cycle_is_perfect() {
        let mut g = MultiGraph::new(8);
        for i in 0..8 {
            g.add_edge(i, (i + 1) % 8);
        }
        let s = edge_splitting_eulerian(&g, 0.5, 8);
        assert_eq!(s.max_discrepancy(&g), 0);
        let reds = s.colors.iter().filter(|&&c| c == Color::Red).count();
        assert_eq!(reds, 4);
    }

    #[test]
    fn walk_engine_colors_every_edge() {
        let g = random_multigraph(25, 150, 3);
        let s = edge_splitting_walk(&g, 0.125);
        assert_eq!(s.colors.len(), 150);
        // average discrepancy should be far below average degree
        let avg_disc: f64 = (0..25).map(|v| s.discrepancy(&g, v)).sum::<usize>() as f64 / 25.0;
        let avg_deg = 2.0 * 150.0 / 25.0;
        assert!(
            avg_disc < avg_deg / 3.0,
            "avg discrepancy {avg_disc} vs degree {avg_deg}"
        );
    }

    #[test]
    fn ledgers_have_expected_kinds() {
        let g = random_multigraph(20, 60, 5);
        let e = edge_splitting_eulerian(&g, 0.25, 20);
        assert!(e.ledger.charged_total() > 0.0);
        assert_eq!(e.ledger.measured_total(), 0.0);
        let w = edge_splitting_walk(&g, 0.25);
        assert!(w.ledger.measured_total() > 0.0);
        assert_eq!(w.ledger.charged_total(), 0.0);
    }

    #[test]
    fn empty_graph_handled() {
        let g = MultiGraph::new(4);
        let s = edge_splitting_walk(&g, 0.5);
        assert!(s.colors.is_empty());
        assert_eq!(s.max_discrepancy(&g), 0);
    }
}
