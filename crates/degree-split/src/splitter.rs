//! The [`DegreeSplitter`] facade implementing the Theorem 2.3 contract.
//!
//! Both engines produce a [`splitgraph::Orientation`]; they differ in how
//! rounds are accounted:
//!
//! * [`Engine::EulerianOracle`] — the reference engine: discrepancy 0/1 (far
//!   inside the `ε·d + 2` contract), rounds **charged** by the cited
//!   Theorem 2.3 formula (deterministic or randomized flavor).
//! * [`Engine::Walk`] — the genuinely distributed walk-segmentation engine:
//!   discrepancy measured (near `ε·d` on regular inputs), rounds
//!   **measured**.

use crate::charge::{splitting_rounds_deterministic, splitting_rounds_randomized};
use crate::distributed::walk_splitting;
use crate::eulerian::eulerian_orientation;
use local_runtime::RoundLedger;
use splitgraph::{MultiGraph, Orientation};

/// Which implementation performs the splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Eulerian reference engine; rounds charged per Theorem 2.3.
    #[default]
    EulerianOracle,
    /// Distributed walk-segmentation engine; rounds measured.
    Walk,
}

/// Whether the charged formula uses the deterministic or randomized flavor
/// of Theorem 2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Flavor {
    /// `O(ε⁻¹ log ε⁻¹ (log log ε⁻¹)^1.71 · log n)`.
    #[default]
    Deterministic,
    /// `O(ε⁻¹ log ε⁻¹ (log log ε⁻¹)^1.71 · log log n)`.
    Randomized,
}

/// A configured directed-degree-splitting subroutine.
///
/// # Examples
///
/// ```
/// use degree_split::{DegreeSplitter, Engine, Flavor};
/// use splitgraph::MultiGraph;
///
/// let mut g = MultiGraph::new(4);
/// for i in 0..4 {
///     g.add_edge(i, (i + 1) % 4);
/// }
/// let splitter = DegreeSplitter::new(0.25, Engine::EulerianOracle, Flavor::Deterministic);
/// let result = splitter.split(&g, 4);
/// // the contract: discrepancy ≤ ε·d(v) + 2 at every node
/// for v in 0..4 {
///     assert!(result.orientation.discrepancy(&g, v) as f64 <= 0.25 * 2.0 + 2.0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSplitter {
    eps: f64,
    engine: Engine,
    flavor: Flavor,
}

/// A splitting result: the orientation plus its round ledger.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// The computed orientation.
    pub orientation: Orientation,
    /// Round accounting (charged for the oracle, measured for the walk
    /// engine).
    pub ledger: RoundLedger,
}

impl DegreeSplitter {
    /// Creates a splitter with accuracy `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1]`.
    pub fn new(eps: f64, engine: Engine, flavor: Flavor) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "accuracy must lie in (0, 1]");
        DegreeSplitter {
            eps,
            engine,
            flavor,
        }
    }

    /// The configured accuracy.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Splits `g`; `n_for_charge` is the node count entering the charged
    /// complexity formula (the *host* network size, which may exceed
    /// `g.node_count()` when `g` is a derived multigraph).
    pub fn split(&self, g: &MultiGraph, n_for_charge: usize) -> SplitResult {
        match self.engine {
            Engine::EulerianOracle => {
                let orientation = eulerian_orientation(g);
                let mut ledger = RoundLedger::new();
                let rounds = match self.flavor {
                    Flavor::Deterministic => splitting_rounds_deterministic(self.eps, n_for_charge),
                    Flavor::Randomized => splitting_rounds_randomized(self.eps, n_for_charge),
                };
                ledger.add_charged("directed degree splitting (Thm 2.3)", rounds);
                SplitResult {
                    orientation,
                    ledger,
                }
            }
            Engine::Walk => {
                let out = walk_splitting(g, self.eps);
                SplitResult {
                    orientation: out.orientation,
                    ledger: out.ledger,
                }
            }
        }
    }

    /// Verifies the Theorem 2.3 contract `|out(v) − in(v)| ≤ ε·d(v) + 2`
    /// for a computed orientation; returns the violating nodes.
    pub fn contract_violations(&self, g: &MultiGraph, orientation: &Orientation) -> Vec<usize> {
        (0..g.node_count())
            .filter(|&v| orientation.discrepancy(g, v) as f64 > self.eps * g.degree(v) as f64 + 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_multigraph(n: usize, m: usize, seed: u64) -> MultiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MultiGraph::new(n);
        for _ in 0..m {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn oracle_always_meets_contract() {
        for seed in 0..10 {
            let g = random_multigraph(25, 80, seed);
            let s = DegreeSplitter::new(0.1, Engine::EulerianOracle, Flavor::Deterministic);
            let r = s.split(&g, 25);
            assert!(s.contract_violations(&g, &r.orientation).is_empty());
            assert!(r.ledger.charged_total() > 0.0);
            assert_eq!(r.ledger.measured_total(), 0.0);
        }
    }

    #[test]
    fn walk_engine_reports_measured_rounds() {
        let g = random_multigraph(25, 80, 3);
        let s = DegreeSplitter::new(0.2, Engine::Walk, Flavor::Deterministic);
        let r = s.split(&g, 25);
        assert!(r.ledger.measured_total() > 0.0);
        assert_eq!(r.ledger.charged_total(), 0.0);
        assert_eq!(r.orientation.edge_count(), 80);
    }

    #[test]
    fn randomized_flavor_charges_less() {
        let g = random_multigraph(30, 60, 1);
        let det = DegreeSplitter::new(0.1, Engine::EulerianOracle, Flavor::Deterministic)
            .split(&g, 1 << 16);
        let rand =
            DegreeSplitter::new(0.1, Engine::EulerianOracle, Flavor::Randomized).split(&g, 1 << 16);
        assert!(rand.ledger.charged_total() < det.ledger.charged_total());
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn rejects_eps_zero() {
        let _ = DegreeSplitter::new(0.0, Engine::EulerianOracle, Flavor::Deterministic);
    }

    #[test]
    fn contract_violation_detection_works() {
        // a star oriented all-outward violates any reasonable contract
        let mut g = MultiGraph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        let bad = Orientation::new(vec![true; 4]);
        let s = DegreeSplitter::new(0.01, Engine::EulerianOracle, Flavor::Deterministic);
        assert_eq!(s.contract_violations(&g, &bad), vec![0]);
    }
}
