//! The distributed walk-segmentation engine.
//!
//! A genuinely local implementation of the degree-splitting *mechanism*
//! underlying [GHK+17b]: pair incident edges (0 rounds) so the edge set
//! decomposes into walks; 3-color the walks with Cole–Vishkin
//! (`log* + O(1)` rounds); select cut points with spacing `≈ ⌈1/ε⌉` via a
//! greedy ruling set (`O(1/ε)` rounds); orient every segment consistently
//! using only segment-local information (`O(1/ε)` rounds).
//!
//! Per node `v`, the discrepancy is at most `2·(cuts at v's visits) + 1`;
//! cuts carry spacing `> L` along each walk, so on near-regular inputs the
//! engine lands near the `ε·d(v) + 2` contract. Worst-case inputs can
//! concentrate cuts on one node, which is why the Eulerian engine remains
//! the contract-keeping reference — the `abl_engine` experiment quantifies
//! the gap.

use crate::walks::WalkDecomposition;
use local_coloring::{cole_vishkin_3color, spaced_ruling_set};
use local_runtime::RoundLedger;
use splitgraph::{MultiGraph, Orientation};

/// Outcome of the walk-engine splitting.
#[derive(Debug, Clone)]
pub struct WalkSplitting {
    /// The computed orientation.
    pub orientation: Orientation,
    /// Measured walk-graph rounds per phase. Host-graph simulation of a
    /// walk-graph round costs at most 2 host rounds (adjacent walk positions
    /// share a host node); the ledger stores host rounds.
    pub ledger: RoundLedger,
    /// Number of segments the walks were cut into.
    pub segments: usize,
}

/// Runs the walk engine with target accuracy `eps` (cut spacing
/// `L = ⌈1/ε⌉`).
///
/// # Panics
///
/// Panics if `eps` is not in `(0, 1]` or `g` contains self-loops.
pub fn walk_splitting(g: &MultiGraph, eps: f64) -> WalkSplitting {
    assert!(eps > 0.0 && eps <= 1.0, "accuracy must lie in (0, 1]");
    let spacing = (1.0 / eps).ceil() as usize;
    let mut ledger = RoundLedger::new();
    if g.edge_count() == 0 {
        ledger.add_measured("walk engine (empty graph)", 0.0);
        return WalkSplitting {
            orientation: Orientation::new(vec![]),
            ledger,
            segments: 0,
        };
    }

    // 0 rounds: pairing and implied walk structure are local choices
    let walks = WalkDecomposition::from_pairing(g);

    // log* + O(1) walk rounds: Cole–Vishkin over edge positions (edge ids
    // are unique identifiers)
    let ids: Vec<u64> = (0..g.edge_count() as u64).collect();
    let coloring = cole_vishkin_3color(&walks.chains, &ids);
    ledger.add_measured(
        "cole-vishkin 3-coloring (host rounds)",
        2.0 * coloring.rounds as f64,
    );

    // O(L) walk rounds: spaced cut points
    let cuts = spaced_ruling_set(&walks.chains, &coloring.colors, spacing);
    ledger.add_measured("spaced ruling set (host rounds)", 2.0 * cuts.rounds as f64);

    // O(L) walk rounds: orient every segment consistently; the direction is
    // chosen from segment-local data (parity of the smallest edge id in the
    // segment), so neighboring segments decide independently
    let mut towards_second = vec![false; g.edge_count()];
    let mut assigned = vec![false; g.edge_count()];
    let mut segments = 0usize;
    let mut max_segment = 0usize;
    for start in 0..g.edge_count() {
        // segments begin at cut positions and at the heads of open walks
        let is_start = cuts.cut[start] || walks.chains.prev(start).is_none();
        if !is_start || assigned[start] {
            continue;
        }
        // collect the segment: from `start` to the next cut (exclusive)
        let mut seg = vec![start];
        let mut cur = start;
        while let Some(nx) = walks.chains.next(cur) {
            if cuts.cut[nx] || nx == start || assigned[nx] {
                break;
            }
            seg.push(nx);
            cur = nx;
        }
        let forward = seg.iter().min().expect("segment nonempty") % 2 == 0;
        for &e in &seg {
            assigned[e] = true;
            let (tail, _) = walks.direction[e];
            let (a, _) = g.endpoints(e);
            let along_walk = tail == a;
            towards_second[e] = if forward { along_walk } else { !along_walk };
        }
        segments += 1;
        max_segment = max_segment.max(seg.len());
    }
    debug_assert!(
        assigned.iter().all(|&x| x),
        "every edge must belong to a segment"
    );
    ledger.add_measured(
        "segment orientation (host rounds)",
        2.0 * max_segment.max(1) as f64,
    );

    WalkSplitting {
        orientation: Orientation::new(towards_second),
        ledger,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_even_multigraph(n: usize, m: usize, seed: u64) -> MultiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MultiGraph::new(n);
        for _ in 0..m {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn orients_every_edge_exactly_once() {
        let g = random_even_multigraph(40, 120, 3);
        let out = walk_splitting(&g, 0.25);
        assert_eq!(out.orientation.edge_count(), 120);
        assert!(out.segments >= 1);
    }

    #[test]
    fn empty_graph() {
        let g = MultiGraph::new(5);
        let out = walk_splitting(&g, 0.5);
        assert_eq!(out.orientation.edge_count(), 0);
        assert_eq!(out.segments, 0);
    }

    #[test]
    fn cycle_with_coarse_eps_single_segments() {
        let mut g = MultiGraph::new(8);
        for i in 0..8 {
            g.add_edge(i, (i + 1) % 8);
        }
        let out = walk_splitting(&g, 1.0);
        // spacing 1: many cuts, many segments
        assert!(out.segments >= 2);
        // every node has degree 2: discrepancy is 0 or 2
        for v in 0..8 {
            let d = out.orientation.discrepancy(&g, v);
            assert!(d == 0 || d == 2);
        }
    }

    #[test]
    fn fine_eps_keeps_discrepancy_low_on_regular_graphs() {
        // high-degree nodes: discrepancy should stay well below degree
        let g = random_even_multigraph(20, 400, 11);
        let out = walk_splitting(&g, 1.0 / 16.0);
        let mut total_disc = 0usize;
        for v in 0..20 {
            total_disc += out.orientation.discrepancy(&g, v);
        }
        let avg_degree = 2.0 * 400.0 / 20.0;
        let avg_disc = total_disc as f64 / 20.0;
        assert!(
            avg_disc <= 0.25 * avg_degree,
            "avg discrepancy {avg_disc} too large vs degree {avg_degree}"
        );
    }

    #[test]
    fn ledger_reports_three_measured_phases() {
        let g = random_even_multigraph(30, 90, 5);
        let out = walk_splitting(&g, 0.2);
        assert_eq!(out.ledger.entries().len(), 3);
        assert!(out.ledger.charged_total() == 0.0);
        assert!(out.ledger.measured_total() > 0.0);
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn rejects_bad_eps() {
        let g = MultiGraph::new(2);
        let _ = walk_splitting(&g, 0.0);
    }
}
