//! Walk decompositions of multigraphs.
//!
//! Pairing the incident edges at every node decomposes the edge set into
//! maximal walks: consecutive walk edges share a node at which they are
//! paired. Since every edge has at most one pairing partner at each
//! endpoint, the "paired at a common node" relation turns the edge set into
//! a disjoint union of paths and cycles — a [`Chains`] structure over edge
//! ids — which is exactly what the distributed degree-splitting engine
//! segments and orients. The pairing itself is a 0-round local choice.

use local_coloring::Chains;
use splitgraph::{EdgeId, MultiGraph};

/// A walk decomposition: chains over edge ids plus, for every edge, its
/// traversal direction along its walk.
#[derive(Debug, Clone)]
pub struct WalkDecomposition {
    /// Chain structure over edge ids (`next` = following edge in the walk).
    pub chains: Chains,
    /// `direction[e] = (tail, head)`: edge `e` traversed tail → head when
    /// following its walk in `next` order.
    pub direction: Vec<(usize, usize)>,
}

impl WalkDecomposition {
    /// Computes the walk decomposition induced by pairing each node's
    /// incident edge occurrences in incidence-list order
    /// (`(1st, 2nd), (3rd, 4th), …`; odd nodes leave their last occurrence
    /// unpaired).
    ///
    /// # Panics
    ///
    /// Panics if `g` contains a self-loop (the paper's pairing multigraphs
    /// never do; both occurrences of a loop would be at the same node).
    pub fn from_pairing(g: &MultiGraph) -> Self {
        let m = g.edge_count();
        // partner[e][side]: the edge paired with `e` at endpoint `side`
        // (0 = first endpoint, 1 = second endpoint), if any
        let mut partner: Vec<[Option<EdgeId>; 2]> = vec![[None, None]; m];
        let side_of = |e: EdgeId, v: usize| -> usize {
            let (a, b) = g.endpoints(e);
            assert_ne!(a, b, "self-loops are not supported by walk pairing");
            if a == v {
                0
            } else {
                debug_assert_eq!(b, v);
                1
            }
        };
        for v in 0..g.node_count() {
            let inc = g.incident_edges(v);
            for pair in inc.chunks_exact(2) {
                let (e1, e2) = (pair[0], pair[1]);
                partner[e1][side_of(e1, v)] = Some(e2);
                partner[e2][side_of(e2, v)] = Some(e1);
            }
        }

        // traverse walks, fixing a direction for every edge: first all open
        // walks (starting from free ends), then the remaining cycles
        let mut next: Vec<Option<EdgeId>> = vec![None; m];
        let mut direction: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); m];
        let mut visited = vec![false; m];

        let traverse = |start: EdgeId,
                        start_tail_side: usize,
                        next: &mut Vec<Option<EdgeId>>,
                        direction: &mut Vec<(usize, usize)>,
                        visited: &mut Vec<bool>| {
            let mut cur = start;
            let mut tail_side = start_tail_side;
            loop {
                visited[cur] = true;
                let (a, b) = g.endpoints(cur);
                let (tail, head) = if tail_side == 0 { (a, b) } else { (b, a) };
                direction[cur] = (tail, head);
                let head_side = 1 - tail_side;
                match partner[cur][head_side] {
                    None => break,
                    Some(nx) => {
                        next[cur] = Some(nx);
                        if nx == start {
                            break; // closed the cycle
                        }
                        tail_side = side_of(nx, head);
                        cur = nx;
                    }
                }
            }
        };

        // phase 1: open walks begin at a (edge, side) with no partner
        for e in 0..m {
            let pair = partner[e];
            for (side, paired) in pair.iter().enumerate() {
                if paired.is_none() && !visited[e] {
                    traverse(e, side, &mut next, &mut direction, &mut visited);
                }
            }
        }
        // phase 2: everything still unvisited lies on cycles
        for e in 0..m {
            if !visited[e] {
                traverse(e, 0, &mut next, &mut direction, &mut visited);
            }
        }
        WalkDecomposition {
            chains: Chains::from_next(next),
            direction,
        }
    }

    /// Number of edge positions (edges of the underlying multigraph).
    pub fn len(&self) -> usize {
        self.direction.len()
    }

    /// Whether the decomposition is empty.
    pub fn is_empty(&self) -> bool {
        self.direction.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every consecutive pair of walk edges must share the node that the
    /// directions claim: head of `e` = tail of `next(e)`.
    fn assert_consistent(g: &MultiGraph, w: &WalkDecomposition) {
        for e in 0..g.edge_count() {
            let (tail, head) = w.direction[e];
            let (a, b) = g.endpoints(e);
            assert!(
                (tail, head) == (a, b) || (tail, head) == (b, a),
                "direction of edge {e} does not match its endpoints"
            );
            if let Some(nx) = w.chains.next(e) {
                assert_eq!(w.direction[nx].0, head, "walk broken between {e} and {nx}");
            }
        }
    }

    #[test]
    fn path_graph_single_walk() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let w = WalkDecomposition::from_pairing(&g);
        assert_consistent(&g, &w);
        // the path is one maximal walk: exactly one edge has no successor
        let ends = (0..3).filter(|&e| w.chains.next(e).is_none()).count();
        assert_eq!(ends, 1);
    }

    #[test]
    fn cycle_graph_single_closed_walk() {
        let mut g = MultiGraph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        let w = WalkDecomposition::from_pairing(&g);
        assert_consistent(&g, &w);
        // closed walk: every edge has a successor
        assert!((0..5).all(|e| w.chains.next(e).is_some()));
    }

    #[test]
    fn star_decomposes_into_short_walks() {
        // center of degree 4 pairs its edges into two walks of length 2
        let mut g = MultiGraph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        let w = WalkDecomposition::from_pairing(&g);
        assert_consistent(&g, &w);
        let ends = (0..4).filter(|&e| w.chains.next(e).is_none()).count();
        assert_eq!(ends, 2, "two maximal walks expected");
    }

    #[test]
    fn parallel_edges_form_cycle() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let w = WalkDecomposition::from_pairing(&g);
        assert_consistent(&g, &w);
        assert!(
            (0..2).all(|e| w.chains.next(e).is_some()),
            "2-cycle of parallel edges"
        );
    }

    #[test]
    fn every_edge_appears_in_exactly_one_walk() {
        let mut g = MultiGraph::new(6);
        let edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (1, 4),
        ];
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let w = WalkDecomposition::from_pairing(&g);
        assert_consistent(&g, &w);
        assert_eq!(w.len(), edges.len());
        // walks partition edges: following next from each start covers all
        let mut covered = vec![false; edges.len()];
        for e in 0..edges.len() {
            if w.chains.prev(e).is_none() || !covered[e] {
                let mut cur = Some(e);
                let mut steps = 0;
                while let Some(x) = cur {
                    if covered[x] {
                        break;
                    }
                    covered[x] = true;
                    cur = w.chains.next(x);
                    steps += 1;
                    assert!(steps <= edges.len(), "walk runs forever");
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        let mut g = MultiGraph::new(1);
        g.add_edge(0, 0);
        let _ = WalkDecomposition::from_pairing(&g);
    }
}
