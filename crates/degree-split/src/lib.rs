//! # degree-split — directed degree splitting (Theorem 2.3 substrate)
//!
//! The splitting paper invokes "improved distributed degree splitting"
//! [GHK+17b] as a black box: an orientation with per-node in/out discrepancy
//! at most `ε·d(v) + 2` in `O(ε⁻¹·log ε⁻¹·(log log ε⁻¹)^1.71·log n)` rounds
//! (deterministic; `log log n` randomized). This crate reproduces the
//! contract with two engines behind the [`DegreeSplitter`] facade:
//!
//! * [`eulerian_orientation`] — the reference engine (discrepancy 0/1),
//!   rounds charged by the cited formula ([`splitting_rounds_deterministic`]
//!   / [`splitting_rounds_randomized`]);
//! * [`walk_splitting`] — a genuinely distributed engine built on walk
//!   decompositions ([`WalkDecomposition`]), Cole–Vishkin coloring and
//!   spaced ruling sets, with measured rounds;
//! * [`edge_splitting_eulerian`] / [`edge_splitting_walk`] — the
//!   *undirected* variant (edge 2-coloring with per-node balance), the
//!   tool behind the paper's edge-coloring motivation (§1.1).
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod charge;
mod distributed;
mod eulerian;
mod splitter;
mod undirected;
mod walks;

pub use charge::{splitting_rounds_deterministic, splitting_rounds_randomized};
pub use distributed::{walk_splitting, WalkSplitting};
pub use eulerian::eulerian_orientation;
pub use splitter::{DegreeSplitter, Engine, Flavor, SplitResult};
pub use undirected::{edge_splitting_eulerian, edge_splitting_walk, EdgeSplitting};
pub use walks::WalkDecomposition;
