//! Round-cost formulas of Theorem 2.3 ([GHK+17b]).
//!
//! The paper uses directed degree splitting as a black box with
//! deterministic cost `O(ε⁻¹·log ε⁻¹·(log log ε⁻¹)^1.71·log n)` and
//! randomized cost `O(ε⁻¹·log ε⁻¹·(log log ε⁻¹)^1.71·log log n)`. When a
//! pipeline invokes the reference (Eulerian) engine, these formulas are
//! *charged* to the round ledger so that measured experiments report the
//! complexity the paper's analysis assigns to the step (constants taken
//! as 1, as is conventional when reproducing asymptotic claims).

/// `ε⁻¹·log₂(ε⁻¹)·(log₂ log₂ ε⁻¹)^1.71`, the ε-dependent factor of
/// Theorem 2.3, with all logarithms clamped below at 1.
fn eps_factor(eps: f64) -> f64 {
    let inv = (1.0 / eps.clamp(1.0e-9, 1.0)).max(2.0);
    let log_inv = inv.log2().max(1.0);
    let loglog = log_inv.log2().max(1.0);
    inv * log_inv * loglog.powf(1.71)
}

/// Deterministic rounds charged for one directed degree splitting with
/// accuracy `eps` on an `n`-node graph (Theorem 2.3).
pub fn splitting_rounds_deterministic(eps: f64, n: usize) -> f64 {
    eps_factor(eps) * (n.max(2) as f64).log2()
}

/// Randomized rounds charged for one directed degree splitting with
/// accuracy `eps` on an `n`-node graph (Theorem 2.3, randomized variant).
pub fn splitting_rounds_randomized(eps: f64, n: usize) -> f64 {
    eps_factor(eps) * (n.max(4) as f64).log2().log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_grows_with_log_n() {
        let a = splitting_rounds_deterministic(0.25, 1 << 10);
        let b = splitting_rounds_deterministic(0.25, 1 << 20);
        assert!(
            (b / a - 2.0).abs() < 0.01,
            "log n doubling expected, got {}",
            b / a
        );
    }

    #[test]
    fn randomized_is_cheaper_than_deterministic() {
        for n in [64usize, 1 << 12, 1 << 20] {
            assert!(
                splitting_rounds_randomized(0.1, n) < splitting_rounds_deterministic(0.1, n),
                "randomized must be cheaper at n = {n}"
            );
        }
    }

    #[test]
    fn eps_dependence_superlinear() {
        let coarse = splitting_rounds_deterministic(1.0 / 4.0, 1024);
        let fine = splitting_rounds_deterministic(1.0 / 64.0, 1024);
        // ε⁻¹ grew by 16×, cost must grow by more than 16×
        assert!(fine > 16.0 * coarse);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert!(splitting_rounds_deterministic(2.0, 0) > 0.0);
        assert!(splitting_rounds_randomized(0.0, 1) > 0.0);
        assert!(splitting_rounds_deterministic(1.0, 2).is_finite());
    }
}
