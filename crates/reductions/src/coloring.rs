//! Lemma 4.1: `(1 + o(1))·Δ` vertex coloring via recursive uniform
//! splitting.
//!
//! Recursively split the graph into halves until the per-part maximum
//! degree drops to `Δ* = poly log n`, then color the parts with disjoint
//! palettes using a `(d+1)`-coloring subroutine. With splitting accuracy
//! `ε` per level, `2^k` parts of degree `≤ Δ·((1+ε)/2)^k` cost
//! `2^k·(Δ·((1+ε)/2)^k + 1) ≈ (1+ε)^k·Δ + 2^k` colors in total — a
//! `(1+o(1))·Δ` palette when `ε = o(1/log Δ)` and `2^k = o(Δ)`.
//!
//! The paper's splitting accuracy `ε = 1/log² n` needs degrees
//! `Ω(log n·log⁴ n)` to certify; at reproduction scale the accuracy is
//! chosen per level by [`crate::feasible_eps`], which preserves the
//! `(1+o(1))` shape (the ratio table of experiment `lem41` records it).
//! The base case stands in for [FHK16] with a greedy `(d+1)` coloring,
//! charged `O(√d) + log* n` rounds per the citation.

use crate::uniform::{feasible_eps, uniform_splitting_deterministic};
use local_coloring::greedy_sequential;
use local_runtime::RoundLedger;
use splitgraph::math::log_star;
use splitgraph::{checks, Color, Graph, MultiColor};
use splitting_core::SplitError;

/// Diagnostics of the Lemma 4.1 pipeline.
#[derive(Debug, Clone)]
pub struct ColoringReport {
    /// Recursion levels executed.
    pub levels: usize,
    /// Per-level splitting accuracies used.
    pub eps_per_level: Vec<f64>,
    /// Maximum part degree entering the base case.
    pub base_degree: usize,
    /// Total palette size used.
    pub palette: u32,
    /// `palette / (Δ + 1)` — the `(1 + o(1))` factor under measurement.
    pub ratio: f64,
}

/// Runs the Lemma 4.1 pipeline deterministically.
///
/// `base_degree_target` bounds the degree at which recursion stops and the
/// base `(d+1)`-coloring takes over (the paper uses `poly log n`; pass e.g.
/// `4·⌈log₂ n⌉²`). Parts whose certified accuracy would exceed `max_eps`
/// (default 1/4 when `None`) also stop splitting.
///
/// # Errors
///
/// Propagates estimator failures from the splitter (not expected: accuracy
/// is chosen feasibly).
pub fn delta_coloring_via_splitting(
    g: &Graph,
    base_degree_target: usize,
    max_eps: Option<f64>,
) -> Result<(Vec<MultiColor>, ColoringReport, RoundLedger), SplitError> {
    let n = g.node_count();
    let delta = g.max_degree();
    let max_eps = max_eps.unwrap_or(0.25);
    let mut ledger = RoundLedger::new();

    // part labels; refined by one bit per level
    let mut part: Vec<u64> = vec![0; n];
    let mut level = 0usize;
    let mut eps_per_level = Vec::new();
    let mut current_max_degree = delta;

    loop {
        if current_max_degree <= base_degree_target {
            break;
        }
        // split every part in parallel; constraints apply to nodes with at
        // least half the part's max degree (the "modified problem")
        let eps = feasible_eps(n, current_max_degree / 2);
        if eps > max_eps {
            break; // degrees too small to certify a useful split
        }
        let mut parts: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (v, &label) in part.iter().enumerate() {
            parts.entry(label).or_default().push(v);
        }
        let mut level_measured = 0.0f64;
        let mut level_charged = 0.0f64;
        for (label, members) in parts {
            let mut keep = vec![false; n];
            for &v in &members {
                keep[v] = true;
            }
            let sub = g.induced_subgraph(&keep);
            let sub_delta = sub.max_degree();
            if sub_delta <= base_degree_target {
                continue; // this part is already done
            }
            let out = uniform_splitting_deterministic(&sub, eps, sub_delta.div_ceil(2))?;
            // parts run in parallel: per-kind maximum
            level_measured = level_measured.max(out.ledger.measured_total());
            level_charged = level_charged.max(out.ledger.charged_total());
            for &v in &members {
                let bit = u64::from(out.colors[v] == Color::Blue);
                part[v] = (label << 1) | bit;
            }
        }
        ledger.add_measured(
            format!("level {level} splitting (parallel parts)"),
            level_measured,
        );
        ledger.add_charged(
            format!("level {level} scheduling (parallel parts)"),
            level_charged,
        );
        eps_per_level.push(eps);
        level += 1;
        current_max_degree = (((1.0 + eps) / 2.0) * current_max_degree as f64).ceil() as usize;
        if level > 64 {
            break; // safety: cannot recurse past the label width
        }
    }

    // base case: disjoint palettes per part, greedy (d+1) coloring standing
    // in for [FHK16] (charged O(√d + log* n))
    // BTreeMap: palette offsets are assigned in iteration order, so the
    // part order must be a pure function of the instance
    let mut parts: std::collections::BTreeMap<u64, Vec<usize>> = std::collections::BTreeMap::new();
    for (v, &label) in part.iter().enumerate() {
        parts.entry(label).or_default().push(v);
    }
    let mut colors: Vec<MultiColor> = vec![0; n];
    let mut next_palette_start: u32 = 0;
    let mut base_degree = 0usize;
    let mut base_charge = 0.0f64;
    for (_, members) in parts {
        let mut keep = vec![false; n];
        for &v in &members {
            keep[v] = true;
        }
        let sub = g.induced_subgraph(&keep);
        let d = sub.max_degree();
        base_degree = base_degree.max(d);
        let order: Vec<usize> = members.clone();
        let local = greedy_sequential(&sub, &{
            // greedy over the full index space, but only members get colors
            let mut full: Vec<usize> = members.clone();
            let mut seen = keep.clone();
            for (v, was_seen) in seen.iter_mut().enumerate() {
                if !*was_seen {
                    full.push(v);
                    *was_seen = true;
                }
            }
            full
        });
        let _ = order;
        for &v in &members {
            colors[v] = next_palette_start + local[v];
        }
        next_palette_start += d as u32 + 1;
        base_charge = base_charge.max((d as f64).sqrt() + log_star(n.max(2)) as f64);
    }
    ledger.add_charged(
        "base (d+1)-coloring (FHK16: √d + log* n, parallel parts)",
        base_charge,
    );

    debug_assert!(checks::is_proper_coloring(g, &colors));
    let report = ColoringReport {
        levels: level,
        eps_per_level,
        base_degree,
        palette: next_palette_start,
        ratio: next_palette_start as f64 / (delta + 1) as f64,
    };
    Ok((colors, report, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn colors_random_regular_graph_properly() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_regular(512, 64, &mut rng).unwrap();
        let (colors, report, _ledger) = delta_coloring_via_splitting(&g, 16, None).unwrap();
        assert!(checks::is_proper_coloring(&g, &colors));
        assert!(report.palette >= 65, "needs at least Δ+1 colors");
        assert!(
            report.ratio < 3.0,
            "ratio {} far above (1+o(1))",
            report.ratio
        );
    }

    #[test]
    fn splitting_levels_reduce_base_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        // degree 512 at n = 2048: certified ε ≈ 0.33 permits splitting
        let g = generators::random_regular(2048, 512, &mut rng).unwrap();
        let (colors, report, _) = delta_coloring_via_splitting(&g, 64, Some(0.35)).unwrap();
        assert!(checks::is_proper_coloring(&g, &colors));
        assert!(report.levels >= 1, "expected at least one split");
        assert!(
            report.base_degree < 512,
            "base degree {} did not shrink",
            report.base_degree
        );
    }

    #[test]
    fn no_levels_needed_for_small_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_regular(100, 6, &mut rng).unwrap();
        let (colors, report, _) = delta_coloring_via_splitting(&g, 16, None).unwrap();
        assert!(checks::is_proper_coloring(&g, &colors));
        assert_eq!(report.levels, 0);
        assert!(report.palette <= 7);
    }

    #[test]
    fn ratio_stays_near_one_with_splitting() {
        // larger Δ leaves room for splitting: the measured (1+o(1)) factor
        // must stay close to 1 even after the recursion
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_regular(2048, 512, &mut rng).unwrap();
        let (_, report, _) = delta_coloring_via_splitting(&g, 64, Some(0.35)).unwrap();
        assert!(report.ratio < 2.0, "ratio {}", report.ratio);
    }
}
