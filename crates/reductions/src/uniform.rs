//! The uniform (strong) splitting problem of Section 4.1.
//!
//! Partition the nodes of `G` into red and blue so that every node of
//! sufficiently large degree has between `(1/2 − ε)·d(v)` and
//! `(1/2 + ε)·d(v)` neighbors on each side. The randomized solution is one
//! coin flip per node; the derandomized solution runs the
//! conditional-expectation fixer with the Chernoff/MGF overload estimator
//! on the doubling instance of Section 1.2 (constraints = nodes,
//! variables = nodes, caps = `(1/2 + ε)·d(v)` per side — capping *both*
//! colors enforces the lower bounds too).
//!
//! The Chernoff union bound certifies success only when
//! `ε² · d ≳ ln n`; [`feasible_eps`] computes the smallest certified `ε`
//! for a given degree, which the Section 4 pipelines use adaptively (the
//! paper runs with `ε = 1/log² n` and degree `Ω(log n/ε²)` — same
//! constraint, asymptotic form).

use derand::{sequential_fix_identity, ColoringEstimator};
use local_runtime::{NodeRngs, RoundLedger};
use rand::RngExt;
use splitgraph::generators::doubling_instance;
use splitgraph::math::log_star;
use splitgraph::{checks, Color, Graph};
use splitting_core::{SplitError, SplitOutcome};

/// The smallest accuracy `ε` such that the Chernoff union bound over `2n`
/// (node, side) events certifies a uniform splitting for minimum
/// constrained degree `d`: `ε = √(3·ln(4n)/d)`, clamped to `(0, 1/2]`.
pub fn feasible_eps(n: usize, d: usize) -> f64 {
    let n = n.max(2) as f64;
    let d = d.max(1) as f64;
    (3.0 * (4.0 * n).ln() / d).sqrt().min(0.5)
}

/// One-coin-per-node randomized uniform splitting (zero rounds). Callers
/// verify with [`checks::is_uniform_splitting`].
pub fn uniform_splitting_random(g: &Graph, seed: u64) -> Vec<Color> {
    let rngs = NodeRngs::new(seed);
    (0..g.node_count())
        .map(|v| Color::from_bool(rngs.rng(v, 0).random_bool(0.5)))
        .collect()
}

/// Derandomized uniform splitting with accuracy `eps`, constraining only
/// nodes of degree at least `min_degree`.
///
/// # Errors
///
/// Returns [`SplitError::EstimatorTooLarge`] when the Chernoff bound does
/// not certify the `(eps, min_degree)` combination (use [`feasible_eps`]).
pub fn uniform_splitting_deterministic(
    g: &Graph,
    eps: f64,
    min_degree: usize,
) -> Result<SplitOutcome, SplitError> {
    let b = doubling_instance(g);
    // constraints below the degree floor are exempted: give them the
    // trivial cap d(v) (never binding)
    let caps: Vec<usize> = (0..g.node_count())
        .map(|v| {
            let d = g.degree(v);
            if d >= min_degree {
                ((0.5 + eps) * d as f64).floor() as usize
            } else {
                d
            }
        })
        .collect();
    // MGF parameter for the (1/2+ε) cap over Bin(d, 1/2): t = ln(1 + 2ε)
    let t = (1.0 + 2.0 * eps).ln().max(1e-6);
    let mut est = ColoringEstimator::overload(&b, 2, &caps, t);
    // nodes below the degree floor cannot be violated (cap = degree):
    // remove them from the union bound entirely
    for v in 0..g.node_count() {
        if g.degree(v) < min_degree {
            est.exempt(v);
        }
    }

    // the greedy pass runs sequentially (it is the SLOCAL(2) algorithm);
    // LOCAL compilation costs are charged per [GHK17a]: a Δ²-coloring of G²
    // schedules the phases, two rounds per class (materializing G² on the
    // dense Section 4 instances would cost Θ(n·Δ²) memory for no output
    // difference)
    let sched_palette = (g.max_degree() * g.max_degree()).min(g.node_count().max(1));
    let mut ledger = RoundLedger::new();
    ledger.add_charged(
        "G² scheduling coloring (Δ² + log* n)",
        (sched_palette + 1) as f64 + log_star(g.node_count().max(2)) as f64,
    );
    ledger.add_charged(
        "conditional-expectation phases (compiled)",
        2.0 * (sched_palette + 1) as f64,
    );
    let fix = sequential_fix_identity(&b, est);
    if fix.initial_phi >= 1.0 {
        return Err(SplitError::EstimatorTooLarge {
            phi: fix.initial_phi,
        });
    }
    let colors: Vec<Color> = fix
        .colors
        .iter()
        .map(|&x| if x == 0 { Color::Red } else { Color::Blue })
        .collect();
    debug_assert!(checks::is_uniform_splitting(g, &colors, eps, min_degree));
    Ok(SplitOutcome { colors, ledger })
}

/// The clique gadget of the Section 4.1 Remark: pads every node of degree
/// below `delta` with virtual clique neighbors so the padded graph has
/// minimum degree `delta`; returns the padded graph (original nodes keep
/// their indices) and the original node count.
///
/// # Panics
///
/// Panics if `delta` exceeds the padded clique capacity (needs
/// `delta ≥ 1`).
pub fn pad_low_degrees(g: &Graph, delta: usize) -> (Graph, usize) {
    assert!(delta >= 1, "target degree must be positive");
    let n = g.node_count();
    let deficient: Vec<usize> = (0..n).filter(|&v| g.degree(v) < delta).collect();
    if deficient.is_empty() {
        return (g.clone(), n);
    }
    // one shared (delta+1)-clique provides attachment points; each
    // deficient node connects to `delta - deg` clique members. Clique
    // members gain at most |deficient| extra degree — acceptable for the
    // modified problem, which constrains only nodes of degree ≥ Δ/2 in the
    // *original* roles; the gadget mirrors the paper's O(n) construction.
    let clique = delta + 1;
    let mut padded = Graph::new(n + clique);
    for (u, v) in g.edges() {
        padded.add_edge(u, v).expect("original edges stay simple");
    }
    for i in 0..clique {
        for j in i + 1..clique {
            padded
                .add_edge(n + i, n + j)
                .expect("clique edges are fresh");
        }
    }
    for &v in &deficient {
        let need = delta - g.degree(v);
        for k in 0..need {
            padded
                .add_edge(v, n + (v + k) % clique)
                .expect("gadget edges are fresh");
        }
    }
    (padded, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn randomized_splitting_usually_valid_at_high_degree() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_regular(256, 64, &mut rng).unwrap();
        let eps = feasible_eps(256, 64);
        let mut ok = 0;
        for seed in 0..10 {
            let colors = uniform_splitting_random(&g, seed);
            if checks::is_uniform_splitting(&g, &colors, eps, 64) {
                ok += 1;
            }
        }
        assert!(
            ok >= 8,
            "only {ok}/10 random splittings valid at ε = {eps:.3}"
        );
    }

    #[test]
    fn deterministic_splitting_always_valid() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::random_regular(128, 48, &mut rng).unwrap();
        let eps = feasible_eps(128, 48);
        let out = uniform_splitting_deterministic(&g, eps, 48).unwrap();
        assert!(checks::is_uniform_splitting(&g, &out.colors, eps, 48));
    }

    #[test]
    fn deterministic_rejects_infeasible_eps() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_regular(128, 16, &mut rng).unwrap();
        // ε far below the certified accuracy for degree 16
        assert!(matches!(
            uniform_splitting_deterministic(&g, 0.01, 16),
            Err(SplitError::EstimatorTooLarge { .. })
        ));
    }

    #[test]
    fn min_degree_exempts_small_nodes() {
        // a star: the center has high degree, leaves degree 1
        let mut g = Graph::new(65);
        for leaf in 1..65 {
            g.add_edge(0, leaf).unwrap();
        }
        let eps = feasible_eps(65, 64);
        let out = uniform_splitting_deterministic(&g, eps, 32).unwrap();
        assert!(checks::is_uniform_splitting(&g, &out.colors, eps, 32));
    }

    #[test]
    fn feasible_eps_decreases_with_degree() {
        assert!(feasible_eps(1024, 64) > feasible_eps(1024, 256));
        assert!(feasible_eps(1024, 100_000) < 0.02);
        assert!(feasible_eps(4, 1) <= 0.5);
    }

    #[test]
    fn pad_low_degrees_reaches_target() {
        let g = generators::path(6); // end nodes have degree 1
        let (padded, orig) = pad_low_degrees(&g, 3);
        assert_eq!(orig, 6);
        for v in 0..6 {
            assert!(
                padded.degree(v) >= 3,
                "node {v} degree {}",
                padded.degree(v)
            );
        }
        // original edges intact
        for (u, v) in g.edges() {
            assert!(padded.contains_edge(u, v));
        }
    }

    #[test]
    fn pad_noop_when_degrees_suffice() {
        let g = generators::complete(5);
        let (padded, orig) = pad_low_degrees(&g, 3);
        assert_eq!(padded.node_count(), 5);
        assert_eq!(orig, 5);
    }
}
