//! Edge coloring via recursive edge splitting — the success story the
//! paper's introduction (§1.1) tells about the *edge* variant of
//! splitting: \[GS17\]/[GHK+17b] split the edge set in half `log Δ − O(1)`
//! times and color each residual class greedily, giving a
//! `2Δ(1 + o(1))`-edge-coloring.
//!
//! This module reproduces that pipeline on top of
//! [`degree_split::edge_splitting_eulerian`] /
//! [`degree_split::edge_splitting_walk`]: edge classes are refined one bit
//! per level; when per-class node degrees reach the target, every class is
//! edge-colored greedily with its own `2Δ* − 1` palette. The measured
//! palette-to-`2Δ` ratio is the `(1 + o(1))` factor under test.

use degree_split::{edge_splitting_eulerian, edge_splitting_walk};
use local_runtime::RoundLedger;
use splitgraph::{checks, Color, Graph, MultiColor, MultiGraph};
use splitting_core::SplitError;

/// Which engine performs the per-class edge splittings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeSplitEngine {
    /// Eulerian-traversal engine (discrepancy ≤ small constant, charged
    /// rounds).
    #[default]
    Eulerian,
    /// Walk-segmentation engine (measured rounds, `≈ ε·d` discrepancy).
    Walk,
}

/// Diagnostics of the edge-coloring pipeline.
#[derive(Debug, Clone)]
pub struct EdgeColoringReport {
    /// Splitting levels executed.
    pub levels: usize,
    /// Maximum per-class node degree entering the base case.
    pub base_degree: usize,
    /// Total palette size used.
    pub palette: u32,
    /// `palette / (2Δ)` — the `(1 + o(1))` factor of \[GS17\].
    pub ratio: f64,
}

/// Runs the recursive edge-splitting edge coloring.
///
/// `base_degree_target` is the per-class degree at which recursion stops
/// (the paper's `poly log n`).
///
/// # Errors
///
/// Returns [`SplitError::Precondition`] for graphs without edges (nothing
/// to color — callers usually special-case this).
pub fn edge_coloring_via_splitting(
    g: &Graph,
    base_degree_target: usize,
    engine: EdgeSplitEngine,
) -> Result<(Vec<MultiColor>, EdgeColoringReport, RoundLedger), SplitError> {
    let m = g.edge_count();
    if m == 0 {
        return Err(SplitError::Precondition {
            requirement: "at least one edge".into(),
            actual: "empty edge set".into(),
        });
    }
    let n = g.node_count();
    let delta = g.max_degree();
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut class: Vec<u64> = vec![0; m];
    let mut ledger = RoundLedger::new();
    let mut levels = 0usize;

    loop {
        // per-class max node degree
        let mut degrees: std::collections::HashMap<(u64, usize), usize> =
            std::collections::HashMap::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            *degrees.entry((class[i], a)).or_default() += 1;
            *degrees.entry((class[i], b)).or_default() += 1;
        }
        let max_class_degree = degrees.values().copied().max().unwrap_or(0);
        if max_class_degree <= base_degree_target || levels >= 62 {
            break;
        }
        // split every class in parallel (BTreeMap: palette assembly below
        // and replay stability need a deterministic class order)
        let mut classes: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &c) in class.iter().enumerate() {
            classes.entry(c).or_default().push(i);
        }
        let mut level_measured = 0.0f64;
        let mut level_charged = 0.0f64;
        let eps = 1.0 / (max_class_degree.max(4) as f64).log2();
        for (label, members) in classes {
            let mut sub = MultiGraph::new(n);
            for &i in &members {
                sub.add_edge(edges[i].0, edges[i].1);
            }
            let split = match engine {
                EdgeSplitEngine::Eulerian => edge_splitting_eulerian(&sub, eps, n),
                EdgeSplitEngine::Walk => edge_splitting_walk(&sub, eps),
            };
            level_measured = level_measured.max(split.ledger.measured_total());
            level_charged = level_charged.max(split.ledger.charged_total());
            for (j, &i) in members.iter().enumerate() {
                let bit = u64::from(split.colors[j] == Color::Blue);
                class[i] = (label << 1) | bit;
            }
        }
        ledger.add_measured(
            format!("level {levels} edge splitting (parallel)"),
            level_measured,
        );
        ledger.add_charged(
            format!("level {levels} edge splitting (parallel)"),
            level_charged,
        );
        levels += 1;
    }

    // base case: greedy edge coloring per class with disjoint palettes,
    // in class-label order so the palette offsets (and thus the output)
    // are a pure function of the instance
    let mut classes: std::collections::BTreeMap<u64, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, &c) in class.iter().enumerate() {
        classes.entry(c).or_default().push(i);
    }
    let mut colors: Vec<MultiColor> = vec![0; m];
    let mut next_start: u32 = 0;
    let mut base_degree = 0usize;
    let mut base_charge = 0.0f64;
    for (_, members) in classes {
        // class degree
        let mut deg: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &i in &members {
            *deg.entry(edges[i].0).or_default() += 1;
            *deg.entry(edges[i].1).or_default() += 1;
        }
        let d = deg.values().copied().max().unwrap_or(0);
        base_degree = base_degree.max(d);
        let palette = (2 * d).max(1) as u32 - 1;
        // greedy: smallest color unused at both endpoints (within the class)
        let mut used: std::collections::HashMap<usize, Vec<bool>> =
            std::collections::HashMap::new();
        for &i in &members {
            let (a, b) = edges[i];
            let ua = used
                .entry(a)
                .or_insert_with(|| vec![false; palette as usize])
                .clone();
            let ub = used
                .entry(b)
                .or_insert_with(|| vec![false; palette as usize])
                .clone();
            let c = (0..palette as usize)
                .find(|&x| !ua[x] && !ub[x])
                .expect("2d-1 palette always has a free slot");
            used.get_mut(&a).expect("present")[c] = true;
            used.get_mut(&b).expect("present")[c] = true;
            colors[i] = next_start + c as u32;
        }
        next_start += palette;
        // the greedy base stands in for the (2Δ*−1)-edge-coloring of
        // [FGK17]-style subroutines: charged Δ* + log* n
        base_charge = base_charge.max(d as f64 + splitgraph::math::log_star(n.max(2)) as f64);
    }
    ledger.add_charged("base (2Δ*−1) edge coloring (parallel classes)", base_charge);

    debug_assert!(checks::is_proper_edge_coloring(g, &colors));
    let report = EdgeColoringReport {
        levels,
        base_degree,
        palette: next_start,
        ratio: next_start as f64 / (2 * delta) as f64,
    };
    Ok((colors, report, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn colors_random_regular_graph_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_regular(128, 32, &mut rng).unwrap();
        let (colors, report, _) =
            edge_coloring_via_splitting(&g, 8, EdgeSplitEngine::Eulerian).unwrap();
        assert!(checks::is_proper_edge_coloring(&g, &colors));
        assert!(report.levels >= 1);
        assert!(
            report.ratio < 1.6,
            "ratio {} too far above (1+o(1))",
            report.ratio
        );
    }

    #[test]
    fn walk_engine_variant_also_proper() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::random_regular(96, 16, &mut rng).unwrap();
        let (colors, report, ledger) =
            edge_coloring_via_splitting(&g, 6, EdgeSplitEngine::Walk).unwrap();
        assert!(checks::is_proper_edge_coloring(&g, &colors));
        assert!(report.levels >= 1);
        assert!(ledger.measured_total() > 0.0, "walk engine measures rounds");
    }

    #[test]
    fn small_graph_goes_straight_to_base() {
        let g = generators::cycle(10).unwrap();
        let (colors, report, _) =
            edge_coloring_via_splitting(&g, 4, EdgeSplitEngine::Eulerian).unwrap();
        assert!(checks::is_proper_edge_coloring(&g, &colors));
        assert_eq!(report.levels, 0);
        assert!(report.palette <= 3);
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::new(5);
        assert!(edge_coloring_via_splitting(&g, 4, EdgeSplitEngine::Eulerian).is_err());
    }

    #[test]
    fn ratio_close_to_one_for_balanced_splits() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_regular(256, 64, &mut rng).unwrap();
        let (_, report, _) = edge_coloring_via_splitting(&g, 8, EdgeSplitEngine::Eulerian).unwrap();
        // 2^k classes of degree ≈ Δ/2^k: palette ≈ 2Δ + 2^k
        assert!(report.ratio < 1.5, "ratio {}", report.ratio);
        assert!(report.ratio >= 0.9);
    }
}
