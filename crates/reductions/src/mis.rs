//! Lemma 4.2: maximal independent set via heavy-node elimination.
//!
//! The MIS algorithm runs `O(log Δ)` *steps*, each halving the maximum
//! degree by eliminating the *heavy* nodes (degree ≥ Δ/2). One elimination
//! iteration sparsifies the heavy subgraph by repeated splitting — blue
//! nodes go passive, as do nodes with too few red neighbors — until active
//! degrees are `O(log n)`, computes an MIS on the sparse active graph, and
//! removes it with its neighborhood. Lemma 4.4 shows every iteration covers
//! an `Ω(1/log³ n)` fraction of the heavy nodes, so `O(log⁴ n)` iterations
//! clear them. The base case (`Δ ≤ poly log n`) stands in for [BEK14b] with
//! a coloring-driven greedy MIS.
//!
//! Reproduction notes: the splitting inside an iteration uses the
//! *randomized* uniform splitting (the paper's `A` is hypothetical — an
//! efficient deterministic LOCAL splitter is the open problem; Section 4
//! only needs *some* splitting oracle, and the experiments report its cost
//! separately). All outputs are verified maximal independent sets of the
//! original graph.

use crate::uniform::uniform_splitting_random;
use local_coloring::greedy_sequential;
use local_runtime::{NodeRngs, RoundLedger};
use splitgraph::math::{ceil_log2, log2};
use splitgraph::{checks, Color, Graph};

/// Diagnostics of the heavy-node-elimination MIS.
#[derive(Debug, Clone, Default)]
pub struct MisReport {
    /// Degree-halving steps executed.
    pub steps: usize,
    /// Total heavy-node elimination iterations across steps.
    pub elimination_iterations: usize,
    /// Splitting invocations consumed.
    pub splittings: usize,
    /// Nodes selected into the MIS.
    pub mis_size: usize,
}

/// Runs the Lemma 4.2 pipeline.
///
/// `base_degree` is the `poly log n` threshold below which the base MIS
/// takes over (e.g. `4·⌈log₂ n⌉`); `seed` drives the internal splittings.
pub fn mis_via_splitting(
    g: &Graph,
    base_degree: usize,
    seed: u64,
) -> (Vec<bool>, MisReport, RoundLedger) {
    let n = g.node_count();
    let rngs = NodeRngs::new(seed);
    let mut alive: Vec<bool> = vec![true; n];
    let mut in_mis = vec![false; n];
    let mut ledger = RoundLedger::new();
    let mut report = MisReport::default();
    let log_n = log2(n.max(2)).ceil().max(1.0) as usize;

    let mut round_counter: u64 = 0;
    loop {
        let current = g.induced_subgraph(&alive);
        let delta = (0..n)
            .filter(|&v| alive[v])
            .map(|v| current.degree(v))
            .max()
            .unwrap_or(0);
        if delta <= base_degree {
            break;
        }
        report.steps += 1;
        // eliminate heavy nodes (degree ≥ Δ/2) of the current residual
        let mut guard = 0usize;
        loop {
            let current = g.induced_subgraph(&alive);
            let heavy: Vec<usize> = (0..n)
                .filter(|&v| alive[v] && 2 * current.degree(v) >= delta)
                .collect();
            if heavy.is_empty() {
                break;
            }
            guard += 1;
            report.elimination_iterations += 1;
            if guard > 40 * log_n.pow(3) {
                // safety valve far above the Lemma 4.4 budget
                break;
            }

            // G' = heavy nodes plus neighbors; everyone starts active
            let mut active = vec![false; n];
            for &v in &heavy {
                active[v] = true;
                for &w in current.neighbors(v) {
                    if alive[w] {
                        active[w] = true;
                    }
                }
            }

            // sparsify by repeated splitting until active degrees ≤ 4·log n
            let target = 4 * log_n;
            let red_floor = log_n;
            let max_iters = 2 * ceil_log2(delta.max(2)) as usize + 2;
            for _ in 0..max_iters {
                let act = g.induced_subgraph(&active);
                let act_delta = (0..n)
                    .filter(|&v| active[v])
                    .map(|v| act.degree(v))
                    .max()
                    .unwrap_or(0);
                if act_delta <= target {
                    break;
                }
                round_counter += 1;
                let sides = uniform_splitting_random(&act, rngs.derive(round_counter).master());
                report.splittings += 1;
                ledger.add_measured("splitting inside heavy elimination", 0.0);
                // blue variables go passive; then nodes with too few red
                // neighbors go passive
                let mut next_active = active.clone();
                for v in 0..n {
                    if active[v] && sides[v] == Color::Blue {
                        next_active[v] = false;
                    }
                }
                for v in 0..n {
                    if next_active[v] {
                        let red_nbrs = act.neighbors(v).iter().filter(|&&w| next_active[w]).count();
                        if red_nbrs < red_floor && !heavy.contains(&v) {
                            next_active[v] = false;
                        }
                    }
                }
                // never passivate everything: keep heavy nodes active
                for &v in &heavy {
                    next_active[v] = true;
                }
                active = next_active;
            }

            // MIS on the sparse active graph (base MIS), then remove it and
            // its neighborhood from the residual
            let act_keep: Vec<bool> = (0..n).map(|v| active[v]).collect();
            let act = g.induced_subgraph(&act_keep);
            let (mis, rounds) = base_mis(&act, &act_keep);
            ledger.add_measured("MIS on sparsified active graph", rounds);
            let mut removed_any = false;
            for v in 0..n {
                if mis[v] {
                    in_mis[v] = true;
                    alive[v] = false;
                    removed_any = true;
                    for &w in g.neighbors(v) {
                        alive[w] = false;
                    }
                }
            }
            if !removed_any {
                break; // no progress possible (empty active graph)
            }
        }
    }

    // base case: MIS on the low-degree remainder
    let keep: Vec<bool> = alive.clone();
    let rest = g.induced_subgraph(&keep);
    let (mis, rounds) = base_mis(&rest, &keep);
    ledger.add_measured("base MIS on low-degree remainder", rounds);
    for v in 0..n {
        if mis[v] {
            in_mis[v] = true;
        }
    }
    report.mis_size = in_mis.iter().filter(|&&x| x).count();
    debug_assert!(checks::is_mis(g, &in_mis), "output must be a valid MIS");
    (in_mis, report, ledger)
}

/// Coloring-driven greedy MIS (the [BEK14b] stand-in): `(d+1)`-color the
/// graph, then sweep the color classes — class-`c` nodes join when no
/// neighbor joined earlier. Returns the indicator restricted to `mask` and
/// the measured class-sweep rounds (the coloring itself is charged by the
/// caller's ledger conventions at `O(Δ + log* n)`; here it is the dominant
/// palette-many sweeps that we count).
fn base_mis(g: &Graph, mask: &[bool]) -> (Vec<bool>, f64) {
    let n = g.node_count();
    let order: Vec<usize> = (0..n).collect();
    let colors = greedy_sequential(g, &order);
    let palette = colors.iter().copied().max().map_or(1, |c| c + 1);
    let mut in_mis = vec![false; n];
    for class in 0..palette {
        for v in 0..n {
            if mask[v]
                && colors[v] == class
                && !in_mis[v]
                && !g.neighbors(v).iter().any(|&w| in_mis[w])
            {
                in_mis[v] = true;
            }
        }
    }
    (in_mis, palette as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn produces_valid_mis_on_random_regular() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_regular(300, 32, &mut rng).unwrap();
        let (mis, report, _) = mis_via_splitting(&g, 16, 7);
        assert!(checks::is_mis(&g, &mis));
        assert!(report.mis_size >= 300 / 33, "Lemma 4.3 size bound");
        assert!(report.steps >= 1);
    }

    #[test]
    fn produces_valid_mis_on_sparse_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::random_regular(200, 4, &mut rng).unwrap();
        let (mis, report, _) = mis_via_splitting(&g, 16, 3);
        assert!(checks::is_mis(&g, &mis));
        assert_eq!(report.steps, 0, "low degree goes straight to the base case");
    }

    #[test]
    fn handles_disconnected_and_isolated_nodes() {
        let mut g = Graph::new(10);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        let (mis, _, _) = mis_via_splitting(&g, 4, 1);
        assert!(checks::is_mis(&g, &mis));
        // isolated nodes must join
        for (v, &in_mis) in mis.iter().enumerate().take(10).skip(4) {
            assert!(in_mis, "isolated node {v} must be in the MIS");
        }
    }

    #[test]
    fn base_mis_respects_lemma_4_3() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_regular(120, 6, &mut rng).unwrap();
        let mask = vec![true; 120];
        let (mis, _) = base_mis(&g, &mask);
        assert!(checks::is_mis(&g, &mis));
        let size = mis.iter().filter(|&&x| x).count();
        assert!(size >= 120 / 7, "MIS size {size} below n/(Δ+1)");
    }

    #[test]
    fn dense_graph_exercises_heavy_elimination() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::random_regular(256, 64, &mut rng).unwrap();
        let (mis, report, _) = mis_via_splitting(&g, 8, 11);
        assert!(checks::is_mis(&g, &mis));
        assert!(report.elimination_iterations >= 1);
        assert!(report.splittings >= 1);
    }
}
