//! # splitting-reductions — Section 4 of the splitting paper
//!
//! Degree-preserving reductions from classic symmetry-breaking problems to
//! splitting, executed end to end:
//!
//! * [`uniform_splitting_random`] / [`uniform_splitting_deterministic`] —
//!   the uniform (strong) splitting problem of Section 4.1, with
//!   [`feasible_eps`] computing the certified accuracy and
//!   [`pad_low_degrees`] the clique gadget of the Remark;
//! * [`delta_coloring_via_splitting`] — Lemma 4.1: `(1+o(1))·Δ` coloring by
//!   recursive splitting plus a `(d+1)`-coloring base case;
//! * [`mis_via_splitting`] — Lemma 4.2: MIS by heavy-node elimination;
//! * [`edge_coloring_via_splitting`] — the §1.1 motivation: a
//!   `2Δ(1+o(1))` edge coloring from recursive *edge* splitting
//!   (\[GS17\]-style).
//!
//! Section 4's premise is *conditional* ("let `A` be a splitting
//! algorithm…" — an efficient deterministic LOCAL `A` is exactly the open
//! problem the paper studies). The reproduction instantiates `A` with the
//! derandomized conditional-expectation splitter (deterministic outputs,
//! rounds dominated by the scheduling coloring) or its randomized zero-round
//! cousin, and reports the reduction overhead separately so Lemma 4.1/4.2's
//! accounting `T(reduction) = f(n, Δ)·T(A)` stays visible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coloring;
mod edge_coloring;
mod mis;
mod uniform;

pub use coloring::{delta_coloring_via_splitting, ColoringReport};
pub use edge_coloring::{edge_coloring_via_splitting, EdgeColoringReport, EdgeSplitEngine};
pub use mis::{mis_via_splitting, MisReport};
pub use uniform::{
    feasible_eps, pad_low_degrees, uniform_splitting_deterministic, uniform_splitting_random,
};
