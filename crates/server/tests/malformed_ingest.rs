//! Malformed-ingest coverage: a fuzz-style table of hostile input lines
//! asserting that every one of them comes back as a typed `ApiError`
//! frame — no panics, no hung or dropped connections, and no collateral
//! damage to well-formed requests sharing the server.

use splitting_server::wire::split_reply;
use splitting_server::{transport, Server, ServerConfig};
use std::sync::Arc;

const GOOD_REQUEST: &str = r#"{"v":1,"type":"request","id":"good","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}"#;

fn quiet_server() -> Server {
    Server::start(ServerConfig {
        record_timings: false,
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    })
}

/// Every hostile line and the reason it is hostile. All must produce an
/// `invalid-request` error frame.
fn hostile_lines() -> Vec<(&'static str, String)> {
    let truncated: Vec<String> = [
        // the good request chopped at ever-earlier byte offsets,
        // including mid-string, mid-number, and mid-escape cuts
        140, 100, 60, 30, 10, 3, 1,
    ]
    .iter()
    .map(|&n| GOOD_REQUEST.chars().take(n).collect())
    .collect();
    let mut table: Vec<(&'static str, String)> = vec![
        ("not JSON at all", "hello there".into()),
        ("top-level array", "[1,2,3]".into()),
        ("top-level string", "\"frame\"".into()),
        ("top-level number", "17".into()),
        ("unbalanced braces", "{\"v\":1".into()),
        ("trailing garbage", "{\"v\":1,\"type\":\"ping\"} extra".into()),
        ("duplicate keys", r#"{"v":1,"v":1,"type":"ping"}"#.into()),
        ("missing version", r#"{"type":"ping"}"#.into()),
        ("future version", r#"{"v":99,"type":"ping"}"#.into()),
        ("string version", r#"{"v":"1","type":"ping"}"#.into()),
        ("missing type", r#"{"v":1}"#.into()),
        ("unknown type", r#"{"v":1,"type":"solve"}"#.into()),
        (
            "unknown top-level field",
            r#"{"v":1,"type":"ping","turbo":true}"#.into(),
        ),
        (
            "numeric id",
            r#"{"v":1,"type":"request","id":7,"problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "oversized id",
            format!(
                r#"{{"v":1,"type":"request","id":"{}","problem":{{"name":"mis"}},"instance":{{"kind":"host","nodes":1,"edges":[]}}}}"#,
                "x".repeat(200)
            ),
        ),
        (
            "unknown priority",
            r#"{"v":1,"type":"request","id":"x","priority":"urgent","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "missing problem",
            r#"{"v":1,"type":"request","id":"x","instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "unknown problem name",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"graph-coloring"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "unknown problem field (typo)",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis","basedegree":4},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "unknown instance kind",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"hypergraph","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "unknown instance field",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[],"weights":[]}}"#.into(),
        ),
        (
            "edge with one endpoint",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"host","nodes":2,"edges":[[0]]}}"#.into(),
        ),
        (
            "edge with three endpoints",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"host","nodes":3,"edges":[[0,1,2]]}}"#.into(),
        ),
        (
            "edge endpoint out of range",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"multigraph","nodes":2,"edges":[[0,9]]}}"#.into(),
        ),
        (
            "negative node count",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"host","nodes":-4,"edges":[]}}"#.into(),
        ),
        (
            "negative seed",
            r#"{"v":1,"type":"request","id":"x","seed":-1,"problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "NaN literal",
            r#"{"v":1,"type":"request","id":"x","max_rounds":NaN,"problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "unknown pipeline",
            r#"{"v":1,"type":"request","id":"x","force_pipeline":"theorem99","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "unknown determinism policy",
            r#"{"v":1,"type":"request","id":"x","determinism":"maybe","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "raw control character in string",
            "{\"v\":1,\"type\":\"request\",\"id\":\"a\x01b\",\"problem\":{\"name\":\"mis\"},\"instance\":{\"kind\":\"host\",\"nodes\":1,\"edges\":[]}}".into(),
        ),
        (
            "lone surrogate escape",
            r#"{"v":1,"type":"request","id":"\ud800","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "deeply nested instance value",
            format!(
                r#"{{"v":1,"type":"request","id":"x","problem":{{"name":"mis"}},"instance":{{"kind":"host","nodes":{}1{},"edges":[]}}}}"#,
                "[".repeat(100),
                "]".repeat(100)
            ),
        ),
        (
            "oversized frame",
            format!(
                r#"{{"v":1,"type":"request","id":"big","problem":{{"name":"mis"}},"instance":{{"kind":"host","nodes":1,"edges":[],"pad":"{}"}}}}"#,
                "y".repeat(8000)
            ),
        ),
        (
            // the error offset must index into the instance text (pinned
            // precisely in wire's offset-consistency unit test); here we
            // assert the frame is the usual typed error
            "malformed edge deep in a long array",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"host","nodes":9,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,]]}}"#.into(),
        ),
        (
            "request with both inline instance and handle",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"handle":"00000000000000000000000000000000","instance":{"kind":"host","nodes":1,"edges":[]}}"#.into(),
        ),
        (
            "request with neither instance nor handle",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"}}"#.into(),
        ),
        (
            "malformed handle string",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"handle":"BEEF"}"#.into(),
        ),
        (
            "handle nobody uploaded",
            r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"handle":"00000000000000000000000000000000"}"#.into(),
        ),
        (
            "upload without an instance",
            r#"{"v":1,"type":"upload","id":"x"}"#.into(),
        ),
        (
            "upload with a malformed instance",
            r#"{"v":1,"type":"upload","id":"x","instance":{"kind":"host","nodes":2,"edges":[[0,5]]}}"#.into(),
        ),
        (
            "release without a handle",
            r#"{"v":1,"type":"release","id":"x"}"#.into(),
        ),
        (
            "release of a handle nobody holds",
            r#"{"v":1,"type":"release","id":"x","handle":"00000000000000000000000000000000"}"#.into(),
        ),
    ];
    for t in truncated {
        table.push(("truncated request", t));
    }
    table
}

#[test]
fn every_hostile_line_gets_a_typed_error_frame() {
    let server = quiet_server();
    let table = hostile_lines();
    // interleave: valid request, all hostile lines, valid request — the
    // connection must survive everything in between
    let mut input = String::new();
    input.push_str(GOOD_REQUEST);
    input.push('\n');
    for (_, line) in &table {
        input.push_str(line);
        input.push('\n');
    }
    input.push_str(GOOD_REQUEST);
    input.push('\n');

    let mut out = Vec::new();
    let summary = transport::serve_stream(&server, input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let frames: Vec<&str> = text.lines().collect();
    assert_eq!(frames.len(), table.len() + 2, "one reply per line\n{text}");
    assert_eq!(summary.replies_out as usize, frames.len());

    let first = split_reply(frames[0]).expect(frames[0]);
    assert_eq!(first.frame_type, "solution", "leading good request solves");
    let last = split_reply(frames.last().unwrap()).unwrap();
    assert_eq!(
        last.frame_type,
        "solution",
        "the connection survives every hostile line: {}",
        frames.last().unwrap()
    );
    assert_eq!(last.id, "good");

    for (frame, (what, line)) in frames[1..frames.len() - 1].iter().zip(&table) {
        let reply =
            split_reply(frame).unwrap_or_else(|| panic!("{what}: reply frame malformed: {frame}"));
        assert_eq!(reply.frame_type, "error", "{what}: {line} -> {frame}");
        let payload = reply.payload.unwrap();
        assert!(
            payload.contains(r#""event":"error""#)
                && payload.contains(r#""kind":"invalid-request""#),
            "{what}: expected a typed invalid-request payload, got {payload}"
        );
    }
    server.shutdown();
}

#[test]
fn invalid_utf8_gets_a_typed_error_not_a_dropped_connection() {
    let server = quiet_server();
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']);
    input.extend_from_slice(GOOD_REQUEST.as_bytes());
    input.push(b'\n');
    let mut out = Vec::new();
    transport::serve_stream(&server, &input[..], &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let frames: Vec<&str> = text.lines().collect();
    assert_eq!(frames.len(), 2, "{text}");
    let first = split_reply(frames[0]).unwrap();
    assert_eq!(first.frame_type, "error");
    assert!(first.payload.unwrap().contains("not valid UTF-8"));
    let second = split_reply(frames[1]).unwrap();
    assert_eq!(second.frame_type, "solution");
    server.shutdown();
}

#[test]
fn hostile_client_does_not_disturb_other_connections() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    let server = Arc::new(quiet_server());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            for stream in listener.incoming() {
                let server = Arc::clone(&server);
                let stream = stream.unwrap();
                thread::spawn(move || {
                    let reader = BufReader::new(&stream);
                    let _ = transport::serve_stream(&server, reader, &stream);
                });
            }
        });
    }

    // the hostile client holds its connection open mid-garbage while the
    // polite client completes a full request/solution exchange
    let mut hostile = TcpStream::connect(addr).unwrap();
    hostile.write_all(&[0xff, 0xfe, b'\n']).unwrap();
    hostile.write_all(b"{\"v\":1,\"type\":\"requ\n").unwrap();
    hostile.flush().unwrap();

    let polite = TcpStream::connect(addr).unwrap();
    (&polite).write_all(GOOD_REQUEST.as_bytes()).unwrap();
    (&polite).write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(&polite).read_line(&mut reply).unwrap();
    let parsed = split_reply(reply.trim_end()).expect(&reply);
    assert_eq!(parsed.frame_type, "solution");
    assert_eq!(parsed.id, "good");

    // the hostile client still gets its two typed error frames back
    let mut hostile_replies = BufReader::new(&hostile).lines();
    for _ in 0..2 {
        let frame = hostile_replies.next().unwrap().unwrap();
        let parsed = split_reply(&frame).expect(&frame);
        assert_eq!(parsed.frame_type, "error");
    }
}

/// Differential fuzzing of the zero-copy edge scanner against the strict
/// parser: whatever bytes arrive, both must agree on accept vs reject,
/// on the parsed pairs, and on the exact error (offset and reason).
mod edge_scanner_differential {
    use proptest::prelude::*;
    use splitting_server::json;

    fn assert_agreement(input: &str) {
        let strict = json::parse_edge_pairs(input);
        let scanned = json::scan_edge_pairs(input);
        match (&strict, &scanned) {
            (Ok(a), Ok((b, _fast))) => assert_eq!(a, b, "parsed pairs diverge on {input:?}"),
            (Err(a), Err(b)) => assert_eq!(a, b, "errors diverge on {input:?}"),
            _ => {
                panic!("accept/reject diverges on {input:?}: strict={strict:?} scanned={scanned:?}")
            }
        }
        assert_frame_scan_agreement(input);
    }

    /// The fused frame scan (ingest prescan path) must accept, reject,
    /// and err byte-identically to the plain scanner with the edge text
    /// embedded where it travels on the wire, and any pairs it captures
    /// must match the strict parser's.
    fn assert_frame_scan_agreement(edges: &str) {
        let line = format!(
            r#"{{"v":1,"type":"request","id":"d","problem":{{"name":"weak_splitting"}},"instance":{{"kind":"bipartite","left":4,"right":4,"edges":{edges}}}}}"#
        );
        let plain = json::scan_top_level(&line);
        match json::scan_frame(&line) {
            Ok(scan) => {
                let plain = plain.expect("scan_frame accepted, scan_top_level rejected");
                assert_eq!(scan.fields, plain, "fused fields diverge on {edges:?}");
                if let Some(pairs) = &scan.edge_pairs {
                    assert_eq!(
                        &json::parse_edge_pairs(edges).expect("capture implies strict accept"),
                        pairs,
                        "captured pairs diverge on {edges:?}"
                    );
                    let instance = scan
                        .fields
                        .iter()
                        .find(|(k, _)| *k == "instance")
                        .expect("frame carries an instance")
                        .1;
                    assert_eq!(
                        scan.instance_fields,
                        Some(json::scan_top_level(instance).expect("instance scans")),
                        "captured instance fields diverge on {edges:?}"
                    );
                }
            }
            Err(e) => {
                let plain_err = plain.expect_err("scan_frame rejected, scan_top_level accepted");
                assert_eq!(e, plain_err, "errors diverge on {edges:?}");
            }
        }
    }

    /// Every character class an edge encoding (or near-miss) can use:
    /// digits, structure, whitespace, sign/float/exponent spellings, and
    /// one outright illegal byte.
    const ALPHABET: &[u8] = b"0123456789,[] -+.eEx";

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        // byte soup over the edge-list alphabet: mostly invalid inputs,
        // exercising every early-bail branch of the fast scanner
        #[test]
        fn random_soup_agrees(
            picks in proptest::collection::vec(0usize..ALPHABET.len(), 0..64)
        ) {
            let input: String = picks.iter().map(|&i| ALPHABET[i] as char).collect();
            assert_agreement(&input);
        }

        // structurally valid edge lists with random whitespace, then a
        // single-character substitution and deletion — near-valid inputs
        // probe the boundary between the fast path and the fallback
        #[test]
        fn perturbed_edge_lists_agree(
            (pairs, gaps, mutate, at, replacement) in (
                proptest::collection::vec((0u64..1u64 << 40, 0u64..1u64 << 40), 0..24),
                proptest::collection::vec(0usize..3, 1..16),
                0usize..2,
                0usize..4096,
                0usize..ALPHABET.len(),
            )
        ) {
            let mut encoded = String::from("[");
            for (i, (u, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    encoded.push(',');
                }
                let pad = " ".repeat(gaps[i % gaps.len()]);
                encoded.push_str(&format!("{pad}[{u},{pad}{v}]"));
            }
            encoded.push(']');
            assert_agreement(&encoded);
            if mutate == 1 {
                let at = at % encoded.len();
                let mut mutated: String = encoded
                    .char_indices()
                    .map(|(i, c)| if i == at { ALPHABET[replacement] as char } else { c })
                    .collect();
                assert_agreement(&mutated);
                // and a deletion at the same spot
                mutated.remove(at);
                assert_agreement(&mutated);
            }
        }
    }
}
