//! Doc-sync: every worked example in `docs/PROTOCOL.md` is replayed
//! through a real (timings-disabled) server and the committed response
//! must match byte for byte. The spec cannot drift from the code.

use splitting_server::{transport, wire, Server, ServerConfig, Submitted};
use std::path::Path;

struct Example {
    name: String,
    request: String,
    response: String,
}

/// Extracts `<!-- doc-sync: request NAME -->` / `response NAME` marker
/// pairs, each followed by a fenced json block.
fn parse_examples(doc: &str) -> Vec<Example> {
    let mut blocks: Vec<(String, String, String)> = Vec::new(); // (kind, name, line)
    let mut lines = doc.lines().peekable();
    while let Some(line) = lines.next() {
        let Some(marker) = line
            .trim()
            .strip_prefix("<!-- doc-sync: ")
            .and_then(|s| s.strip_suffix(" -->"))
        else {
            continue;
        };
        let (kind, name) = marker
            .split_once(' ')
            .unwrap_or_else(|| panic!("malformed doc-sync marker: {line}"));
        assert!(
            matches!(kind, "request" | "response"),
            "unknown doc-sync marker kind in: {line}"
        );
        assert_eq!(
            lines.next().map(str::trim),
            Some("```json"),
            "doc-sync marker {name} must be followed by a ```json block"
        );
        let payload = lines
            .next()
            .unwrap_or_else(|| panic!("{name}: missing example line"));
        assert_eq!(
            lines.next().map(str::trim),
            Some("```"),
            "doc-sync example {name} must be a single line"
        );
        blocks.push((kind.to_owned(), name.to_owned(), payload.to_owned()));
    }
    // pair up request/response by name, preserving document order
    let mut examples = Vec::new();
    for (kind, name, line) in &blocks {
        if kind != "request" {
            continue;
        }
        let response = blocks
            .iter()
            .find(|(k, n, _)| k == "response" && n == name)
            .unwrap_or_else(|| panic!("request {name} has no response block"))
            .2
            .clone();
        examples.push(Example {
            name: name.clone(),
            request: line.clone(),
            response,
        });
    }
    examples
}

#[test]
fn protocol_examples_replay_byte_identically() {
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));
    let examples = parse_examples(&doc);
    assert_eq!(
        examples.len(),
        20,
        "docs/PROTOCOL.md must carry one worked example per Problem variant, \
         the deadline-exceeded robustness example, the idempotent \
         first/retry pair, the instance-handle upload/solve/release \
         transcript, and the churn upload/solve/mutate/solve transcript"
    );

    // replay all requests in document order over one connection, in
    // lockstep (one in flight at a time) exactly like the generator
    // (`examples/protocol_examples.rs`): lockstep makes the idempotent
    // retry deterministic — its first submission has completed, so the
    // retry always answers from the cache with `"replayed":true`
    let server = Server::start(ServerConfig {
        record_timings: false,
        ..ServerConfig::default()
    });
    let (mut tx, mut rx) = server.connect().split();
    for e in &examples {
        let submitted = tx.submit_line(&e.request);
        assert!(
            matches!(submitted, Submitted::Queued | Submitted::Replied),
            "documented request `{}` was not accepted: {submitted:?}",
            e.name
        );
        let reply = rx.recv().expect("one reply per documented request");
        assert_eq!(
            reply, e.response,
            "documented response for `{}` has drifted from real output — \
             regenerate with `cargo run -p splitting-server --example protocol_examples`",
            e.name
        );
    }
    // the retry pair must really have exercised the cache path
    let replayed = examples
        .iter()
        .filter(|e| wire::split_reply(&e.response).is_some_and(|r| r.replayed))
        .count();
    assert_eq!(replayed, 1, "exactly the retry example is flagged replayed");
    tx.finish();
    assert!(rx.recv().is_none(), "no stray frames after the examples");
    server.shutdown();
}

/// Extracts the multi-line fenced block following a
/// `<!-- chaos-sync: NAME -->` marker.
fn parse_chaos_block(doc: &str, name: &str) -> String {
    let marker = format!("<!-- chaos-sync: {name} -->");
    let mut lines = doc.lines();
    lines
        .by_ref()
        .find(|l| l.trim() == marker)
        .unwrap_or_else(|| panic!("docs/PROTOCOL.md is missing the {marker} marker"));
    let fence = lines.next().map(str::trim);
    assert!(
        matches!(fence, Some("```json") | Some("```text")),
        "{marker} must be followed by a fenced block, got {fence:?}"
    );
    let mut block = String::new();
    for line in lines {
        if line.trim() == "```" {
            return block;
        }
        block.push_str(line);
        block.push('\n');
    }
    panic!("{marker} block is unterminated");
}

#[test]
fn chaos_survival_transcript_replays_byte_identically() {
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));
    let input = parse_chaos_block(&doc, "input");
    let documented = parse_chaos_block(&doc, "output");

    // the exact fault schedule of `examples/protocol_examples.rs` —
    // keep in lockstep with `transcript_chaos_config` there
    let server = Server::start(ServerConfig {
        workers: 1,
        record_timings: false,
        chaos: Some(splitting_server::ChaosConfig {
            seed: 51,
            worker_panic: 0.2,
            worker_stall: 0.0,
            stall_ms: 1,
            torn_frame: 0.1,
            drop_connection: 0.0,
            process_kill: 0.0,
        }),
        ..ServerConfig::default()
    });
    let mut out = Vec::new();
    let outcome = transport::serve_stream(&server, input.as_bytes(), &mut out);
    server.shutdown();

    // the transcript ends in a torn frame, so the generator appended a
    // newline to close the fenced block — compare modulo that newline
    let mut got = String::from_utf8(out).unwrap();
    if !got.ends_with('\n') {
        got.push('\n');
    }
    assert_eq!(
        got, documented,
        "the chaos-survival transcript has drifted from real output — \
         regenerate with `cargo run -p splitting-server --example protocol_examples`"
    );
    let err = outcome.expect_err("the documented schedule tears frame 5");
    assert!(
        err.to_string().contains("chaos: injected torn frame"),
        "unexpected teardown cause: {err}"
    );
}

#[test]
fn documented_error_kind_table_matches_the_taxonomy() {
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(doc_path).unwrap();
    // every kind the taxonomy can produce must appear in the spec
    for kind in [
        "invalid-request",
        "unsupported-regime",
        "randomized-failure",
        "certification-unavailable",
        "certificate-violation",
        "budget-exceeded",
        "overloaded",
        "deadline-exceeded",
        "internal-panic",
    ] {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "docs/PROTOCOL.md does not document error kind {kind}"
        );
    }
}
