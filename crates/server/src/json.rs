//! A minimal, strict, serde-free JSON parser for the wire protocol.
//!
//! The repo renders JSON lines without serde (`splitting_api`'s
//! `to_json_line` family); this module is the matching ingest half. It is
//! deliberately strict — no trailing commas, no comments, no `NaN` /
//! `Infinity` tokens, a hard nesting-depth cap — because every accepted
//! frame must round-trip through the renderer byte-for-byte.
//!
//! Two entry points:
//!
//! * [`parse`] — full recursive parse into a [`Json`] tree;
//! * [`scan_top_level`] — a cheap single-pass scanner that splits one
//!   top-level object into `(key, raw-value-slice)` pairs without
//!   building values. Ingest uses it to read the envelope fields
//!   (`type`, `id`, `priority`) of a large request frame without paying
//!   for the instance payload; workers and tests use the slices to
//!   extract embedded payloads byte-exactly.

use std::fmt;

/// Maximum nesting depth accepted by the parser and the scanner. Frames
/// in this protocol nest at most ~4 levels; the cap only guards stack
/// safety against adversarial input.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see [`Number`] for integer-exactness guarantees).
    Number(Number),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source field order (duplicate keys are rejected at
    /// parse time).
    Object(Vec<(String, Json)>),
}

/// A JSON number. Unsigned and signed integers that fit in 64 bits are
/// kept exact (the protocol's `seed` field spans all of `u64`); anything
/// else falls back to `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer ≤ `u64::MAX`, exact.
    Unsigned(u64),
    /// A negative integer ≥ `i64::MIN`, exact.
    Signed(i64),
    /// Everything else (fractions, exponents, out-of-range integers).
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Unsigned(u) => u as f64,
            Number::Signed(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64`, if it is exactly a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::Unsigned(u) => Some(u),
            Number::Signed(_) => None,
            Number::Float(f) if f >= 0.0 && f <= u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `usize`, if it is exactly a non-negative integer in
    /// range.
    pub fn as_usize(self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as `u32`, if it is exactly a non-negative integer in
    /// range.
    pub fn as_u32(self) -> Option<u32> {
        self.as_u64().and_then(|u| u32::try_from(u).ok())
    }
}

impl Json {
    /// The string contents, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this value is one.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool, when this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The fields, when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field by key, when this value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name for the value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {}",
                b as char,
                self.found_desc()
            ))
        }
    }

    fn found_desc(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("'{}'", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".into(),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => Ok(Json::Number(self.number()?)),
            _ => self.err(format!("expected a value, found {}", self.found_desc())),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return self.err(format!("duplicate key \"{key}\""));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return self.err(format!("expected ',' or '}}', found {}", self.found_desc())),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.err(format!("expected ',' or ']', found {}", self.found_desc())),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                match char::from_u32(c) {
                                    Some(c) => out.push(c),
                                    None => return self.err("invalid surrogate pair"),
                                }
                            } else {
                                match char::from_u32(cp) {
                                    Some(c) => out.push(c),
                                    None => return self.err("invalid \\u escape"),
                                }
                            }
                        }
                        _ => return self.err(format!("invalid escape '\\{}'", esc as char)),
                    }
                }
                0x00..=0x1f => return self.err("unescaped control character in string"),
                _ => {
                    // multi-byte UTF-8: the input is already a valid &str,
                    // so reassemble the char from its leading byte
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .expect("input is valid UTF-8");
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return self.err("truncated \\u escape");
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return self.err("invalid \\u escape digit"),
            };
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Number, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // integer part: one zero, or a nonzero digit followed by digits
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("malformed number"),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("malformed number: digits required after '.'");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("malformed number: digits required in exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Number::Signed(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Number::Unsigned(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Number::Float(f)),
            _ => self.err("number out of range"),
        }
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after the value");
    }
    Ok(v)
}

// ----------------------------------------------------------- skip scanner

/// Splits one top-level JSON object into `(key, raw-value)` pairs without
/// building any values — nested payloads are brace-matched and returned
/// as input slices. This is the cheap path ingest takes to read a frame's
/// envelope (a few small fields) without parsing a multi-megabyte
/// instance, and the byte-exact path tests take to extract embedded
/// sub-objects.
///
/// The scanner validates structure (string escapes, balanced nesting,
/// comma placement, depth) but not the grammar inside skipped values —
/// anything the server goes on to use is re-parsed strictly with
/// [`parse`].
///
/// # Errors
///
/// [`ParseError`] when the input is not a single top-level object.
pub fn scan_top_level(input: &str) -> Result<Vec<(&str, &str)>, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields: Vec<(&str, &str)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key_start = p.pos;
            skip_string(&mut p)?;
            // raw key contents, escapes unresolved — protocol keys are
            // plain ASCII identifiers, so escaped keys simply fail the
            // exact-match lookups downstream (reported as unknown fields)
            let key = &input[key_start + 1..p.pos - 1];
            if fields.iter().any(|(k, _)| *k == key) {
                return p.err(format!("duplicate key \"{key}\""));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value_start = p.pos;
            skip_value(&mut p, 0)?;
            let raw = &input[value_start..p.pos];
            fields.push((key, raw));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => {
                    return p.err(format!("expected ',' or '}}', found {}", p.found_desc()));
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != bytes.len() {
        return p.err("trailing characters after the object");
    }
    Ok(fields)
}

fn skip_string(p: &mut Parser<'_>) -> Result<(), ParseError> {
    p.expect(b'"')?;
    loop {
        match p.peek() {
            None => return p.err("unterminated string"),
            Some(b'"') => {
                p.pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                p.pos += 1;
                if p.peek().is_none() {
                    return p.err("unterminated escape");
                }
                p.pos += 1;
            }
            Some(_) => p.pos += 1,
        }
    }
}

fn skip_value(p: &mut Parser<'_>, depth: usize) -> Result<(), ParseError> {
    if depth > MAX_DEPTH {
        return p.err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    p.skip_ws();
    match p.peek() {
        Some(b'"') => skip_string(p),
        Some(b'{') => {
            p.pos += 1;
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.pos += 1;
                return Ok(());
            }
            loop {
                p.skip_ws();
                skip_string(p)?;
                p.skip_ws();
                p.expect(b':')?;
                skip_value(p, depth + 1)?;
                p.skip_ws();
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b'}') => {
                        p.pos += 1;
                        return Ok(());
                    }
                    _ => return p.err(format!("expected ',' or '}}', found {}", p.found_desc())),
                }
            }
        }
        Some(b'[') => {
            p.pos += 1;
            p.skip_ws();
            if p.peek() == Some(b']') {
                p.pos += 1;
                return Ok(());
            }
            loop {
                skip_value(p, depth + 1)?;
                p.skip_ws();
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b']') => {
                        p.pos += 1;
                        return Ok(());
                    }
                    _ => return p.err(format!("expected ',' or ']', found {}", p.found_desc())),
                }
            }
        }
        Some(_) => {
            // literal or number: consume until a structural delimiter
            let start = p.pos;
            while let Some(b) = p.peek() {
                if matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                    break;
                }
                p.pos += 1;
            }
            if p.pos == start {
                return p.err("expected a value");
            }
            Ok(())
        }
        None => p.err("expected a value, found end of input"),
    }
}

/// Parses a JSON array of `[u, v]` integer pairs directly into endpoint
/// tuples — the hot path for instance edge lists, which dominate request
/// frames by bytes. Strict: every element must be a two-element array of
/// non-negative integers.
///
/// # Errors
///
/// [`ParseError`] on anything that is not exactly a pair list.
pub fn parse_edge_pairs(input: &str) -> Result<Vec<(usize, usize)>, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    p.skip_ws();
    p.expect(b'[')?;
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            p.expect(b'[')?;
            p.skip_ws();
            let u = pair_int(&mut p)?;
            p.skip_ws();
            p.expect(b',')?;
            p.skip_ws();
            let v = pair_int(&mut p)?;
            p.skip_ws();
            p.expect(b']')?;
            out.push((u, v));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b']') => {
                    p.pos += 1;
                    break;
                }
                _ => return p.err(format!("expected ',' or ']', found {}", p.found_desc())),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after the edge list");
    }
    Ok(out)
}

fn pair_int(p: &mut Parser<'_>) -> Result<usize, ParseError> {
    let n = p.number()?;
    match n.as_usize() {
        Some(u) => Ok(u),
        None => p.err("edge endpoints must be non-negative integers"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::Number(Number::Unsigned(42)));
        assert_eq!(parse("-7").unwrap(), Json::Number(Number::Signed(-7)));
        assert_eq!(parse("1.5e3").unwrap(), Json::Number(Number::Float(1500.0)));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".into()));
    }

    #[test]
    fn u64_seeds_stay_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_number().unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn objects_keep_order_and_reject_duplicates() {
        let v = parse(r#"{"b":1,"a":[2,3],"c":{"d":null}}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "NaN",
            "Infinity",
            "01",
            "1.",
            "+1",
            "\"unterminated",
            "\"bad\\q\"",
            "{\"a\":1}x",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_cap_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        assert!(scan_top_level(&format!("{{\"a\":{deep}}}")).is_err());
    }

    #[test]
    fn unicode_and_surrogates() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::String("é".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::String("😀".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
        assert_eq!(parse("\"héllo\"").unwrap(), Json::String("héllo".into()));
    }

    #[test]
    fn scanner_returns_raw_slices() {
        let line = r#"{"v":1,"type":"request","instance":{"kind":"host","edges":[[0,1]]}}"#;
        let fields = scan_top_level(line).unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], ("v", "1"));
        assert_eq!(fields[1], ("type", "\"request\""));
        assert_eq!(
            fields[2],
            ("instance", r#"{"kind":"host","edges":[[0,1]]}"#)
        );
    }

    #[test]
    fn scanner_rejects_garbage() {
        for bad in ["", "[]", "{\"a\" 1}", "{\"a\":1} trailing", "{\"a\":{}"] {
            assert!(scan_top_level(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn edge_pairs_fast_path() {
        assert_eq!(parse_edge_pairs("[]").unwrap(), vec![]);
        assert_eq!(
            parse_edge_pairs("[[0,1],[2, 3]]").unwrap(),
            vec![(0, 1), (2, 3)]
        );
        for bad in [
            "[[0]]",
            "[[0,1,2]]",
            "[[0,-1]]",
            "[[0,1.5]]",
            "[0,1]",
            "[[0,1]],",
        ] {
            assert!(parse_edge_pairs(bad).is_err(), "accepted {bad:?}");
        }
    }
}
