//! A minimal, strict, serde-free JSON parser for the wire protocol.
//!
//! The repo renders JSON lines without serde (`splitting_api`'s
//! `to_json_line` family); this module is the matching ingest half. It is
//! deliberately strict — no trailing commas, no comments, no `NaN` /
//! `Infinity` tokens, a hard nesting-depth cap — because every accepted
//! frame must round-trip through the renderer byte-for-byte.
//!
//! Two entry points:
//!
//! * [`parse`] — full recursive parse into a [`Json`] tree;
//! * [`scan_top_level`] — a cheap single-pass scanner that splits one
//!   top-level object into `(key, raw-value-slice)` pairs without
//!   building values. Ingest uses it to read the envelope fields
//!   (`type`, `id`, `priority`) of a large request frame without paying
//!   for the instance payload; workers and tests use the slices to
//!   extract embedded payloads byte-exactly.

use std::fmt;

/// Maximum nesting depth accepted by the parser and the scanner. Frames
/// in this protocol nest at most ~4 levels; the cap only guards stack
/// safety against adversarial input.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see [`Number`] for integer-exactness guarantees).
    Number(Number),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source field order (duplicate keys are rejected at
    /// parse time).
    Object(Vec<(String, Json)>),
}

/// A JSON number. Unsigned and signed integers that fit in 64 bits are
/// kept exact (the protocol's `seed` field spans all of `u64`); anything
/// else falls back to `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer ≤ `u64::MAX`, exact.
    Unsigned(u64),
    /// A negative integer ≥ `i64::MIN`, exact.
    Signed(i64),
    /// Everything else (fractions, exponents, out-of-range integers).
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Unsigned(u) => u as f64,
            Number::Signed(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64`, if it is exactly a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::Unsigned(u) => Some(u),
            Number::Signed(_) => None,
            // `u64::MAX as f64` rounds up to 2^64 exactly, so the bound
            // must be strict: `f as u64` would silently saturate any
            // float in [2^64 - 1, 2^64] to u64::MAX.
            Number::Float(f) if f >= 0.0 && f < u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `usize`, if it is exactly a non-negative integer in
    /// range.
    pub fn as_usize(self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as `u32`, if it is exactly a non-negative integer in
    /// range.
    pub fn as_u32(self) -> Option<u32> {
        self.as_u64().and_then(|u| u32::try_from(u).ok())
    }
}

impl Json {
    /// The string contents, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this value is one.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool, when this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The fields, when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field by key, when this value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name for the value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {}",
                b as char,
                self.found_desc()
            ))
        }
    }

    fn found_desc(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("'{}'", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".into(),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => Ok(Json::Number(self.number()?)),
            _ => self.err(format!("expected a value, found {}", self.found_desc())),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return self.err(format!("duplicate key \"{key}\""));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return self.err(format!("expected ',' or '}}', found {}", self.found_desc())),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.err(format!("expected ',' or ']', found {}", self.found_desc())),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                match char::from_u32(c) {
                                    Some(c) => out.push(c),
                                    None => return self.err("invalid surrogate pair"),
                                }
                            } else {
                                match char::from_u32(cp) {
                                    Some(c) => out.push(c),
                                    None => return self.err("invalid \\u escape"),
                                }
                            }
                        }
                        _ => return self.err(format!("invalid escape '\\{}'", esc as char)),
                    }
                }
                0x00..=0x1f => return self.err("unescaped control character in string"),
                _ => {
                    // multi-byte UTF-8: the input is already a valid &str,
                    // so reassemble the char from its leading byte
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .expect("input is valid UTF-8");
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return self.err("truncated \\u escape");
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return self.err("invalid \\u escape digit"),
            };
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Number, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // integer part: one zero, or a nonzero digit followed by digits
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("malformed number"),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("malformed number: digits required after '.'");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("malformed number: digits required in exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Number::Signed(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Number::Unsigned(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Number::Float(f)),
            _ => self.err("number out of range"),
        }
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after the value");
    }
    Ok(v)
}

// ----------------------------------------------------------- skip scanner

/// Splits one top-level JSON object into `(key, raw-value)` pairs without
/// building any values — nested payloads are brace-matched and returned
/// as input slices. This is the cheap path ingest takes to read a frame's
/// envelope (a few small fields) without parsing a multi-megabyte
/// instance, and the byte-exact path tests take to extract embedded
/// sub-objects.
///
/// The scanner validates structure (string escapes, balanced nesting,
/// comma placement, depth) but not the grammar inside skipped values —
/// number-only arrays in particular are skipped by a byte-class loop
/// that checks bracket balance alone, so comma placement inside them is
/// only judged when the value is used. Anything the server goes on to
/// use is re-parsed strictly with [`parse`] or the edge parsers.
///
/// # Errors
///
/// [`ParseError`] when the input is not a single top-level object.
pub fn scan_top_level(input: &str) -> Result<Vec<(&str, &str)>, ParseError> {
    scan_top_level_impl(input, None)
}

/// [`scan_top_level`] fused with the zero-copy edge scanner: while
/// skipping the value of a top-level `"edges"` key, the canonical
/// `[[a,b],...]` fast grammar is parsed in the same traversal, so the
/// hot instance-ingest path touches the edge bytes once instead of
/// twice (skip, then re-scan). The second element is `Some(pairs)` when
/// the fast grammar served the edge list; `None` means either there was
/// no `edges` key or its spelling was exotic — the caller falls back to
/// [`scan_edge_pairs`] on the returned raw slice, whose acceptance,
/// rejection, and offsets are byte-identical by construction.
///
/// # Errors
///
/// Exactly the [`ParseError`]s of [`scan_top_level`].
#[allow(clippy::type_complexity)]
pub fn scan_object_with_edges(
    input: &str,
) -> Result<(Vec<(&str, &str)>, Option<Vec<(usize, usize)>>), ParseError> {
    let mut captured = None;
    let fields = scan_top_level_impl(input, Some(Capture::Edges(&mut captured)))?;
    Ok((fields, captured))
}

/// One-pass scan of a request frame: the top-level fields, plus — when
/// the `"instance"` value is an object the fused grammar fully served —
/// that object's own fields and its parsed edge pairs. The ingest
/// thread uses this so the per-frame envelope scan it must do anyway
/// also harvests everything the worker would otherwise re-scan.
#[derive(Debug)]
pub struct FrameScan<'a> {
    /// Top-level `(key, raw-value)` pairs, exactly as [`scan_top_level`].
    pub fields: Vec<(&'a str, &'a str)>,
    /// The `"instance"` object's own `(key, raw-value)` pairs, when the
    /// fused scan served the whole object (canonical edge spelling, no
    /// structural surprises). `None` means the worker falls back to its
    /// own strict scan — behavior is byte-identical either way.
    pub instance_fields: Option<Vec<(&'a str, &'a str)>>,
    /// The instance's edge pairs; `Some` exactly when `instance_fields`
    /// is `Some` (the fused scan is all-or-nothing).
    pub edge_pairs: Option<Vec<(usize, usize)>>,
}

/// [`scan_top_level`] fused with instance-object and edge-list capture
/// — see [`FrameScan`]. Accepts and rejects byte-identically to
/// [`scan_top_level`]: capture is a side harvest, never a grammar
/// change.
///
/// # Errors
///
/// Exactly the [`ParseError`]s of [`scan_top_level`].
pub fn scan_frame(input: &str) -> Result<FrameScan<'_>, ParseError> {
    let mut captured = None;
    let fields = scan_top_level_impl(input, Some(Capture::Instance(&mut captured)))?;
    let (instance_fields, edge_pairs) = match captured {
        Some((fields, pairs)) => (Some(fields), Some(pairs)),
        None => (None, None),
    };
    Ok(FrameScan {
        fields,
        instance_fields,
        edge_pairs,
    })
}

/// What a fused scan harvests while skipping values it would have to
/// traverse anyway. `'m` borrows the caller's capture slot, `'a` the
/// input text.
enum Capture<'m, 'a> {
    /// Parse a top-level `"edges"` array on the canonical fast grammar.
    Edges(&'m mut Option<Vec<(usize, usize)>>),
    /// Scan a top-level `"instance"` object's fields and parse its
    /// `"edges"` on the canonical fast grammar, all-or-nothing.
    #[allow(clippy::type_complexity)]
    Instance(&'m mut Option<(Vec<(&'a str, &'a str)>, Vec<(usize, usize)>)>),
}

fn scan_top_level_impl<'a>(
    input: &'a str,
    mut capture: Option<Capture<'_, 'a>>,
) -> Result<Vec<(&'a str, &'a str)>, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields: Vec<(&str, &str)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key_start = p.pos;
            skip_string(&mut p)?;
            // raw key contents, escapes unresolved — protocol keys are
            // plain ASCII identifiers, so escaped keys simply fail the
            // exact-match lookups downstream (reported as unknown fields)
            let key = &input[key_start + 1..p.pos - 1];
            if fields.iter().any(|(k, _)| *k == key) {
                return p.err(format!("duplicate key \"{key}\""));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value_start = p.pos;
            // fused capture: consume the target value while locating its
            // end; a bail rewinds `pos` and the generic skip handles the
            // value like any other
            let mut skipped = false;
            match &mut capture {
                Some(Capture::Edges(cap)) if key == "edges" && p.peek() == Some(b'[') => {
                    let mut end = p.pos;
                    if let Some(pairs) = fast_pairs_core(bytes, &mut end) {
                        **cap = Some(pairs);
                        p.pos = end;
                        skipped = true;
                    }
                }
                Some(Capture::Instance(cap)) if key == "instance" && p.peek() == Some(b'{') => {
                    let start = p.pos;
                    match try_scan_object_with_edges(input, &mut p) {
                        Some(inner) => {
                            **cap = Some(inner);
                            skipped = true;
                        }
                        None => p.pos = start,
                    }
                }
                _ => {}
            }
            if !skipped {
                skip_value(&mut p, 0)?;
            }
            let raw = &input[value_start..p.pos];
            fields.push((key, raw));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => {
                    return p.err(format!("expected ',' or '}}', found {}", p.found_desc()));
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != bytes.len() {
        return p.err("trailing characters after the object");
    }
    Ok(fields)
}

fn skip_string(p: &mut Parser<'_>) -> Result<(), ParseError> {
    p.expect(b'"')?;
    loop {
        match p.peek() {
            None => return p.err("unterminated string"),
            Some(b'"') => {
                p.pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                p.pos += 1;
                if p.peek().is_none() {
                    return p.err("unterminated escape");
                }
                p.pos += 1;
            }
            Some(_) => p.pos += 1,
        }
    }
}

/// Byte classes for the numeric-array skip: 0 = body byte (digit,
/// separator, sign, exponent marker, dot, JSON whitespace), 1 = `[`,
/// 2 = `]`, 3 = anything else (string, object, literal — bail).
static NUMERIC_CLASS: [u8; 256] = {
    let mut table = [3u8; 256];
    let mut b = 0usize;
    while b < 256 {
        table[b] = match b as u8 {
            b'[' => 1,
            b']' => 2,
            b'0'..=b'9'
            | b','
            | b'-'
            | b'+'
            | b'.'
            | b'e'
            | b'E'
            | b' '
            | b'\t'
            | b'\n'
            | b'\r' => 0,
            _ => 3,
        };
        b += 1;
    }
    table
};

/// Attempts to skip an array whose bytes are all numbers, separators,
/// nested brackets, or whitespace, in one tight byte-class loop (a
/// single table lookup per byte, no bounds checks). Returns `false`
/// (with `p.pos` clobbered — the caller rewinds) on any other byte, on
/// nesting past [`MAX_DEPTH`], or on end of input, so exotic or
/// malformed content falls back to [`skip_value`]'s general loop.
fn skip_numeric_array(p: &mut Parser<'_>, depth: usize) -> bool {
    let mut open = 1usize;
    for (i, &b) in p.bytes[p.pos + 1..].iter().enumerate() {
        match NUMERIC_CLASS[b as usize] {
            0 => {}
            1 => {
                open += 1;
                if depth + open > MAX_DEPTH {
                    return false;
                }
            }
            2 => {
                open -= 1;
                if open == 0 {
                    p.pos += i + 2;
                    return true;
                }
            }
            _ => return false,
        }
    }
    false
}

/// Attempts to scan one object value (cursor on `{`) collecting its
/// `(key, raw-value)` pairs and fast-parsing its `"edges"` array, in
/// the same traversal that locates the object's end. Returns `None`
/// (with `p.pos` clobbered — the caller rewinds) on any structural
/// anomaly, duplicate key, exotic edge spelling, or missing edges key:
/// the generic [`skip_value`] then handles the value, and whoever
/// parses the slice later reproduces today's exact error or fallback.
#[allow(clippy::type_complexity)]
fn try_scan_object_with_edges<'a>(
    input: &'a str,
    p: &mut Parser<'a>,
) -> Option<(Vec<(&'a str, &'a str)>, Vec<(usize, usize)>)> {
    let bytes = p.bytes;
    p.pos += 1;
    let mut fields: Vec<(&'a str, &'a str)> = Vec::new();
    let mut pairs: Option<Vec<(usize, usize)>> = None;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
        return None; // an empty object has no edges to capture
    }
    loop {
        p.skip_ws();
        let key_start = p.pos;
        if skip_string(p).is_err() {
            return None;
        }
        let key = &input[key_start + 1..p.pos - 1];
        if fields.iter().any(|(k, _)| *k == key) {
            return None;
        }
        p.skip_ws();
        if p.peek() != Some(b':') {
            return None;
        }
        p.pos += 1;
        p.skip_ws();
        let value_start = p.pos;
        if key == "edges" {
            let mut end = p.pos;
            match fast_pairs_core(bytes, &mut end) {
                Some(got) => {
                    pairs = Some(got);
                    p.pos = end;
                }
                // exotic spelling: bail the whole capture so the strict
                // fallback path (and its fallback counter) runs as today
                None => return None,
            }
        } else if skip_value(p, 1).is_err() {
            return None;
        }
        fields.push((key, &input[value_start..p.pos]));
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            _ => return None,
        }
    }
    Some((fields, pairs?))
}

fn skip_value(p: &mut Parser<'_>, depth: usize) -> Result<(), ParseError> {
    if depth > MAX_DEPTH {
        return p.err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    p.skip_ws();
    match p.peek() {
        Some(b'"') => skip_string(p),
        Some(b'{') => {
            p.pos += 1;
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.pos += 1;
                return Ok(());
            }
            loop {
                p.skip_ws();
                skip_string(p)?;
                p.skip_ws();
                p.expect(b':')?;
                skip_value(p, depth + 1)?;
                p.skip_ws();
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b'}') => {
                        p.pos += 1;
                        return Ok(());
                    }
                    _ => return p.err(format!("expected ',' or '}}', found {}", p.found_desc())),
                }
            }
        }
        Some(b'[') => {
            // fast path for number-only arrays — the shape of instance
            // edge lists, which dominate request frames by bytes. A
            // byte-class loop tracks only bracket depth; anything that
            // is not a number/separator/whitespace byte (strings,
            // objects, literals) rewinds and takes the general loop.
            // Grammar inside either skip stays unvalidated, per this
            // scanner's contract — downstream strict parses decide.
            let start = p.pos;
            if skip_numeric_array(p, depth) {
                return Ok(());
            }
            p.pos = start;
            p.pos += 1;
            p.skip_ws();
            if p.peek() == Some(b']') {
                p.pos += 1;
                return Ok(());
            }
            loop {
                skip_value(p, depth + 1)?;
                p.skip_ws();
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b']') => {
                        p.pos += 1;
                        return Ok(());
                    }
                    _ => return p.err(format!("expected ',' or ']', found {}", p.found_desc())),
                }
            }
        }
        Some(_) => {
            // literal or number: consume until a structural delimiter
            let start = p.pos;
            while let Some(b) = p.peek() {
                if matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                    break;
                }
                p.pos += 1;
            }
            if p.pos == start {
                return p.err("expected a value");
            }
            Ok(())
        }
        None => p.err("expected a value, found end of input"),
    }
}

/// Parses a JSON array of `[u, v]` integer pairs directly into endpoint
/// tuples — the hot path for instance edge lists, which dominate request
/// frames by bytes. Strict: every element must be a two-element array of
/// non-negative integers.
///
/// # Errors
///
/// [`ParseError`] on anything that is not exactly a pair list.
pub fn parse_edge_pairs(input: &str) -> Result<Vec<(usize, usize)>, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    p.skip_ws();
    p.expect(b'[')?;
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            p.expect(b'[')?;
            p.skip_ws();
            let u = pair_int(&mut p)?;
            p.skip_ws();
            p.expect(b',')?;
            p.skip_ws();
            let v = pair_int(&mut p)?;
            p.skip_ws();
            p.expect(b']')?;
            out.push((u, v));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b']') => {
                    p.pos += 1;
                    break;
                }
                _ => return p.err(format!("expected ',' or ']', found {}", p.found_desc())),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after the edge list");
    }
    Ok(out)
}

fn pair_int(p: &mut Parser<'_>) -> Result<usize, ParseError> {
    let n = p.number()?;
    match n.as_usize() {
        Some(u) => Ok(u),
        None => p.err("edge endpoints must be non-negative integers"),
    }
}

// ------------------------------------------------------ zero-copy scanner

/// Parses an edge list with a zero-copy fast path: one tight byte loop
/// over the canonical shape `[[a,b],[c,d],...]` (plain decimal integers,
/// optional JSON whitespace) writing straight into a preallocated vector
/// — no `Json` tree, no per-number text slice. Anything outside that
/// shape — leading zeros, signs, fractions, exponents, out-of-range
/// endpoints, structural surprises — bails out and re-runs the strict
/// [`parse_edge_pairs`], so acceptance, rejection, and error offsets are
/// byte-identical to the strict parser by construction.
///
/// Returns the pairs plus `true` when the fast path served the input
/// (`false` means the strict fallback ran; the server counts those).
///
/// # Errors
///
/// Exactly the [`ParseError`]s of [`parse_edge_pairs`].
pub fn scan_edge_pairs(input: &str) -> Result<(Vec<(usize, usize)>, bool), ParseError> {
    match fast_edge_pairs(input) {
        Some(pairs) => Ok((pairs, true)),
        None => parse_edge_pairs(input).map(|pairs| (pairs, false)),
    }
}

/// The fast-path grammar: a strict subset of [`parse_edge_pairs`]'s.
/// `None` means "not in the subset" — the caller re-parses strictly,
/// which either accepts (float-typed integral endpoints like `2.0`) or
/// produces the canonical error. Never accepts anything strict rejects.
fn fast_edge_pairs(input: &str) -> Option<Vec<(usize, usize)>> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    fast_skip_ws(bytes, &mut pos);
    let out = fast_pairs_core(bytes, &mut pos)?;
    fast_skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return None;
    }
    Some(out)
}

#[inline]
fn fast_skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

/// Parses one `[[a,b],...]` array of canonical decimal pairs starting at
/// `*pos` (which must point at the opening `[`), consuming exactly
/// through the matching `]`. Shared by the standalone fast path and the
/// fused object scan, so both accept the identical grammar subset.
fn fast_pairs_core(bytes: &[u8], pos: &mut usize) -> Option<Vec<(usize, usize)>> {
    #[inline]
    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        fast_skip_ws(bytes, pos);
    }
    #[inline]
    fn int(bytes: &[u8], pos: &mut usize) -> Option<usize> {
        let first = *bytes.get(*pos)?;
        if !first.is_ascii_digit() {
            return None;
        }
        *pos += 1;
        if first == b'0' {
            // a second digit would be a leading zero, which the strict
            // grammar rejects — bail so the error comes from there
            if bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                return None;
            }
            return Some(0);
        }
        let mut val = usize::from(first - b'0');
        while let Some(&b) = bytes.get(*pos) {
            if !b.is_ascii_digit() {
                break;
            }
            val = val.checked_mul(10)?.checked_add(usize::from(b - b'0'))?;
            *pos += 1;
        }
        Some(val)
    }

    let mut i = *pos;
    if *bytes.get(i)? != b'[' {
        return None;
    }
    i += 1;
    // canonical renderings spend ≥ 6 bytes per pair (`[a,b],`), so this
    // preallocation never reallocates on the hot path
    let mut out = Vec::with_capacity((bytes.len() - i) / 6 + 1);
    skip_ws(bytes, &mut i);
    if bytes.get(i) == Some(&b']') {
        i += 1;
    } else {
        loop {
            skip_ws(bytes, &mut i);
            if *bytes.get(i)? != b'[' {
                return None;
            }
            i += 1;
            skip_ws(bytes, &mut i);
            let u = int(bytes, &mut i)?;
            skip_ws(bytes, &mut i);
            if *bytes.get(i)? != b',' {
                return None;
            }
            i += 1;
            skip_ws(bytes, &mut i);
            let v = int(bytes, &mut i)?;
            skip_ws(bytes, &mut i);
            if *bytes.get(i)? != b']' {
                return None;
            }
            i += 1;
            out.push((u, v));
            skip_ws(bytes, &mut i);
            match *bytes.get(i)? {
                b',' => i += 1,
                b']' => {
                    i += 1;
                    break;
                }
                _ => return None,
            }
        }
    }
    *pos = i;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_scans_agree_with_the_plain_scanner() {
        let line = r#"{"v":1,"type":"request","id":"r","problem":{"name":"mis","base_degree":3},"instance":{"kind":"bipartite","left":3,"right":3,"edges":[[0,1],[2,0]]}}"#;
        let scan = scan_frame(line).unwrap();
        assert_eq!(scan.fields, scan_top_level(line).unwrap());
        assert_eq!(scan.edge_pairs, Some(vec![(0, 1), (2, 0)]));
        let instance = scan
            .fields
            .iter()
            .find(|(k, _)| *k == "instance")
            .unwrap()
            .1;
        assert_eq!(
            scan.instance_fields,
            Some(scan_top_level(instance).unwrap())
        );

        // the instance-level fused scan harvests the same pairs
        let (fields, pairs) = scan_object_with_edges(instance).unwrap();
        assert_eq!(fields, scan_top_level(instance).unwrap());
        assert_eq!(pairs, Some(vec![(0, 1), (2, 0)]));

        // exotic spelling: capture bails all-or-nothing, fields unchanged
        let exotic = line.replace("[2,0]", "[2,0.0]");
        let scan = scan_frame(&exotic).unwrap();
        assert_eq!(scan.fields, scan_top_level(&exotic).unwrap());
        assert!(scan.edge_pairs.is_none() && scan.instance_fields.is_none());

        // a duplicate key inside the instance bails capture but scans
        // (the plain scanner never dup-checks nested objects either)
        let dup = r#"{"instance":{"edges":[[0,1]],"edges":[[0,2]]}}"#;
        let scan = scan_frame(dup).unwrap();
        assert_eq!(scan.fields, scan_top_level(dup).unwrap());
        assert!(scan.edge_pairs.is_none());

        // malformed input errors identically
        let bad = r#"{"instance":{"kind":}}"#;
        assert_eq!(
            scan_frame(bad).unwrap_err(),
            scan_top_level(bad).unwrap_err()
        );
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::Number(Number::Unsigned(42)));
        assert_eq!(parse("-7").unwrap(), Json::Number(Number::Signed(-7)));
        assert_eq!(parse("1.5e3").unwrap(), Json::Number(Number::Float(1500.0)));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".into()));
    }

    #[test]
    fn u64_seeds_stay_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_number().unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn objects_keep_order_and_reject_duplicates() {
        let v = parse(r#"{"b":1,"a":[2,3],"c":{"d":null}}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "NaN",
            "Infinity",
            "01",
            "1.",
            "+1",
            "\"unterminated",
            "\"bad\\q\"",
            "{\"a\":1}x",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_cap_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        assert!(scan_top_level(&format!("{{\"a\":{deep}}}")).is_err());
    }

    #[test]
    fn unicode_and_surrogates() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::String("é".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::String("😀".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
        assert_eq!(parse("\"héllo\"").unwrap(), Json::String("héllo".into()));
    }

    #[test]
    fn scanner_returns_raw_slices() {
        let line = r#"{"v":1,"type":"request","instance":{"kind":"host","edges":[[0,1]]}}"#;
        let fields = scan_top_level(line).unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], ("v", "1"));
        assert_eq!(fields[1], ("type", "\"request\""));
        assert_eq!(
            fields[2],
            ("instance", r#"{"kind":"host","edges":[[0,1]]}"#)
        );
    }

    #[test]
    fn scanner_rejects_garbage() {
        for bad in ["", "[]", "{\"a\" 1}", "{\"a\":1} trailing", "{\"a\":{}"] {
            assert!(scan_top_level(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integer_accessors_hold_at_the_u64_boundary() {
        // `u64::MAX as f64` rounds up to 2^64; both it and the issue's
        // decimal form must be rejected, not saturated to u64::MAX
        let two64 = u64::MAX as f64;
        assert_eq!(Number::Float(two64).as_u64(), None);
        assert_eq!(Number::Float(two64).as_usize(), None);
        let n = parse("1.8446744073709552e19").unwrap().as_number().unwrap();
        assert_eq!(n.as_u64(), None);
        // u64::MAX itself is not f64-representable: its float spelling
        // also rounds to 2^64 and must be rejected on the float path
        let n = parse("18446744073709551615.0")
            .unwrap()
            .as_number()
            .unwrap();
        assert_eq!(n.as_u64(), None);
        // ...while the integer spelling stays exact
        let n = parse("18446744073709551615").unwrap().as_number().unwrap();
        assert_eq!(n.as_u64(), Some(u64::MAX));
        // MAX+1 overflows u64 and lands in the float branch → rejected
        let n = parse("18446744073709551616").unwrap().as_number().unwrap();
        assert_eq!(n.as_u64(), None);
        // nearest representable float below 2^64 is 2^64 - 2048: in range
        let below = 18_446_744_073_709_549_568.0_f64;
        assert!(below < two64);
        assert_eq!(
            Number::Float(below).as_u64(),
            Some(18_446_744_073_709_549_568)
        );
        // MAX-1 as integer stays exact
        let n = parse("18446744073709551614").unwrap().as_number().unwrap();
        assert_eq!(n.as_u64(), Some(u64::MAX - 1));
        // non-integers and negatives never pass
        assert_eq!(Number::Float(1.5).as_u64(), None);
        assert_eq!(Number::Float(-1.0).as_u64(), None);
        // as_u32 narrows with the same exactness
        assert_eq!(
            Number::Unsigned(u64::from(u32::MAX)).as_u32(),
            Some(u32::MAX)
        );
        assert_eq!(Number::Unsigned(u64::from(u32::MAX) + 1).as_u32(), None);
        assert_eq!(Number::Float(4_294_967_295.0).as_u32(), Some(u32::MAX));
        assert_eq!(Number::Float(4_294_967_296.0).as_u32(), None);
    }

    #[test]
    fn exponent_extremes_are_pinned() {
        // overflow to ±inf violates the strict contract: typed rejection
        for bad in ["1e999", "-1e999", "2e308", "123e100000"] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.reason, "number out of range", "{bad}");
        }
        // underflow rounds to 0.0 and is accepted
        assert_eq!(parse("1e-999").unwrap(), Json::Number(Number::Float(0.0)));
        // `-0` stays an exact signed integer, and signed numbers are
        // never valid edge endpoints
        assert_eq!(parse("-0").unwrap(), Json::Number(Number::Signed(0)));
        assert_eq!(Number::Signed(0).as_u64(), None);
        assert!(parse_edge_pairs("[[-0,1]]").is_err());
        // `-0.0` is a float equal to zero (IEEE) and converts to 0
        let n = parse("-0.0").unwrap().as_number().unwrap();
        assert_eq!(n, Number::Float(-0.0));
        assert_eq!(n.as_u64(), Some(0));
    }

    #[test]
    fn edge_pairs_fast_path() {
        assert_eq!(parse_edge_pairs("[]").unwrap(), vec![]);
        assert_eq!(
            parse_edge_pairs("[[0,1],[2, 3]]").unwrap(),
            vec![(0, 1), (2, 3)]
        );
        for bad in [
            "[[0]]",
            "[[0,1,2]]",
            "[[0,-1]]",
            "[[0,1.5]]",
            "[0,1]",
            "[[0,1]],",
        ] {
            assert!(parse_edge_pairs(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn fast_edge_scan_matches_the_strict_parser() {
        let cases = [
            "[]",
            "[[0,1]]",
            "[[0,1],[2, 3]]",
            " [ [ 12 , 7 ] ] ",
            "[[18446744073709551615,0]]",
            "[[18446744073709551616,0]]",
            "[[01,2]]",
            "[[+1,2]]",
            "[[1,2.0]]",
            "[[1,2e1]]",
            "[[-0,1]]",
            "[[1,2],]",
            "[[1]]",
            "[[1,2,3]]",
            "[1,2]",
            "[[1,2]]x",
            "[[1,2]",
            "",
            "[",
            "[[",
        ];
        for case in cases {
            let strict = parse_edge_pairs(case);
            let fast = scan_edge_pairs(case);
            match (&strict, &fast) {
                (Ok(a), Ok((b, _))) => assert_eq!(a, b, "{case:?}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "{case:?}"),
                _ => panic!("{case:?}: strict {strict:?} vs fast {fast:?}"),
            }
        }
        // the canonical rendering must ride the fast path...
        assert!(scan_edge_pairs("[[0,1],[2,3]]").unwrap().1);
        assert!(scan_edge_pairs("[]").unwrap().1);
        // ...and anything fancy falls back (still accepted, via strict)
        assert!(!scan_edge_pairs("[[0,1],[2,3.0]]").unwrap().1);
        assert!(!scan_edge_pairs("[[0,1],[2,2e1]]").unwrap().1);
    }
}
