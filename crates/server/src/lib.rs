//! # splitting-server — splitting-as-a-service (`splitd`)
//!
//! A long-lived job-queue service over the `splitting-api` boundary.
//! Clients speak a newline-delimited JSON wire protocol (specified in
//! `docs/PROTOCOL.md` and pinned by a doc-sync test); every request runs
//! through one global bounded [`queue::JobQueue`] feeding a fixed pool
//! of persistent workers — never a thread per request — and replies
//! stream back **in submission order**, each tagged with the client's
//! request id.
//!
//! The service adds scheduling, admission control, and framing around
//! the API; it never changes results: the solution payload embedded in a
//! reply frame is byte-for-byte the
//! [`Solution::to_json_line`](splitting_api::Solution::to_json_line) a
//! direct single-threaded [`Session::solve`](splitting_api::Session)
//! call produces (asserted across the whole scenario corpus by the
//! conformance harness's `server` group).
//!
//! Layering:
//!
//! * [`json`] — strict, dependency-free JSON parsing and skip-scanning;
//! * [`wire`] — frame schemas, the request codec, reply assembly;
//! * [`queue`] — the bounded three-lane priority queue;
//! * [`journal`] — crash-safe write-ahead journal (`splitd --journal`);
//! * [`server`] — worker pool, connections, ordered reporting;
//! * [`transport`] — stdio / Unix-socket / TCP byte-stream pumps;
//! * [`chaos`] — deterministic seeded fault injection (test/bench hook).
//!
//! Robustness: requests may carry a wall-clock `deadline_ms` budget,
//! enforced in-queue (expired jobs become typed `deadline-exceeded`
//! error frames without costing a solve) and in-solve (workers abandon
//! over-budget solves at cooperative cancellation checkpoints and
//! return to the pool). Slow reply consumers are evicted after a
//! bounded write timeout — the connection drops, the server never
//! wedges — and [`Server::shutdown`]/[`Server::drain`] are bounded by a
//! drain deadline so the daemon always terminates.
//!
//! Durability: with `splitd --journal PATH`, every admitted request is
//! recorded in a checksummed write-ahead [`journal`] before it is
//! queued and marked complete when its reply is handed to delivery, so
//! a `kill -9` loses zero admitted work — on restart the incomplete
//! tail is re-enqueued in admission order and a torn final record is
//! truncated. Requests may carry an `idempotency_key`: a retry of a
//! completed key is answered from a bounded reply cache, byte-identical
//! and flagged `"replayed":true`, instead of being solved twice.
//!
//! # Example
//!
//! ```
//! use splitting_server::{Server, ServerConfig, Priority};
//! use splitting_api::{Problem, Request};
//! use splitgraph::generators;
//!
//! let server = Server::start(ServerConfig::default());
//! let (mut tx, mut rx) = server.connect().split();
//! tx.submit_request(
//!     "job-1",
//!     Priority::Normal,
//!     Request::new(Problem::Mis { base_degree: Some(8) }, generators::cycle(8).unwrap()),
//! );
//! tx.finish();
//! let frame = rx.recv().expect("one reply per request");
//! assert!(frame.contains("\"type\":\"solution\""));
//! assert!(frame.contains("\"id\":\"job-1\""));
//! server.shutdown();
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod journal;
pub mod json;
pub mod queue;
pub mod server;
pub mod transport;
pub mod wire;

pub use chaos::ChaosConfig;
pub use journal::{FsyncPolicy, Journal, JournalError, JournalStats};
pub use server::{
    Admission, Connection, FrameReceiver, Polled, Server, ServerConfig, Submitted, Submitter,
};
pub use wire::{Priority, Reply, StatsSnapshot, Timing, PROTOCOL_VERSION};
