//! Byte-stream transports for the wire protocol: stdio, Unix sockets,
//! and TCP.
//!
//! A transport is thin by design: it pumps lines from a reader into a
//! [`Submitter`] on one thread and drains the
//! [`FrameReceiver`](crate::FrameReceiver) into a writer on another.
//! All scheduling lives in the shared [`Server`]
//! pool, so a transport never spawns per-request threads — only the two
//! per-*connection* pump threads.

use crate::server::{Server, Submitted, Submitter};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::Arc;
use std::thread;

/// What one served connection did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Non-blank input lines consumed.
    pub lines_in: u64,
    /// Reply frames written.
    pub replies_out: u64,
}

fn pump_lines(submitter: &mut Submitter, mut input: impl BufRead) -> io::Result<u64> {
    let mut lines = 0;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // read raw bytes: a line of invalid UTF-8 must become a typed
        // error frame, not a torn-down connection
        if input.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        match submitter.submit_bytes(&buf) {
            Submitted::Skipped => {}
            Submitted::Shutdown => {
                lines += 1;
                break;
            }
            Submitted::Queued | Submitted::Replied => lines += 1,
        }
    }
    Ok(lines)
}

/// Serves one already-open byte stream: reads newline-delimited frames
/// from `input` until EOF or a `shutdown` frame, writes reply frames to
/// `output` in submission order, and returns once every admitted
/// request has been answered.
///
/// # Errors
///
/// Propagates I/O errors from either side; the ingest side always
/// signals completion first so the reporting side cannot hang.
pub fn serve_stream(
    server: &Server,
    input: impl BufRead + Send,
    mut output: impl Write,
) -> io::Result<ServeSummary> {
    let (mut submitter, receiver) = server.connect().split();
    thread::scope(|scope| {
        let reader = scope.spawn(move || {
            let result = pump_lines(&mut submitter, input);
            // even on a read error, close out the reporting stream so
            // the writer below terminates
            submitter.finish();
            result
        });
        let mut replies_out = 0;
        for frame in receiver {
            output.write_all(frame.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            replies_out += 1;
        }
        let lines_in = reader.join().expect("ingest thread panicked")?;
        Ok(ServeSummary {
            lines_in,
            replies_out,
        })
    })
}

/// Serves standard input/output — the `splitd` default. Returns at EOF
/// or on a `shutdown` frame.
///
/// # Errors
///
/// Propagates I/O errors from either pipe.
pub fn serve_stdio(server: &Server) -> io::Result<ServeSummary> {
    // Stdin's own lock is not Send; a BufReader over the handle is
    let stdin = BufReader::new(io::stdin());
    let stdout = io::stdout().lock();
    serve_stream(server, stdin, BufWriter::new(stdout))
}

fn spawn_connection<S>(server: Arc<Server>, stream: S)
where
    S: io::Read + io::Write + Send + Sync + 'static,
    for<'a> &'a S: io::Read + io::Write,
{
    thread::spawn(move || {
        let reader = BufReader::new(&stream);
        let writer = BufWriter::new(&stream);
        if let Err(e) = serve_stream(&server, reader, writer) {
            eprintln!("splitd: connection error: {e}");
        }
    });
}

/// Accept loop over a Unix-domain socket at `path` (pre-existing files
/// are replaced). Each accepted connection gets its own pump threads;
/// all requests share the server's worker pool. Runs until accept
/// fails.
///
/// # Errors
///
/// Propagates bind/accept errors.
pub fn serve_unix(server: Arc<Server>, path: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("splitd: listening on unix socket {}", path.display());
    for stream in listener.incoming() {
        spawn_connection(Arc::clone(&server), stream?);
    }
    Ok(())
}

/// Accept loop over TCP at `addr` (e.g. `127.0.0.1:7317`). Runs until
/// accept fails.
///
/// # Errors
///
/// Propagates bind/accept errors.
pub fn serve_tcp(server: Arc<Server>, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("splitd: listening on tcp {}", listener.local_addr()?);
    for stream in listener.incoming() {
        spawn_connection(Arc::clone(&server), stream?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::wire::split_reply;

    fn quiet_server() -> Server {
        Server::start(ServerConfig {
            record_timings: false,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn stream_transport_round_trips_lines() {
        let server = quiet_server();
        let input = concat!(
            r#"{"v":1,"type":"request","id":"a","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}"#,
            "\n",
            "\n",
            r#"{"v":1,"type":"ping"}"#,
            "\n",
            r#"{"v":1,"type":"shutdown"}"#,
            "\n",
            r#"{"v":1,"type":"request","id":"after-shutdown"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_stream(&server, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.lines_in, 3, "shutdown stops ingest");
        assert_eq!(summary.replies_out, 2);
        let text = String::from_utf8(out).unwrap();
        let frames: Vec<&str> = text.lines().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(split_reply(frames[0]).unwrap().frame_type, "solution");
        assert_eq!(split_reply(frames[1]).unwrap().frame_type, "heartbeat");
        server.shutdown();
    }

    #[test]
    fn tcp_transport_serves_concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let server = Arc::new(quiet_server());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    spawn_connection(Arc::clone(&server), stream.unwrap());
                }
            });
        }
        let clients: Vec<_> = (0..3)
            .map(|c| {
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let line = format!(
                        r#"{{"v":1,"type":"request","id":"c{c}","problem":{{"name":"mis","base_degree":8}},"instance":{{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}}}"#
                    );
                    stream.write_all(line.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    stream
                        .write_all(br#"{"v":1,"type":"shutdown"}"#)
                        .unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut reply = String::new();
                    BufReader::new(&stream).read_line(&mut reply).unwrap();
                    let parsed = split_reply(reply.trim_end()).unwrap();
                    assert_eq!(parsed.frame_type, "solution");
                    assert_eq!(parsed.id, format!("c{c}"));
                })
            })
            .collect();
        for client in clients {
            client.join().unwrap();
        }
    }
}
