//! Byte-stream transports for the wire protocol: stdio, Unix sockets,
//! and TCP.
//!
//! A transport is thin by design: it pumps lines from a reader into a
//! [`Submitter`] on one thread and drains the
//! [`FrameReceiver`](crate::FrameReceiver) into a writer on another.
//! All scheduling lives in the shared [`Server`]
//! pool, so a transport never spawns per-request threads — only the two
//! per-*connection* pump threads.

use crate::chaos::{self, ChaosConfig};
use crate::server::{Server, Submitted, Submitter};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::Arc;
use std::thread;

/// What one served connection did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Non-blank input lines consumed.
    pub lines_in: u64,
    /// Reply frames written.
    pub replies_out: u64,
}

fn pump_lines(submitter: &mut Submitter, mut input: impl BufRead) -> io::Result<u64> {
    let mut lines = 0;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // read raw bytes: a line of invalid UTF-8 must become a typed
        // error frame, not a torn-down connection
        if input.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        match submitter.submit_bytes(&buf) {
            Submitted::Skipped => {}
            Submitted::Shutdown => {
                lines += 1;
                break;
            }
            Submitted::Queued | Submitted::Replied => lines += 1,
        }
    }
    Ok(lines)
}

/// Writes one reply frame, applying the seeded chaos seams when armed:
/// the frame may be torn (a prefix written, then the write fails) or
/// the connection dropped before the write. `index` is the frame's
/// position in this connection's reply stream, which is what keys the
/// injection draw.
fn write_frame(
    output: &mut impl Write,
    frame: &str,
    index: u64,
    chaos: Option<&ChaosConfig>,
) -> io::Result<()> {
    if let Some(c) = chaos {
        if c.fires(c.drop_connection, chaos::SITE_DROP_CONNECTION, 0, index) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "chaos: injected connection drop",
            ));
        }
        if c.fires(c.torn_frame, chaos::SITE_TORN_FRAME, 0, index) {
            let cut = (frame.len() / 2).max(1);
            output.write_all(&frame.as_bytes()[..cut])?;
            output.flush()?;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: injected torn frame",
            ));
        }
    }
    output.write_all(frame.as_bytes())?;
    output.write_all(b"\n")?;
    output.flush()?;
    Ok(())
}

/// Serves one already-open byte stream: reads newline-delimited frames
/// from `input` until EOF or a `shutdown` frame, writes reply frames to
/// `output` in submission order, and returns once every admitted
/// request has been answered.
///
/// # Errors
///
/// Propagates I/O errors from either side; the ingest side always
/// signals completion first so the reporting side cannot hang.
pub fn serve_stream(
    server: &Server,
    input: impl BufRead + Send,
    output: impl Write,
) -> io::Result<ServeSummary> {
    serve_stream_with(server, input, output, || {})
}

/// [`serve_stream`] with a teardown hook, invoked exactly once if the
/// writer fails. Socket transports pass a closure that shuts the stream
/// down in both directions, which unblocks a reader parked in
/// `read_until` — so a dead writer ends the whole connection promptly
/// instead of wedging the ingest thread (and this function) until the
/// client happens to hang up.
///
/// After a write failure the reporting stream is still drained to
/// completion (frames are discarded), so workers never block on a
/// connection whose output is gone.
///
/// # Errors
///
/// A write error takes precedence; otherwise read errors propagate.
pub fn serve_stream_with(
    server: &Server,
    input: impl BufRead + Send,
    mut output: impl Write,
    teardown: impl FnOnce(),
) -> io::Result<ServeSummary> {
    let chaos = server.config().chaos.clone();
    let (mut submitter, receiver) = server.connect().split();
    thread::scope(|scope| {
        let reader = scope.spawn(move || {
            let result = pump_lines(&mut submitter, input);
            // even on a read error, close out the reporting stream so
            // the writer below terminates
            submitter.finish();
            result
        });
        let mut replies_out = 0;
        let mut write_error: Option<io::Error> = None;
        let mut teardown = Some(teardown);
        for frame in receiver {
            if write_error.is_some() {
                // the output is gone: keep draining so the connection
                // winds down cleanly, but write nothing further
                continue;
            }
            match write_frame(&mut output, &frame, replies_out, chaos.as_ref()) {
                Ok(()) => replies_out += 1,
                Err(e) => {
                    write_error = Some(e);
                    if let Some(t) = teardown.take() {
                        t();
                    }
                }
            }
        }
        // the reply stream ending because the server "died" (seeded
        // process kill / `Server::halt`) is a failed connection, not a
        // short-but-clean one: surface a distinct error and fire the
        // teardown so a socket's parked reader unblocks
        if write_error.is_none() && server.killed() {
            write_error = Some(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "chaos: injected process kill",
            ));
            if let Some(t) = teardown.take() {
                t();
            }
        }
        let lines_in = reader.join().expect("ingest thread panicked");
        if let Some(e) = write_error {
            return Err(e);
        }
        Ok(ServeSummary {
            lines_in: lines_in?,
            replies_out,
        })
    })
}

/// Serves standard input/output — the `splitd` default. Returns at EOF
/// or on a `shutdown` frame.
///
/// # Errors
///
/// Propagates I/O errors from either pipe.
pub fn serve_stdio(server: &Server) -> io::Result<ServeSummary> {
    // Stdin's own lock is not Send; a BufReader over the handle is
    let stdin = BufReader::new(io::stdin());
    let stdout = io::stdout().lock();
    serve_stream(server, stdin, BufWriter::new(stdout))
}

fn spawn_connection<S>(server: Arc<Server>, stream: S, teardown: impl FnOnce() + Send + 'static)
where
    S: io::Read + io::Write + Send + Sync + 'static,
    for<'a> &'a S: io::Read + io::Write,
{
    thread::spawn(move || {
        let reader = BufReader::new(&stream);
        let writer = BufWriter::new(&stream);
        if let Err(e) = serve_stream_with(&server, reader, writer, teardown) {
            eprintln!("splitd: connection error: {e}");
        }
    });
}

/// Accept loop over a Unix-domain socket at `path` (pre-existing files
/// are replaced). Each accepted connection gets its own pump threads;
/// all requests share the server's worker pool. Runs until accept
/// fails.
///
/// Streams get the server's configured write timeout, and a failed
/// writer shuts the socket down in both directions so the connection's
/// reader thread always unblocks.
///
/// # Errors
///
/// Propagates bind/accept errors.
pub fn serve_unix(server: Arc<Server>, path: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("splitd: listening on unix socket {}", path.display());
    for stream in listener.incoming() {
        let stream = stream?;
        let _ = stream.set_write_timeout(Some(server.config().write_timeout));
        let shutdown_handle = stream.try_clone().ok();
        spawn_connection(Arc::clone(&server), stream, move || {
            if let Some(s) = shutdown_handle {
                let _ = s.shutdown(Shutdown::Both);
            }
        });
    }
    Ok(())
}

/// Accept loop over TCP at `addr` (e.g. `127.0.0.1:7317`). Runs until
/// accept fails.
///
/// Streams get the server's configured write timeout, and a failed
/// writer shuts the socket down in both directions so the connection's
/// reader thread always unblocks.
///
/// # Errors
///
/// Propagates bind/accept errors.
pub fn serve_tcp(server: Arc<Server>, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("splitd: listening on tcp {}", listener.local_addr()?);
    for stream in listener.incoming() {
        let stream = stream?;
        let _ = stream.set_write_timeout(Some(server.config().write_timeout));
        let shutdown_handle = stream.try_clone().ok();
        spawn_connection(Arc::clone(&server), stream, move || {
            if let Some(s) = shutdown_handle {
                let _ = s.shutdown(Shutdown::Both);
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::wire::split_reply;

    fn quiet_server() -> Server {
        Server::start(ServerConfig {
            record_timings: false,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn stream_transport_round_trips_lines() {
        let server = quiet_server();
        let input = concat!(
            r#"{"v":1,"type":"request","id":"a","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}"#,
            "\n",
            "\n",
            r#"{"v":1,"type":"ping"}"#,
            "\n",
            r#"{"v":1,"type":"shutdown"}"#,
            "\n",
            r#"{"v":1,"type":"request","id":"after-shutdown"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_stream(&server, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.lines_in, 3, "shutdown stops ingest");
        assert_eq!(summary.replies_out, 2);
        let text = String::from_utf8(out).unwrap();
        let frames: Vec<&str> = text.lines().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(split_reply(frames[0]).unwrap().frame_type, "solution");
        assert_eq!(split_reply(frames[1]).unwrap().frame_type, "heartbeat");
        server.shutdown();
    }

    #[test]
    fn handle_lifecycle_rides_the_stream_transport() {
        use crate::wire::{self, Priority};
        use splitting_api::{Problem, Request};

        let server = quiet_server();
        let g = splitgraph::generators::cycle(6).unwrap();
        let request = Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            g,
        )
        .seed(2);
        let handle = wire::render_handle(wire::instance_fingerprint(request.instance()));
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            wire::render_upload("up", request.instance()),
            wire::render_request_with_handle("s1", Priority::Normal, &handle, &request),
            wire::render_request("s2", Priority::Normal, &request),
            wire::render_release("rel", &handle),
        );
        let mut out = Vec::new();
        let summary = serve_stream(&server, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.lines_in, 4);
        assert_eq!(summary.replies_out, 4);
        let text = String::from_utf8(out).unwrap();
        let frames: Vec<&str> = text.lines().collect();
        let kinds: Vec<_> = frames
            .iter()
            .map(|f| split_reply(f).unwrap().frame_type)
            .collect();
        assert_eq!(kinds, ["uploaded", "solution", "solution", "released"]);
        // handle-form and inline-form replies carry the same payload
        assert_eq!(
            split_reply(frames[1]).unwrap().payload,
            split_reply(frames[2]).unwrap().payload,
            "handle-vs-inline byte parity over the stream transport"
        );
        assert!(frames[0].contains(&handle), "{}", frames[0]);
        server.shutdown();
    }

    #[test]
    fn tcp_transport_serves_concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let server = Arc::new(quiet_server());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    spawn_connection(Arc::clone(&server), stream.unwrap(), || {});
                }
            });
        }
        let clients: Vec<_> = (0..3)
            .map(|c| {
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let line = format!(
                        r#"{{"v":1,"type":"request","id":"c{c}","problem":{{"name":"mis","base_degree":8}},"instance":{{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}}}"#
                    );
                    stream.write_all(line.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    stream
                        .write_all(br#"{"v":1,"type":"shutdown"}"#)
                        .unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut reply = String::new();
                    BufReader::new(&stream).read_line(&mut reply).unwrap();
                    let parsed = split_reply(reply.trim_end()).unwrap();
                    assert_eq!(parsed.frame_type, "solution");
                    assert_eq!(parsed.id, format!("c{c}"));
                })
            })
            .collect();
        for client in clients {
            client.join().unwrap();
        }
    }

    #[test]
    fn eof_mid_frame_yields_a_typed_error_not_a_hang() {
        // the stream dies mid-frame: the partial line (no trailing
        // newline) must become a typed error reply and the serve loop
        // must return cleanly at EOF
        let server = quiet_server();
        let input = concat!(
            r#"{"v":1,"type":"request","id":"ok","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}"#,
            "\n",
            r#"{"v":1,"type":"requ"#, // torn by the peer, EOF follows
        );
        let mut out = Vec::new();
        let summary = serve_stream(&server, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.lines_in, 2);
        assert_eq!(summary.replies_out, 2);
        let text = String::from_utf8(out).unwrap();
        let frames: Vec<&str> = text.lines().collect();
        assert_eq!(split_reply(frames[0]).unwrap().frame_type, "solution");
        let torn = split_reply(frames[1]).unwrap();
        assert_eq!(torn.frame_type, "error");
        assert!(
            torn.payload
                .unwrap()
                .contains("\"kind\":\"invalid-request\""),
            "{}",
            frames[1]
        );
        server.shutdown();
    }

    /// A reader that yields one request line, then blocks until told to
    /// stop — standing in for a socket whose client never hangs up.
    struct StuckReader {
        line: Option<Vec<u8>>,
        unblock: Arc<std::sync::atomic::AtomicBool>,
    }

    impl io::Read for StuckReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if let Some(line) = self.line.take() {
                buf[..line.len()].copy_from_slice(&line);
                return Ok(line.len());
            }
            while !self.unblock.load(std::sync::atomic::Ordering::Relaxed) {
                thread::sleep(std::time::Duration::from_millis(1));
            }
            Ok(0) // the teardown "closed the socket": EOF
        }
    }

    /// A writer whose first write fails — a peer that vanished.
    struct DeadWriter;

    impl io::Write for DeadWriter {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_failure_fires_teardown_and_never_wedges_the_reader() {
        use std::sync::atomic::AtomicBool;

        let server = quiet_server();
        let unblock = Arc::new(AtomicBool::new(false));
        let reader = StuckReader {
            line: Some(
                concat!(
                    r#"{"v":1,"type":"request","id":"a","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}"#,
                    "\n"
                )
                .as_bytes()
                .to_vec(),
            ),
            unblock: Arc::clone(&unblock),
        };
        // without the teardown hook this would deadlock: the writer dies,
        // but the reader stays parked waiting for a client that will
        // never send another byte
        let hook = Arc::clone(&unblock);
        let err = serve_stream_with(&server, BufReader::new(reader), DeadWriter, move || {
            hook.store(true, std::sync::atomic::Ordering::Relaxed);
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(
            unblock.load(std::sync::atomic::Ordering::Relaxed),
            "teardown must have fired"
        );
        server.shutdown();
    }

    #[test]
    fn chaos_torn_frames_and_drops_fail_the_connection_not_the_server() {
        use crate::chaos::ChaosConfig;

        let request = concat!(
            r#"{"v":1,"type":"request","id":"a","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":3,"edges":[[0,1],[1,2],[2,0]]}}"#,
            "\n"
        );
        // torn frame: a prefix of the reply reaches the wire, then the
        // connection fails with the injected error
        let server = Server::start(ServerConfig {
            record_timings: false,
            chaos: Some(ChaosConfig {
                seed: 3,
                torn_frame: 1.0,
                ..ChaosConfig::default()
            }),
            ..ServerConfig::default()
        });
        let mut out = Vec::new();
        let err = serve_stream(&server, request.as_bytes(), &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(!out.is_empty() && !out.ends_with(b"\n"), "prefix only");
        // the server itself survives chaos on one connection: a second
        // serve on the same pool would also chaos-fail, so check health
        // through the in-process path instead
        let (mut tx, mut rx) = server.connect().split();
        tx.submit_request(
            "fresh",
            crate::wire::Priority::Normal,
            splitting_api::Request::new(
                splitting_api::Problem::Mis {
                    base_degree: Some(8),
                },
                splitgraph::generators::cycle(6).unwrap(),
            ),
        );
        tx.finish();
        assert!(rx.recv().unwrap().contains("\"type\":\"solution\""));
        server.shutdown();

        // dropped connection: nothing reaches the wire
        let server = Server::start(ServerConfig {
            record_timings: false,
            chaos: Some(ChaosConfig {
                seed: 3,
                drop_connection: 1.0,
                ..ChaosConfig::default()
            }),
            ..ServerConfig::default()
        });
        let mut out = Vec::new();
        let err = serve_stream(&server, request.as_bytes(), &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert!(out.is_empty());
        server.shutdown();
    }
}
